//! Seeded chaos suite: micro-benchmarks × {Global, MultiGrain, Stm} ×
//! fault plans, each run twice under a watchdog.
//!
//! The acceptance bar for the fault-injection harness:
//!
//! * every run **terminates** (watchdogged — a wedge is a test failure,
//!   not a hang) with either a result or a *typed* error;
//! * every run is **deterministic**: same plan, same digest (results,
//!   makespan, printed output, degradation counters), twice;
//! * locks are **quiescent** afterwards no matter how workers died;
//! * surviving multi-grain runs pass the Theorem-1 coverage check when
//!   re-executed under Validate mode with the same plan;
//! * an abort storm drives TL2 into its irrevocable fallback within the
//!   configured abort budget;
//! * every run records an event trace whose digest reproduces exactly,
//!   and the Eraser-style lockset validator finds **zero uncovered
//!   accesses** in it — chaos included, crashed threads included.

use atomic_lock_inference as ali;

use ali::interp::{ExecMode, FaultPlan, InterpError, Machine, Options, SentinelConfig, WeakenPlan};
use ali::lir;
use ali::lockinfer::DegradationReport;
use ali::lockscheme::SchemeConfig;
use ali::pointsto::PointsTo;
use ali::workloads::{micro, Contention, RunSpec};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const K: usize = 3;
const WATCHDOG: Duration = Duration::from_secs(120);

/// The chaos corpus: small instances of three structurally different
/// micro-benchmarks (list, open hashtable, red-black tree).
fn specs() -> Vec<RunSpec> {
    vec![
        micro::list(Contention::High, 40, 20),
        micro::hashtable2(Contention::High, 60, 20),
        micro::rbtree(Contention::Low, 40, 20),
    ]
}

/// Three seeded plans covering the whole fault surface.
fn plans() -> [FaultPlan; 3] {
    [
        FaultPlan::new(0x0A11)
            .with_stm_aborts(60)
            .with_stalls(120, 400),
        FaultPlan::new(0x0B22)
            .with_panics(8, 1)
            .with_wakeup_delays(150, 300),
        FaultPlan::new(0x0C33)
            .with_stm_aborts(250)
            .with_panics(4, 1)
            .with_stalls(80, 250)
            .with_wakeup_delays(80, 200),
    ]
}

fn build(spec: &RunSpec, mode: ExecMode, opts: Options) -> Machine {
    let program = lir::compile(&spec.source).expect("chaos specs compile");
    let pt = Arc::new(PointsTo::analyze(&program));
    let cfg = SchemeConfig::full(K, program.elem_field_opt());
    let analysis = ali::lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = Arc::new(ali::lockinfer::transform(&program, &analysis));
    Machine::new(transformed, pt, mode, opts)
}

/// Everything observable about one chaos run; two runs of the same
/// (spec, mode, plan) must produce equal digests.
#[derive(Debug, PartialEq)]
struct Digest {
    init: Result<i64, InterpError>,
    outcome: Option<Result<(Vec<i64>, u64), InterpError>>,
    output: Vec<String>,
    quiescent: bool,
    report: DegradationReport,
    check: Option<Result<i64, InterpError>>,
    /// FNV digest of the recorded event trace: equality means the two
    /// runs produced byte-identical canonical trace JSON.
    trace_digest: String,
}

/// Runs `spec` once under `mode` with `plan` injected and tracing on,
/// inside a watchdog: exceeding [`WATCHDOG`] is reported as a hang.
fn chaos_run(spec: RunSpec, mode: ExecMode, plan: FaultPlan) -> (Digest, ali::trace::Trace) {
    chaos_run_sched(spec, mode, plan, None)
}

/// [`chaos_run`] with an optional wake policy steering the virtual
/// scheduler's release order.
fn chaos_run_sched(
    spec: RunSpec,
    mode: ExecMode,
    plan: FaultPlan,
    sched: Option<ali::interp::SchedConfig>,
) -> (Digest, ali::trace::Trace) {
    let label = format!("{} [{mode:?}] plan {:#x}", spec.name, plan.seed);
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let opts = Options {
            heap_cells: spec.heap_cells,
            faults: Some(plan),
            stm_abort_budget: 64,
            trace: Some(ali::trace::TraceConfig::default()),
            sched,
            ..Options::default()
        };
        let m = build(&spec, mode, opts);
        let (init_fn, init_args) = &spec.init;
        let init = m.run_named(init_fn, init_args);
        let (worker_fn, worker_args) = &spec.worker;
        let outcome = init
            .is_ok()
            .then(|| m.run_threads_virtual(worker_fn, THREADS, |_| worker_args.clone()));
        // The post-run invariant check only applies to surviving runs:
        // a mid-section panic under a lock runtime legitimately leaves
        // partial updates behind (locks are not a rollback mechanism).
        let check = match (&outcome, spec.check) {
            (Some(Ok(_)), Some(check_fn)) => Some(m.run_named(check_fn, &[])),
            _ => None,
        };
        let trace = m.take_trace().expect("chaos machines trace");
        let digest = Digest {
            init,
            outcome,
            output: m.output(),
            quiescent: m.locks_quiescent(),
            report: m.degradation_report(),
            check,
            trace_digest: trace.digest(),
        };
        let _ = tx.send((digest, trace));
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(digest) => {
            let _ = handle.join();
            digest
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without panicking"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: run exceeded the {WATCHDOG:?} watchdog — a hang")
        }
    }
}

/// An error that surfaced from a chaos run must be one the fault model
/// can legitimately produce — never an internal invariant failure, an
/// unprotected access, or an uncontained panic.
fn assert_typed(label: &str, e: &InterpError) {
    assert!(
        matches!(
            e,
            InterpError::InjectedPanic { .. }
                | InterpError::SchedulerStalled { .. }
                | InterpError::Lock { .. }
        ),
        "{label}: untyped or impossible chaos error: {e}"
    );
}

/// Every chaos trace must satisfy the lockset discipline: zero
/// uncovered in-section accesses, even in runs where threads died
/// mid-section (their accesses happened while the grants were held).
fn assert_lockset_clean(label: &str, trace: &ali::trace::Trace) {
    let v = ali::trace::validate(trace).expect("chaos traces are complete");
    assert!(
        v.violations.is_empty(),
        "{label}: uncovered accesses in the chaos trace: {:?}",
        v.violations
    );
    assert!(v.checked > 0, "{label}: the trace recorded no accesses");
}

#[test]
fn chaos_matrix_terminates_deterministically() {
    for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
        for plan in plans() {
            for spec in specs() {
                let label = format!("{} [{mode:?}] plan {:#x}", spec.name, plan.seed);
                let (first, trace) = chaos_run(spec.clone(), mode, plan);
                let (second, _) = chaos_run(spec, mode, plan);
                assert_eq!(first, second, "{label}: chaos must reproduce exactly");
                if let Err(e) = &first.init {
                    assert_typed(&label, e);
                }
                if let Some(Err(e)) = &first.outcome {
                    assert_typed(&label, e);
                }
                assert!(first.quiescent, "{label}: locks leaked");
                if let Some(check) = &first.check {
                    assert!(check.is_ok(), "{label}: survivor broke its invariant");
                }
                assert_lockset_clean(&label, &trace);
                // A worker that died to an injected panic shows up as a
                // crashed thread in the validator's report.
                if matches!(first.outcome, Some(Err(InterpError::InjectedPanic { .. })))
                    && mode != ExecMode::Stm
                {
                    let v = ali::trace::validate(&trace).unwrap();
                    assert!(
                        !v.crashed.is_empty(),
                        "{label}: a panicked worker must be reported as crashed"
                    );
                }
            }
        }
    }
}

/// Every wake policy must carry the chaos bar under fault-delayed
/// wakeups: deterministic (same digest twice), quiescent, typed
/// errors only, lockset-clean traces. Delayed wakeups are the nasty
/// case for a wake policy — the preferred waiter's preferential slot
/// can be stalled out from under it.
#[test]
fn chaos_wake_policies_reproduce_under_delayed_wakeups() {
    let plan = FaultPlan::new(0x0D44).with_wakeup_delays(150, 300);
    for kind in ali::interp::PolicyKind::ALL {
        // A fixed frozen hold table (what a prior profile would have
        // produced) — the decisions must be pure functions of it.
        let sched = ali::interp::SchedConfig {
            policy: kind,
            expected_hold: vec![(0, 60), (1, 15), (2, 40)],
            aging: if kind == ali::interp::PolicyKind::ReaderBatch {
                ali::interp::ReaderBatch::DEFAULT_AGING
            } else {
                0
            },
        };
        for spec in specs() {
            let label = format!("{} [MultiGrain] wake {}", spec.name, kind.tag());
            let (first, trace) = chaos_run_sched(
                spec.clone(),
                ExecMode::MultiGrain,
                plan,
                Some(sched.clone()),
            );
            let (second, _) =
                chaos_run_sched(spec, ExecMode::MultiGrain, plan, Some(sched.clone()));
            assert_eq!(first, second, "{label}: steered chaos must reproduce");
            if let Some(Err(e)) = &first.outcome {
                assert_typed(&label, e);
            }
            assert!(first.quiescent, "{label}: locks leaked");
            if let Some(check) = &first.check {
                assert!(check.is_ok(), "{label}: survivor broke its invariant");
            }
            assert_lockset_clean(&label, &trace);
        }
    }
}

#[test]
fn chaos_survivors_pass_theorem_1_coverage() {
    // Re-run the multi-grain combinations under Validate mode: every
    // in-section access of a surviving execution must be covered by a
    // held lock (Theorem 1), fault plan and all.
    for plan in plans() {
        for spec in specs() {
            let label = format!("{} [Validate] plan {:#x}", spec.name, plan.seed);
            let (digest, trace) = chaos_run(spec, ExecMode::Validate, plan);
            if let Err(e) = &digest.init {
                assert_typed(&label, e);
            }
            if let Some(Err(e)) = &digest.outcome {
                assert_typed(&label, e);
            }
            assert!(digest.quiescent, "{label}: locks leaked");
            assert_lockset_clean(&label, &trace);
        }
    }
}

/// Two structurally separate sections: section 0 (globals `a`/`b`,
/// two inferred fine locks) is the target of the seeded weakened
/// inference; section 1 (global `c`) must never be quarantined.
const SENTINEL_SRC: &str = r#"
    global a;
    global b;
    global c;
    fn setup(n) { a = n; b = n; c = n; }
    fn work(iters) {
        let i = 0;
        while (i < iters) {
            atomic { a = a + 1; b = b + a; nops(10); }
            atomic { c = c + 1; nops(5); }
            i = i + 1;
        }
        return 0;
    }
    fn probe() { return c; }
"#;

const SENTINEL_ITERS: i64 = 8;

/// Everything observable about one sentinel run; two runs must agree
/// exactly, weakened or not.
#[derive(Debug, PartialEq)]
struct SentinelDigest {
    outcome: Result<(Vec<i64>, u64), InterpError>,
    probe: i64,
    report: DegradationReport,
    /// The ladder history as `(section, healed, probation)` triples.
    history: Vec<(u32, bool, u32)>,
    quiescent: bool,
    trace_digest: String,
}

/// Runs [`SENTINEL_SRC`] under MultiGrain with the online sentinel on
/// (default tuning: probation 4, flap ×2) and an optional weakened-
/// inference injection, inside the chaos watchdog.
fn sentinel_run(weaken: Option<WeakenPlan>) -> (SentinelDigest, ali::trace::Trace) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let opts = Options {
            heap_cells: 1 << 12,
            sentinel: Some(SentinelConfig::default()),
            weaken,
            trace: Some(ali::trace::TraceConfig::default()),
            ..Options::default()
        };
        let m = ali::interp::machine_for(SENTINEL_SRC, K, ExecMode::MultiGrain, opts)
            .expect("sentinel source compiles");
        m.run_named("setup", &[0]).expect("sentinel init");
        let outcome = m.run_threads_virtual("work", THREADS, |_| vec![SENTINEL_ITERS]);
        let probe = m.run_named("probe", &[]).expect("sentinel probe");
        let sent = m.sentinel().expect("machine built with a sentinel");
        let history = sent
            .history()
            .iter()
            .map(|e| (e.section, e.healed, e.probation))
            .collect();
        let trace = m.take_trace().expect("sentinel machines trace");
        let digest = SentinelDigest {
            outcome,
            probe,
            report: m.degradation_report(),
            history,
            quiescent: m.locks_quiescent(),
            trace_digest: trace.digest(),
        };
        let _ = tx.send((digest, trace));
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(result) => {
            let _ = handle.join();
            result
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without panicking"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("sentinel run exceeded the {WATCHDOG:?} watchdog — a hang")
        }
    }
}

#[test]
fn weakened_inference_is_caught_quarantined_and_healed() {
    let weaken = WeakenPlan {
        section: 0,
        drop_index: 0,
    };
    let (digest, trace) = sentinel_run(Some(weaken));
    // The run completes: violations are recorded, never fatal.
    assert!(
        digest.outcome.is_ok(),
        "weakened run must complete: {digest:?}"
    );
    assert!(digest.quiescent, "weakened run leaked locks");
    // Section 1 is untouched by the gap, so `c` stays exact.
    assert_eq!(digest.probe, THREADS as i64 * SENTINEL_ITERS);
    // The sentinel caught the seeded gap…
    let r = &digest.report;
    assert!(r.sentinel_violations >= 1, "no violations caught: {r}");
    assert!(!r.is_clean(), "a caught violation is a real soundness gap");
    // …quarantined exactly the offending section…
    assert!(!digest.history.is_empty());
    assert!(
        digest.history.iter().all(|&(s, _, _)| s == weaken.section),
        "only the weakened section may transition: {:?}",
        digest.history
    );
    // …healed it after the probation ran out, and damped the flap:
    // the second offense serves an exponentially longer term.
    let demote_terms: Vec<u32> = digest
        .history
        .iter()
        .filter(|&&(_, healed, _)| !healed)
        .map(|&(_, _, p)| p)
        .collect();
    assert!(
        demote_terms.len() >= 2,
        "the healed section must re-offend under the persistent gap: {:?}",
        digest.history
    );
    assert_eq!(
        &demote_terms[..2],
        &[4, 8],
        "flap damping must double the term"
    );
    assert!(
        r.sections_healed >= 1,
        "the section must be re-admitted after clean executions: {r}"
    );
    assert_eq!(r.sections_quarantined, demote_terms.len() as u64);
    // The `["qr", …]` events in the trace reconstruct the same ladder.
    let h = ali::trace::quarantine_history(&trace);
    let replayed: Vec<(u32, bool, u32)> = h
        .transitions
        .iter()
        .map(|t| (t.section, t.healed, t.probation))
        .collect();
    assert_eq!(
        replayed, digest.history,
        "trace and sentinel ladders diverged"
    );
    assert_eq!(h.demotions(), r.sections_quarantined);
    assert_eq!(h.heals(), r.sections_healed);
    assert_eq!(h.sections(), vec![weaken.section]);
    // And the whole thing reproduces exactly.
    let (second, _) = sentinel_run(Some(weaken));
    assert_eq!(digest, second, "weakened sentinel runs must reproduce");
}

#[test]
fn sentinel_stays_silent_on_sound_plans() {
    let (digest, trace) = sentinel_run(None);
    assert!(digest.outcome.is_ok(), "{digest:?}");
    assert!(digest.quiescent);
    let r = &digest.report;
    assert!(r.is_clean(), "sound plans must not trip the sentinel: {r}");
    assert_eq!(r.sentinel_violations, 0);
    assert!(digest.history.is_empty(), "{:?}", digest.history);
    assert!(
        !trace
            .events
            .iter()
            .any(|e| matches!(e.kind, ali::trace::EventKind::Quarantine { .. })),
        "a sound run must record no quarantine events"
    );
}

#[test]
fn abort_storm_forces_irrevocable_fallback_within_budget() {
    let spec = micro::hashtable2(Contention::High, 30, 20);
    let plan = FaultPlan::new(0x5707).with_stm_aborts(700);
    let label = format!("{} [Stm] abort storm", spec.name);
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let opts = Options {
            heap_cells: spec.heap_cells,
            faults: Some(plan),
            stm_abort_budget: 4,
            ..Options::default()
        };
        let m = build(&spec, ExecMode::Stm, opts);
        let (init_fn, init_args) = &spec.init;
        m.run_named(init_fn, init_args).expect("storm init");
        let (worker_fn, worker_args) = &spec.worker;
        m.run_threads_virtual(worker_fn, THREADS, |_| worker_args.clone())
            .expect("the fallback must carry the storm to completion");
        if let Some(check_fn) = spec.check {
            m.run_named(check_fn, &[]).expect("storm invariant");
        }
        let _ = tx.send(m.degradation_report());
    });
    let report = match rx.recv_timeout(WATCHDOG) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!(),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("{label}: hang"),
    };
    let _ = handle.join();
    assert!(
        report.stm_fallbacks > 0,
        "{label}: the storm must escalate to irrevocable mode: {report}"
    );
    assert!(
        report.stm_commits > 0,
        "{label}: and still commit: {report}"
    );
}
