//! Determinism properties of the profile-guided adaptation loop
//! (DESIGN.md §5.4): for one recorded trace and candidate set, the
//! decision — every candidate, every replayed cost, the selected
//! override, the report bytes — must be identical at every analysis
//! thread count, on every run. A selected override must also strictly
//! reduce total replayed wait.

use atomic_lock_inference::adapt::adapt;
use atomic_lock_inference::replay::RunConfig;
use interp::ExecMode;
use lockinfer::adapt::{candidates, AdaptPolicy, Adjustment, PlanCost};
use lockscheme::{ConfigMap, SchemeConfig};
use proptest::prelude::*;
use workloads::{micro, Contention, RunSpec};

fn spec_for(which: usize, ops: i64) -> RunSpec {
    match which {
        0 => micro::list(Contention::High, ops, 10),
        1 => micro::hashtable2(Contention::High, ops, 10),
        _ => micro::th(Contention::High, ops, 10),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The whole loop — record, profile, propose, replay, select — is a
    /// pure function of the run configuration: analysis parallelism
    /// must never leak into the decision.
    #[test]
    fn decision_is_identical_at_every_analysis_thread_count(
        which in 0usize..3,
        seed in any::<u64>(),
        threads in 2usize..5,
        ops in 20i64..50,
    ) {
        let spec = spec_for(which, ops);
        let mut cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, threads);
        cfg.seed = seed;
        let runs: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&t| adapt(&cfg, &AdaptPolicy::default(), t).unwrap())
            .collect();
        let first = &runs[0];
        for r in &runs[1..] {
            prop_assert_eq!(r.report.to_json(), first.report.to_json());
            prop_assert_eq!(r.baseline.trace.digest(), first.baseline.trace.digest());
            match (&r.adapted, &first.adapted) {
                (Some(a), Some(b)) => prop_assert_eq!(a.trace.digest(), b.trace.digest()),
                (None, None) => {}
                _ => prop_assert!(false, "selection diverged across analysis thread counts"),
            }
        }
    }

    /// The policy itself is pure: re-deriving candidates from the same
    /// recorded trace always yields the same overrides. Every
    /// scheme-changing override differs from the section's base
    /// configuration; wake-policy candidates steer the scheduler
    /// instead and must leave the scheme exactly at base.
    #[test]
    fn candidate_overrides_are_stable_and_canonical(
        which in 0usize..3,
        seed in any::<u64>(),
        ops in 20i64..50,
    ) {
        let spec = spec_for(which, ops);
        let mut cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 4);
        cfg.seed = seed;
        let rec = atomic_lock_inference::replay::record(&cfg).unwrap();
        let profiles = trace::profile(&rec.trace);
        let base = ConfigMap::uniform(SchemeConfig::full(
            9,
            lir::compile(&cfg.source).unwrap().elem_field_opt(),
        ));
        let policy = AdaptPolicy::default();
        let a = candidates(&profiles, &base, &policy);
        let b = candidates(&profiles, &base, &policy);
        prop_assert_eq!(&a, &b);
        for c in &a {
            if let Adjustment::WakePolicy(_) = c.adjustment {
                // The scheme is untouched; the adjustment lives in the
                // run's sched config.
                prop_assert!(c.config == base.for_section(c.section));
                continue;
            }
            prop_assert!(c.config != base.for_section(c.section));
            // The override survives the map's canonicalization.
            let map = c.config_map(&base);
            prop_assert_eq!(map.overrides().len(), 1);
            prop_assert_eq!(map.for_section(c.section), c.config);
        }
    }
}

/// A selected override must beat the baseline strictly — never ties,
/// never regressions (the `adapt-smoke` CI invariant).
#[test]
fn selected_candidate_strictly_reduces_wait() {
    let spec = micro::list(Contention::High, 120, 20);
    let cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 8);
    let run = adapt(&cfg, &AdaptPolicy::default(), 0).unwrap();
    let base: PlanCost = run.report.baseline;
    if let Some(w) = run.report.winner() {
        assert!(
            w.cost.total_wait < base.total_wait,
            "winner {} !< baseline {}",
            w.cost.total_wait,
            base.total_wait
        );
    }
    // And repeated runs agree byte for byte.
    let again = adapt(&cfg, &AdaptPolicy::default(), 0).unwrap();
    assert_eq!(run.report.to_json(), again.report.to_json());
}
