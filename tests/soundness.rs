//! Empirical soundness (Theorem 1) and differential testing over
//! randomly generated runnable programs.

use atomic_lock_inference::{interp, lockinfer, lockscheme, pointsto, workloads};
use interp::{ExecMode, Machine, Options};
use std::sync::Arc;

fn checksum(spec: &workloads::RunSpec, mode: ExecMode, k: usize) -> i64 {
    let program = lir::compile(&spec.source).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let cfg = lockscheme::SchemeConfig::full(k, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = Arc::new(lockinfer::transform(&program, &analysis));
    let machine = Machine::new(
        transformed,
        pt,
        mode,
        Options {
            heap_cells: spec.heap_cells,
            ..Options::default()
        },
    );
    machine.run_named("main", &[]).unwrap_or_else(|e| {
        panic!(
            "{} under {mode:?} (k={k}): {e}\n--- source ---\n{}",
            spec.name, spec.source
        )
    })
}

/// Theorem 1, empirically: for random programs and every k, the
/// Validate-mode run never reports an unprotected access.
#[test]
fn inferred_locks_cover_all_section_accesses() {
    for seed in 0..60 {
        let spec = workloads::fuzz::runnable(seed, 50);
        for k in [0, 1, 3, 9] {
            checksum(&spec, ExecMode::Validate, k);
        }
    }
}

/// Single-threaded differential equivalence: the transformation plus
/// each runtime discipline must preserve program results exactly.
#[test]
fn all_modes_compute_the_same_result() {
    for seed in 60..110 {
        let spec = workloads::fuzz::runnable(seed, 60);
        let expect = checksum(&spec, ExecMode::Global, 3);
        for (mode, k) in [
            (ExecMode::MultiGrain, 0),
            (ExecMode::MultiGrain, 9),
            (ExecMode::Stm, 3),
            (ExecMode::Validate, 3),
        ] {
            let got = checksum(&spec, mode, k);
            assert_eq!(got, expect, "seed {seed}: {mode:?} k={k} diverged");
        }
    }
}

/// The merge's non-redundancy claim: no inferred lock set contains a
/// lock strictly below another of the same set.
#[test]
fn inferred_lock_sets_are_non_redundant() {
    for seed in 0..40 {
        let spec = workloads::fuzz::runnable(seed, 50);
        let program = lir::compile(&spec.source).unwrap();
        let pt = pointsto::PointsTo::analyze(&program);
        for k in [0, 2, 9] {
            let cfg = lockscheme::SchemeConfig::full(k, program.elem_field_opt());
            let analysis = lockinfer::analyze_program(&program, &pt, cfg);
            for sec in &analysis.sections {
                for a in &sec.locks {
                    for b in &sec.locks {
                        if a != b {
                            assert!(!a.leq(b), "seed {seed} k={k}: redundant lock {a} ≤ {b}");
                        }
                    }
                }
            }
        }
    }
}

/// The analysis is deterministic: same program, same locks.
#[test]
fn analysis_is_deterministic() {
    for seed in [3, 17] {
        let spec = workloads::fuzz::runnable(seed, 60);
        let program = lir::compile(&spec.source).unwrap();
        let pt = pointsto::PointsTo::analyze(&program);
        let cfg = lockscheme::SchemeConfig::full(9, program.elem_field_opt());
        let a = lockinfer::analyze_program(&program, &pt, cfg);
        let b = lockinfer::analyze_program(&program, &pt, cfg);
        for (sa, sb) in a.sections.iter().zip(&b.sections) {
            let (mut la, mut lb) = (sa.locks.clone(), sb.locks.clone());
            la.sort();
            lb.sort();
            assert_eq!(la, lb);
        }
    }
}

/// Raising k never makes the lock set *more* coarse on random programs
/// (the refinement direction of the k-limit).
#[test]
fn k_refines_lock_sets() {
    for seed in 0..25 {
        let spec = workloads::fuzz::runnable(seed, 40);
        let program = lir::compile(&spec.source).unwrap();
        let pt = pointsto::PointsTo::analyze(&program);
        let mut prev_coarse = usize::MAX;
        for k in [0, 1, 2, 3] {
            let cfg = lockscheme::SchemeConfig::full(k, program.elem_field_opt());
            let counts = lockinfer::analyze_program(&program, &pt, cfg).lock_counts();
            let coarse = counts.coarse_ro + counts.coarse_rw;
            assert!(
                coarse <= prev_coarse,
                "seed {seed}: coarse locks grew from {prev_coarse} to {coarse} at k={k}"
            );
            prev_coarse = coarse;
        }
    }
}
