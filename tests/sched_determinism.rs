//! Determinism of the contention-aware scheduling subsystem (DESIGN.md
//! §5.6): for one run configuration, every observable of the policy
//! evaluation loop — the baseline trace bytes, every steered trace,
//! every wake decision, the selection report — must be identical at
//! every *analysis* thread count, exactly as `tests/adapt_determinism`
//! and `tests/sentinel_determinism` demand of their loops. And the
//! [`Fifo`] policy must be a faithful extraction of the historical
//! `(clock, tid)` order: steering with it reproduces the legacy
//! schedule event for event.

use atomic_lock_inference as ali;

use ali::interp::{ExecMode, SchedConfig};
use ali::replay::{record, RunConfig};
use ali::sched::{evaluate, ConvoyPolicy};
use ali::trace::EventKind;
use proptest::prelude::*;

/// Three temperaments sharing one program: a long-hold writer section
/// (the convoy factory), a read-only section (shared-mode locks —
/// ReaderBatch's target), and a short writer (ShortestExpectedHold's
/// favourite).
const SRC: &str = r#"
    global shared;
    global total;
    fn setup(n) { shared = n; total = 0; }
    fn work(iters) {
        let i = 0;
        let acc = 0;
        while (i < iters) {
            atomic { shared = shared + 1; nops(80); }
            atomic { acc = acc + shared; nops(5); }
            atomic { total = total + 1; }
            i = i + 1;
        }
        return acc;
    }
    fn probe() { return shared + total; }
"#;

fn cfg(seed: u64, threads: usize, iters: i64) -> RunConfig {
    RunConfig {
        name: "sched-determinism".into(),
        source: SRC.into(),
        k: 3,
        mode: ExecMode::MultiGrain,
        threads,
        heap_cells: 1 << 12,
        seed,
        quantum: 64,
        stm_abort_budget: 16,
        faults: None,
        sentinel: None,
        weaken: None,
        sched: None,
        repairs: Vec::new(),
        trace_capacity: 1 << 16,
        init: ("setup".into(), vec![0]),
        worker: ("work".into(), vec![iters]),
        check: Some("probe".into()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full evaluation loop — baseline, per-policy re-runs, convoy
    /// flags, selection — is a pure function of the run configuration:
    /// identical bytes at analysis thread counts 1, 2, and 7.
    #[test]
    fn policy_evaluation_is_identical_at_every_analysis_thread_count(
        seed in any::<u64>(),
        threads in 2usize..5,
        iters in 4i64..10,
    ) {
        let c = cfg(seed, threads, iters);
        let runs: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&t| evaluate(&c, &ConvoyPolicy::default(), t).expect("evaluation succeeds"))
            .collect();
        let first = &runs[0];
        for r in &runs[1..] {
            prop_assert_eq!(
                r.report.to_json(),
                first.report.to_json(),
                "selection reports diverged"
            );
            prop_assert_eq!(
                r.baseline.trace.to_json(),
                first.baseline.trace.to_json(),
                "baseline trace bytes diverged"
            );
            for (a, b) in r.steered.iter().zip(first.steered.iter()) {
                prop_assert_eq!(a.trace.to_json(), b.trace.to_json(), "steered trace bytes diverged");
            }
            prop_assert_eq!(r.steered.is_some(), first.steered.is_some());
        }
        // Wake decisions are part of the byte-compared steered traces;
        // make sure steering actually records some when a policy wins.
        if let Some(steered) = &first.steered {
            let wk = steered
                .trace
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::WakeDecision { .. }))
                .count();
            prop_assert!(wk > 0, "a winning policy must have traced its decisions");
        }
    }

    /// Steering with [`PolicyKind::Fifo`] is the identity: the same
    /// interleaving as the legacy policy-free scheduler — same results,
    /// same makespan, same per-event schedule — with only the `["wk",…]`
    /// decision events added to the trace.
    #[test]
    fn fifo_policy_reproduces_the_legacy_schedule(
        seed in any::<u64>(),
        threads in 2usize..5,
        iters in 4i64..10,
    ) {
        let legacy = record(&cfg(seed, threads, iters)).expect("legacy run");
        let mut fifo_cfg = cfg(seed, threads, iters);
        fifo_cfg.sched = Some(SchedConfig::fifo());
        let fifo = record(&fifo_cfg).expect("fifo-steered run");

        prop_assert_eq!(&legacy.outcome, &fifo.outcome, "outcomes diverged");
        // The legacy path must stay byte-for-byte silent about wakes…
        prop_assert!(
            !legacy
                .trace
                .events
                .iter()
                .any(|e| matches!(e.kind, EventKind::WakeDecision { .. })),
            "the policy-free scheduler must record no wake decisions"
        );
        // …and modulo those decision events, the schedules are equal:
        // same (tid, clock, kind) sequence in epoch order.
        let schedule = |t: &ali::trace::Trace| {
            t.events
                .iter()
                .filter(|e| !matches!(e.kind, EventKind::WakeDecision { .. }))
                .map(|e| (e.tid, e.clock, e.kind))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(
            schedule(&legacy.trace),
            schedule(&fifo.trace),
            "FIFO steering changed the schedule"
        );
    }
}
