//! Determinism of the online sentinel's quarantine ledger (DESIGN.md
//! §5.5): for one (program, weaken plan, seed, worker count), the
//! entire observable outcome — every violation, every quarantine and
//! heal transition, the trace bytes — must be identical at every
//! *analysis* thread count. The inference's parallel per-section phase
//! must never leak into the runtime's quarantine decisions, exactly as
//! `tests/adapt_determinism.rs` demands of the adaptation loop.

use atomic_lock_inference as ali;

use ali::interp::{ExecMode, Machine, Options, SentinelConfig, WeakenPlan};
use ali::lir;
use ali::lockinfer::library::LibrarySpec;
use ali::lockscheme::SchemeConfig;
use ali::pointsto::PointsTo;
use proptest::prelude::*;
use std::sync::Arc;

/// Same two-section shape as the chaos suite's sentinel runs: the
/// weakened section has two inferred locks (either is droppable), the
/// other must stay healthy.
const SRC: &str = r#"
    global a;
    global b;
    global c;
    fn setup(n) { a = n; b = n; c = n; }
    fn work(iters) {
        let i = 0;
        while (i < iters) {
            atomic { a = a + 1; b = b + a; nops(10); }
            atomic { c = c + 1; nops(5); }
            i = i + 1;
        }
        return 0;
    }
"#;

/// Everything one armed run can be observed by: trace digest, ladder
/// transitions, rendered degradation report, canonical violation
/// ledger.
type Observables = (String, Vec<(u32, bool, u32)>, String, Vec<String>);

/// One full sentinel run with the inference executed at
/// `analysis_threads`; returns every observable the ledger produces.
fn ledger(
    analysis_threads: usize,
    weaken: WeakenPlan,
    seed: u64,
    workers: usize,
    iters: i64,
) -> Observables {
    let program = lir::compile(SRC).expect("sentinel source compiles");
    let pt = Arc::new(PointsTo::analyze(&program));
    let cfg = SchemeConfig::full(3, program.elem_field_opt());
    let analysis = ali::lockinfer::analyze_program_with_opts(
        &program,
        &pt,
        cfg,
        &LibrarySpec::new(),
        analysis_threads,
    );
    let transformed = Arc::new(ali::lockinfer::transform(&program, &analysis));
    let opts = Options {
        heap_cells: 1 << 12,
        seed,
        sentinel: Some(SentinelConfig::default()),
        weaken: Some(weaken),
        trace: Some(ali::trace::TraceConfig::default()),
        ..Options::default()
    };
    let m = Machine::new(transformed, pt, ExecMode::MultiGrain, opts);
    m.run_named("setup", &[0]).expect("init");
    m.run_threads_virtual("work", workers, |_| vec![iters])
        .expect("weakened runs still complete");
    let history = m
        .sentinel()
        .expect("machine built with a sentinel")
        .history()
        .iter()
        .map(|e| (e.section, e.healed, e.probation))
        .collect();
    let violations = m
        .sentinel()
        .expect("machine built with a sentinel")
        .violations();
    // The canonical ledger contract: already sorted by the
    // schedule-derived key `(clock, tid, seq)` — no caller-side sort.
    assert!(
        violations
            .windows(2)
            .all(|w| (w[0].clock, w[0].tid, w[0].seq) < (w[1].clock, w[1].tid, w[1].seq)),
        "violation ledger must be strictly ordered by (clock, tid, seq)"
    );
    let rendered = violations
        .iter()
        .map(|v| format!("clock={} seq={} {v}", v.clock, v.seq))
        .collect();
    let trace = m.take_trace().expect("tracing on");
    (
        trace.digest(),
        history,
        m.degradation_report().to_string(),
        rendered,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The quarantine/heal ledger is a pure function of the run
    /// configuration: digests, transitions, and the rendered report
    /// agree byte for byte at analysis thread counts 1, 2, and 7.
    #[test]
    fn quarantine_ledger_is_identical_at_every_analysis_thread_count(
        seed in any::<u64>(),
        workers in 2usize..5,
        iters in 4i64..10,
        drop_index in 0usize..2,
    ) {
        let weaken = WeakenPlan { section: 0, drop_index };
        let runs: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&t| ledger(t, weaken, seed, workers, iters))
            .collect();
        let first = &runs[0];
        prop_assert!(
            !first.1.is_empty(),
            "dropping a spec from the hot section must trip the ladder"
        );
        prop_assert!(
            !first.3.is_empty(),
            "dropping a spec from the hot section must ledger violations"
        );
        for r in &runs[1..] {
            prop_assert_eq!(&r.0, &first.0, "trace digests diverged");
            prop_assert_eq!(&r.1, &first.1, "ladder transitions diverged");
            prop_assert_eq!(&r.2, &first.2, "degradation reports diverged");
            prop_assert_eq!(&r.3, &first.3, "violation ledgers diverged");
        }
    }
}
