//! Determinism and soundness properties of the shared candidate-
//! evaluation harness (DESIGN.md §5.7):
//!
//! * **Parallel determinism** — `adapt_with` / `evaluate_with` produce
//!   byte-identical reports and identical winner digests at every eval
//!   thread count (1, 2, 7): results merge in candidate order, so the
//!   worker pool never leaks into the outcome.
//! * **Estimator soundness (empirical)** — pruning is advisory: on the
//!   micro workloads, the estimator's kept set contains the winner the
//!   exact (unpruned) evaluation selects, and the pruned run selects
//!   that same winner.
//! * **Skip surfacing** — a candidate trace that overflows its ring
//!   becomes a per-candidate `Skipped` marker (adapt) or a
//!   `SkippedPolicy` entry (sched), never an error and never a bogus
//!   cost.

use atomic_lock_inference::adapt::{adapt_with, AdaptRun};
use atomic_lock_inference::eval::EvalOptions;
use atomic_lock_inference::replay::RunConfig;
use atomic_lock_inference::sched::evaluate_with;
use interp::ExecMode;
use lockinfer::adapt::{AdaptPolicy, BeamPolicy, EvalStatus};
use proptest::prelude::*;
use workloads::{micro, Contention, RunSpec};

fn spec_for(which: usize, ops: i64) -> RunSpec {
    match which {
        0 => micro::list(Contention::High, ops, 10),
        1 => micro::hashtable2(Contention::High, ops, 10),
        _ => micro::th(Contention::High, ops, 10),
    }
}

fn opts(eval_threads: usize) -> EvalOptions {
    EvalOptions {
        analysis_threads: 1,
        eval_threads,
        ..EvalOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The adaptation loop is a pure function of the run configuration:
    /// eval parallelism must never leak into the report bytes, the
    /// baseline digest, or the winner's re-executed digest — even with
    /// pruning and beam search on.
    #[test]
    fn adapt_report_is_byte_identical_at_every_eval_thread_count(
        which in 0usize..3,
        seed in any::<u64>(),
        threads in 2usize..5,
        ops in 20i64..50,
    ) {
        let spec = spec_for(which, ops);
        let mut cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, threads);
        cfg.seed = seed;
        let runs: Vec<AdaptRun> = [1usize, 2, 7]
            .iter()
            .map(|&t| {
                let o = EvalOptions {
                    prune: Some(4),
                    beam: Some(BeamPolicy::default()),
                    ..opts(t)
                };
                adapt_with(&cfg, &AdaptPolicy::default(), &o).unwrap()
            })
            .collect();
        let first = &runs[0];
        for r in &runs[1..] {
            prop_assert_eq!(r.report.to_json(), first.report.to_json());
            prop_assert_eq!(
                r.beam.as_ref().unwrap().to_json(),
                first.beam.as_ref().unwrap().to_json()
            );
            prop_assert_eq!(r.baseline.trace.digest(), first.baseline.trace.digest());
            match (&r.adapted, &first.adapted) {
                (Some(a), Some(b)) => prop_assert_eq!(a.trace.digest(), b.trace.digest()),
                (None, None) => {}
                _ => prop_assert!(false, "selection diverged across eval thread counts"),
            }
        }
    }

    /// Same property for the wake-policy harness.
    #[test]
    fn sched_report_is_byte_identical_at_every_eval_thread_count(
        which in 0usize..3,
        seed in any::<u64>(),
        threads in 2usize..5,
        ops in 20i64..50,
    ) {
        let spec = spec_for(which, ops);
        let mut cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, threads);
        cfg.seed = seed;
        let convoy = atomic_lock_inference::sched::ConvoyPolicy::default();
        let runs: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&t| evaluate_with(&cfg, &convoy, &opts(t)).unwrap())
            .collect();
        let first = &runs[0];
        for r in &runs[1..] {
            prop_assert_eq!(r.report.to_json(), first.report.to_json());
            prop_assert_eq!(r.baseline.trace.digest(), first.baseline.trace.digest());
            match (&r.steered, &first.steered) {
                (Some(a), Some(b)) => prop_assert_eq!(a.trace.digest(), b.trace.digest()),
                (None, None) => {}
                _ => prop_assert!(false, "selection diverged across eval thread counts"),
            }
        }
    }

    /// Empirical estimator soundness on the micro workloads: the
    /// trace-analytic top-k always contains the candidate the exact
    /// evaluation selects, and the pruned run selects the same winner
    /// with the same measured cost.
    #[test]
    fn pruning_never_discards_the_exact_winner(
        which in 0usize..3,
        seed in any::<u64>(),
        ops in 30i64..60,
    ) {
        let spec = spec_for(which, ops);
        let mut cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 4);
        cfg.seed = seed;
        let exact = adapt_with(&cfg, &AdaptPolicy::default(), &opts(0)).unwrap();
        let pruned = adapt_with(
            &cfg,
            &AdaptPolicy::default(),
            &EvalOptions { prune: Some(4), ..opts(0) },
        )
        .unwrap();
        if let Some(i) = exact.report.selected {
            let kept = &pruned.report.candidates[i];
            prop_assert!(
                kept.status.is_replayed(),
                "estimator pruned the exact winner (candidate {}: {})",
                i,
                kept.candidate.adjustment.tag()
            );
            prop_assert_eq!(pruned.report.selected, Some(i));
            prop_assert_eq!(kept.cost, exact.report.candidates[i].cost);
        } else {
            // No exact winner: pruning must not invent one.
            prop_assert_eq!(pruned.report.selected, None);
        }
    }
}

/// A candidate whose steered trace overflows its ring is surfaced as a
/// skip, not an error — and never contributes a cost to selection. A
/// tiny capacity overflows the baseline first, which *is* an error;
/// here the baseline fits (FIFO, no wake-decision events) while every
/// steered run overflows (each wake decision adds an event).
#[test]
fn overflowing_candidate_traces_surface_as_skips() {
    let spec = micro::list(Contention::High, 120, 20);
    let mut cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 8);
    // Find a capacity where the FIFO baseline fits exactly.
    let base = atomic_lock_inference::replay::record(&cfg).unwrap();
    let per_thread = base
        .trace
        .events
        .iter()
        .fold(std::collections::HashMap::new(), |mut m, e| {
            *m.entry(e.tid).or_insert(0usize) += 1;
            m
        });
    let max_ring = per_thread.values().copied().max().unwrap_or(0);
    cfg.trace_capacity = max_ring;
    let convoy = atomic_lock_inference::sched::ConvoyPolicy::default();
    match evaluate_with(&cfg, &convoy, &opts(1)) {
        Ok(run) => {
            // Every skip carries a reason and is excluded from the
            // evaluated set.
            for s in &run.report.skipped {
                assert!(s.reason.contains("dropped"), "{}", s.reason);
                assert!(run.report.evaluated.iter().all(|o| o.policy != s.policy));
            }
            let json = run.report.to_json();
            assert!(json.contains("\"skipped\":["), "{json}");
        }
        Err(e) => {
            // Acceptable only if the baseline itself overflowed at
            // this capacity (ring bookkeeping differs per mode).
            assert!(e.contains("baseline"), "{e}");
        }
    }
}

/// The adapt-side skip marker: statuses land in the decision JSON.
#[test]
fn decision_json_carries_statuses() {
    let spec = micro::list(Contention::High, 80, 10);
    let cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 4);
    let run = adapt_with(
        &cfg,
        &AdaptPolicy::default(),
        &EvalOptions {
            prune: Some(1),
            ..opts(0)
        },
    )
    .unwrap();
    let json = run.report.to_json();
    assert!(json.contains("\"status\":\"replayed\""), "{json}");
    // Whenever the harness pruned anything, the estimate travels in
    // the JSON next to the zeroed cost.
    if run
        .report
        .candidates
        .iter()
        .any(|d| matches!(d.status, EvalStatus::Pruned { .. }))
    {
        assert!(json.contains("\"status\":\"pruned\",\"est\":"), "{json}");
    }
}
