//! Property-based tests (proptest) on the core data structures: the
//! abstract-lock lattice, the merge's pruning, the mode matrix, and the
//! TL2 word space.

use atomic_lock_inference::{lockscheme, mglock, pointsto, tl2};
use lir::{Eff, PathExpr, PathOp};
use lockscheme::abslock::prune_redundant;
use lockscheme::AbsLock;
use proptest::prelude::*;

/// A fixture program with enough structure to form interesting paths.
fn fixture() -> (lir::Program, pointsto::PointsTo) {
    let p = lir::compile(
        "struct s { f; g; }
         global ga, gb;
         fn main(a, b) {
             ga = a;
             gb = new s;
             let x = a->f;
             let y = b->g;
             let z = *x;
             *x = y;
         }",
    )
    .unwrap();
    let pt = pointsto::PointsTo::analyze(&p);
    (p, pt)
}

/// Strategy: a random (possibly invalid) lock over the fixture program,
/// filtered to those the scheme accepts.
fn lock_strategy() -> impl Strategy<Value = AbsLock> {
    let (p, pt) = fixture();
    let n_vars = p.vars.len() as u32;
    let fields: Vec<lir::FieldId> = (0..p.fields.len() as u32).map(lir::FieldId).collect();
    (
        0..n_vars,
        proptest::collection::vec(
            prop_oneof![
                Just(None),                       // Deref
                (0..fields.len()).prop_map(Some)  // Field
            ],
            0..4,
        ),
        prop_oneof![Just(Eff::Ro), Just(Eff::Rw)],
        any::<bool>(),
    )
        .prop_filter_map(
            "lock must protect something",
            move |(base, ops, eff, coarse)| {
                let ops: Vec<PathOp> = ops
                    .into_iter()
                    .map(|o| match o {
                        None => PathOp::Deref,
                        Some(i) => PathOp::Field(fields[i]),
                    })
                    .collect();
                let path = PathExpr {
                    base: lir::VarId(base),
                    ops,
                };
                if coarse {
                    let c = pt.class_of_path(&path)?;
                    Some(AbsLock::coarse(c, eff))
                } else {
                    AbsLock::fine(path, eff, &pt)
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ≤ is a partial order with ⊤ greatest; ⊔ is its least upper
    /// bound (on the generated sample space).
    #[test]
    fn abslock_lattice_laws(a in lock_strategy(), b in lock_strategy(), c in lock_strategy()) {
        let top = AbsLock::global();
        prop_assert!(a.leq(&a));
        prop_assert!(a.leq(&top));
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(&a, &b);
        }
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
        let j = a.join(&b);
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        prop_assert_eq!(a.join(&b), b.join(&a));
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(j.leq(&c));
        }
    }

    /// Pruning keeps a cover: everything removed is below something
    /// kept, nothing kept is below anything else kept.
    #[test]
    fn prune_keeps_a_minimal_cover(locks in proptest::collection::vec(lock_strategy(), 1..12)) {
        let mut pruned = locks.clone();
        prune_redundant(&mut pruned);
        // Cover: every input lock is ≤ some survivor.
        for l in &locks {
            prop_assert!(
                pruned.iter().any(|p| l.leq(p)),
                "{l} lost its cover"
            );
        }
        // Minimal: no survivor is below another.
        for a in &pruned {
            for b in &pruned {
                if a != b {
                    prop_assert!(!a.leq(b), "{a} ≤ {b} survived pruning");
                }
            }
        }
    }

    /// Mode combination is the least mode granting both, and
    /// compatibility is anti-monotone under it.
    #[test]
    fn mode_combine_props(a in 0usize..5, b in 0usize..5, c in 0usize..5) {
        use mglock::modes::ALL_MODES;
        let (a, b, c) = (ALL_MODES[a], ALL_MODES[b], ALL_MODES[c]);
        let j = a.combine(b);
        prop_assert!(j.grants(a) && j.grants(b));
        // Anything compatible with the combination is compatible with
        // both parts.
        if c.compatible(j) {
            prop_assert!(c.compatible(a) && c.compatible(b));
        }
    }

    /// TL2 single-threaded transactions behave like direct memory.
    #[test]
    fn tl2_matches_direct_memory(ops in proptest::collection::vec((0usize..16, any::<i16>()), 1..40)) {
        let space = tl2::Space::new(16);
        let mut model = [0i64; 16];
        for chunk in ops.chunks(5) {
            let ((), _) = space.atomically(|t| {
                for (i, v) in chunk {
                    let cur = t.read(*i)?;
                    t.write(*i, cur + *v as i64);
                }
                Ok(())
            });
            for (i, v) in chunk {
                model[*i] += *v as i64;
            }
        }
        for (i, want) in model.iter().enumerate() {
            prop_assert_eq!(space.read_direct(i), *want);
        }
    }

    /// Effect lattice: join is lub, leq is total here.
    #[test]
    fn eff_laws(a in 0u8..2, b in 0u8..2) {
        let eff = |x| if x == 0 { Eff::Ro } else { Eff::Rw };
        let (a, b) = (eff(a), eff(b));
        prop_assert!(a.leq(a.join(b)));
        prop_assert!(b.leq(a.join(b)));
        prop_assert_eq!(a.join(b), b.join(a));
    }
}
