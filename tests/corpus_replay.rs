//! Corpus regression tests: recorded `ali-trace-v1` traces under
//! `tests/corpus/` are replayed from scratch and every byte of behavior
//! is re-checked.
//!
//! Each corpus file embeds its full run configuration (workload source,
//! mode, k, threads, fault plan), so `replay::replay` rebuilds the
//! program, re-runs the inference + transformation + scheduler
//! pipeline, and must reproduce the exact recorded event stream. A
//! digest mismatch means some layer of the stack stopped being
//! deterministic — or changed behavior — without the corpus being
//! regenerated on purpose. The recorded locksets are also re-validated
//! against the Eraser-style discipline on every run.

use atomic_lock_inference::interp::{ExecMode, SentinelConfig, WeakenPlan};
use atomic_lock_inference::replay;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 2,
        "corpus should hold the recorded traces, found {files:?}"
    );
    files
}

/// Every corpus trace replays to an identical digest.
#[test]
fn corpus_traces_replay_byte_identically() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let t = trace::Trace::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rec = replay::replay(&t).unwrap_or_else(|e| panic!("{name}: replay failed: {e}"));
        assert_eq!(
            t.digest(),
            rec.trace.digest(),
            "{name}: replay digest diverged from the recorded trace"
        );
    }
}

/// The canonical JSON encoding round-trips exactly, so digests diffed
/// across tool versions compare the same bytes.
#[test]
fn corpus_traces_round_trip_through_json() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let t = trace::Trace::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(t.to_json(), text, "{name}: canonical encoding changed");
    }
}

/// Each lock-mode corpus run re-recorded with the sentinel armed and a
/// seeded weaken fault (`--sentinel --weaken 0:0`) is just as
/// deterministic as the clean original: the armed twin replays to its
/// own digest byte for byte — quarantine ladder, violation sampling
/// and all — and at least one workload actually trips the ladder, so
/// the armed path is exercised, not just tolerated. The pristine
/// corpus files themselves are untouched: clean-run digests stay the
/// regression anchor.
#[test]
fn corpus_runs_replay_deterministically_when_armed_and_weakened() {
    let mut tripped = 0u32;
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let t = trace::Trace::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut cfg = replay::RunConfig::from_trace(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        if !matches!(cfg.mode, ExecMode::MultiGrain | ExecMode::Validate) {
            continue; // no inferred locks to weaken under Global/Stm
        }
        cfg.name.push_str("-armed");
        cfg.sentinel = Some(SentinelConfig::default());
        cfg.weaken = Some(WeakenPlan {
            section: 0,
            drop_index: 0,
        });
        let rec = replay::record(&cfg).unwrap_or_else(|e| panic!("{name}: armed record: {e}"));
        assert!(
            rec.outcome.error.is_none(),
            "{name}: armed run errored: {:?}",
            rec.outcome.error
        );
        let again =
            replay::replay(&rec.trace).unwrap_or_else(|e| panic!("{name}: armed replay: {e}"));
        assert_eq!(
            rec.trace.digest(),
            again.trace.digest(),
            "{name}: armed+weakened replay digest diverged"
        );
        assert_eq!(rec.outcome, again.outcome, "{name}: armed outcome diverged");
        tripped += u32::from(trace::quarantine_history(&rec.trace).demotions() > 0);
    }
    assert!(
        tripped > 0,
        "no lock-mode corpus workload tripped the quarantine ladder"
    );
}

/// Recorded locksets still satisfy the validation discipline.
#[test]
fn corpus_traces_pass_lockset_validation() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let t = trace::Trace::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let v = trace::validate(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(v.passed(), "{name}: {:?}", v.violations);
    }
}
