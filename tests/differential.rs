//! Differential testing of the optimized lock-inference engine against
//! the retained naive reference solver (`lockinfer::reference`).
//!
//! The optimized engine changes the *representation* (hash-consed lock
//! ids, bitset state, shared summary cache, parallel per-section
//! solving) but must not change a single inferred lock. These tests
//! assert exact equality — section ids, marker positions, and the full
//! ordered lock vectors — over random runnable programs and the
//! `analysis-bench` scale tiers, for several `k` bounds, and that the
//! parallel engine is byte-for-byte deterministic across runs and
//! thread counts.

use atomic_lock_inference::{lockinfer, lockscheme, pointsto, workloads};
use proptest::prelude::*;

fn compare_engines(source: &str, name: &str, k: usize, threads: &[usize]) {
    let program = lir::compile(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let pt = pointsto::PointsTo::analyze(&program);
    let cfg = lockscheme::SchemeConfig::full(k, program.elem_field_opt());
    let lib = lockinfer::library::LibrarySpec::new();
    let reference = lockinfer::analyze_program_reference(&program, &pt, cfg, &lib);
    for &t in threads {
        let got = lockinfer::analyze_program_with_opts(&program, &pt, cfg, &lib, t);
        assert_eq!(
            got.sections, reference,
            "{name} (k={k}, threads={t}): optimized engine diverged from reference"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact agreement on random runnable programs, sequential and
    /// parallel, across the k bounds the paper evaluates.
    #[test]
    fn optimized_engine_matches_reference_on_random_programs(
        seed in 0u64..5000,
        stmts in 20usize..70,
        k in prop_oneof![Just(0usize), Just(1), Just(3), Just(9)],
    ) {
        let spec = workloads::fuzz::runnable(seed, stmts);
        compare_engines(&spec.source, &spec.name, k, &[1, 4]);
    }
}

/// Exact agreement on the layered scale programs the throughput
/// benchmark uses — deep call chains and heavily shared summaries, the
/// paths most exercised by the caching layers.
#[test]
fn optimized_engine_matches_reference_on_scale_tiers() {
    for (name, p) in workloads::scale::tiers().into_iter().take(2) {
        let spec = workloads::scale::generate(name, p);
        for k in [0, 3] {
            compare_engines(&spec.source, name, k, &[1, 0]);
        }
    }
}

/// The parallel solve is deterministic: any thread count, any run, the
/// same ordered output.
#[test]
fn parallel_solving_is_deterministic() {
    let (name, p) = &workloads::scale::tiers()[1];
    let spec = workloads::scale::generate(name, *p);
    let program = lir::compile(&spec.source).unwrap();
    let pt = pointsto::PointsTo::analyze(&program);
    let cfg = lockscheme::SchemeConfig::full(3, program.elem_field_opt());
    let lib = lockinfer::library::LibrarySpec::new();
    let baseline = lockinfer::analyze_program_with_opts(&program, &pt, cfg, &lib, 1);
    for t in [2, 3, 8, 0] {
        for _run in 0..2 {
            let got = lockinfer::analyze_program_with_opts(&program, &pt, cfg, &lib, t);
            assert_eq!(
                got.sections, baseline.sections,
                "threads={t} changed the analysis output"
            );
        }
    }
}
