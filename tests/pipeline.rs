//! Cross-crate integration: every evaluation workload goes through the
//! full pipeline (parse → points-to → inference → transformation →
//! execution) under every execution discipline, with its invariants
//! checked afterwards.

use atomic_lock_inference::{interp, lockinfer, lockscheme, pointsto, workloads};
use interp::{ExecMode, Machine, Options};
use std::sync::Arc;
use workloads::{Contention, RunSpec};

fn run_spec(spec: &RunSpec, mode: ExecMode, k: usize, threads: usize) {
    let program = lir::compile(&spec.source).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let cfg = lockscheme::SchemeConfig::full(k, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = Arc::new(lockinfer::transform(&program, &analysis));
    let machine = Machine::new(
        transformed,
        pt,
        mode,
        Options {
            heap_cells: spec.heap_cells,
            ..Options::default()
        },
    );
    let (init_fn, init_args) = &spec.init;
    machine
        .run_named(init_fn, init_args)
        .unwrap_or_else(|e| panic!("{} init ({mode:?}, k={k}): {e}", spec.name));
    let (worker_fn, worker_args) = &spec.worker;
    machine
        .run_threads(worker_fn, threads, |_| worker_args.clone())
        .unwrap_or_else(|e| panic!("{} worker ({mode:?}, k={k}): {e}", spec.name));
    if let Some(check) = spec.check {
        machine
            .run_named(check, &[])
            .unwrap_or_else(|e| panic!("{} check ({mode:?}, k={k}): {e}", spec.name));
    }
}

#[test]
fn micro_benchmarks_run_under_all_modes() {
    for c in [Contention::Low, Contention::High] {
        for spec in workloads::micro::all(c, 150, 3) {
            for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
                run_spec(&spec, mode, 9, 4);
            }
        }
    }
}

#[test]
fn micro_benchmarks_validate_at_every_k() {
    // The Theorem-1 checker accepts the inferred locks at any k —
    // single-threaded (the checker is about coverage, not races).
    for c in [Contention::Low, Contention::High] {
        for spec in workloads::micro::all(c, 120, 0) {
            for k in [0, 1, 2, 9] {
                run_spec(&spec, ExecMode::Validate, k, 1);
            }
        }
    }
}

#[test]
fn stamp_kernels_run_under_all_modes() {
    for spec in workloads::stamp::all(120, 3) {
        for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
            run_spec(&spec, mode, 9, 4);
        }
        run_spec(&spec, ExecMode::Validate, 3, 1);
    }
}

#[test]
fn coarse_only_locks_also_run_concurrently() {
    // k = 0 (all coarse) is the paper's "Coarse" column: still correct.
    for spec in [
        workloads::micro::hashtable2(Contention::High, 150, 2),
        workloads::micro::th(Contention::Low, 150, 2),
    ] {
        run_spec(&spec, ExecMode::MultiGrain, 0, 8);
    }
}

#[test]
fn virtual_and_real_execution_agree_on_results() {
    let spec = workloads::micro::list(Contention::High, 100, 1);
    let program = lir::compile(&spec.source).unwrap();
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let cfg = lockscheme::SchemeConfig::full(3, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = Arc::new(lockinfer::transform(&program, &analysis));
    for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
        let machine = Machine::new(
            Arc::clone(&transformed),
            Arc::clone(&pt),
            mode,
            Options::default(),
        );
        let (init_fn, init_args) = &spec.init;
        machine.run_named(init_fn, init_args).unwrap();
        let (worker_fn, worker_args) = &spec.worker;
        let (_, makespan) = machine
            .run_threads_virtual(worker_fn, 4, |_| worker_args.clone())
            .unwrap();
        assert!(makespan > 0);
        machine.run_named("check", &[]).unwrap();
    }
}

#[test]
fn fine_beats_coarse_on_hashtable2_in_virtual_time() {
    // The paper's headline Table 2 shape, as a regression test.
    let spec = workloads::micro::hashtable2(Contention::High, 800, 100);
    let span_at = |k: usize| {
        let program = lir::compile(&spec.source).unwrap();
        let pt = Arc::new(pointsto::PointsTo::analyze(&program));
        let cfg = lockscheme::SchemeConfig::full(k, program.elem_field_opt());
        let analysis = lockinfer::analyze_program(&program, &pt, cfg);
        let transformed = Arc::new(lockinfer::transform(&program, &analysis));
        let machine = Machine::new(transformed, pt, ExecMode::MultiGrain, Options::default());
        let (init_fn, init_args) = &spec.init;
        machine.run_named(init_fn, init_args).unwrap();
        let (worker_fn, worker_args) = &spec.worker;
        let (_, span) = machine
            .run_threads_virtual(worker_fn, 8, |_| worker_args.clone())
            .unwrap();
        span
    };
    let coarse = span_at(0);
    let fine = span_at(9);
    assert!(
        (fine as f64) < 0.7 * coarse as f64,
        "fine-grain locks clearly beat coarse: fine={fine} coarse={coarse}"
    );
}
