//! End-to-end checks of the tracing subsystem against the inference
//! pipeline:
//!
//! * **positive** — on every micro and STAMP-like workload, under all
//!   three runtimes, the Eraser-style lockset validator finds zero
//!   uncovered in-section accesses in the recorded trace (the runtime
//!   counterpart of the paper's Theorem 1);
//! * **negative** — deliberately weakening the inference by dropping
//!   one inferred lock from an `acquireAll` is *caught*: the validator
//!   flags the now-unlicensed access;
//! * **replay** — a trace written to disk re-executes to the same
//!   digest, twice, including a run that crashed under fault injection.

use atomic_lock_inference as ali;

use ali::interp::{ExecMode, FaultPlan, Machine, Options, SentinelConfig, WeakenPlan};
use ali::lir;
use ali::pointsto::PointsTo;
use ali::replay::{self, RunConfig};
use ali::workloads::{micro, stamp, Contention, RunSpec};
use std::sync::Arc;

const THREADS: usize = 4;

fn corpus() -> Vec<RunSpec> {
    vec![
        micro::list(Contention::Low, 40, 5),
        micro::hashtable(Contention::High, 60, 5),
        micro::hashtable2(Contention::High, 60, 5),
        micro::rbtree(Contention::Low, 40, 5),
        micro::th(Contention::Low, 40, 5),
        stamp::genome(60, 5),
        stamp::vacation(60, 5),
        stamp::kmeans(60, 5),
    ]
}

#[test]
fn every_workload_validates_clean_under_every_runtime() {
    for spec in corpus() {
        for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
            for k in [0, 9] {
                let label = format!("{} [{mode:?}] k={k}", spec.name);
                let cfg = RunConfig::from_spec(&spec, k, mode, THREADS);
                let rec = replay::record(&cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
                assert!(
                    rec.outcome.error.is_none(),
                    "{label}: {:?}",
                    rec.outcome.error
                );
                let v =
                    ali::trace::validate(&rec.trace).unwrap_or_else(|e| panic!("{label}: {e:?}"));
                assert!(
                    v.passed(),
                    "{label}: uncovered accesses: {:?}",
                    v.violations
                );
                assert!(v.checked > 0, "{label}: no accesses recorded");
            }
        }
    }
}

/// Builds a MultiGrain machine from `source` at `k`, optionally
/// dropping the lock descriptor at `drop_spec` = (section occurrence,
/// index) from its `acquireAll`, and returns the validated trace
/// verdict.
fn run_weakened(source: &str, k: usize, drop_spec: Option<usize>) -> ali::trace::Validation {
    let program = lir::compile(source).expect("fixture compiles");
    let pt = Arc::new(PointsTo::analyze(&program));
    let cfg = ali::lockscheme::SchemeConfig::full(k, program.elem_field_opt());
    let analysis = ali::lockinfer::analyze_program(&program, &pt, cfg);
    let mut transformed = ali::lockinfer::transform(&program, &analysis);
    if let Some(i) = drop_spec {
        let mut dropped = false;
        for func in &mut transformed.functions {
            for ins in &mut func.body {
                if let lir::Instr::AcquireAll(_, specs) = ins {
                    if i < specs.len() {
                        specs.remove(i);
                        dropped = true;
                    }
                }
            }
        }
        assert!(dropped, "nothing to drop at index {i}");
    }
    let opts = Options {
        heap_cells: 1 << 16,
        trace: Some(ali::trace::TraceConfig::default()),
        ..Options::default()
    };
    let m = Machine::new(Arc::new(transformed), pt, ExecMode::MultiGrain, opts);
    m.run_threads_virtual("work", THREADS, |_| vec![20])
        .expect("weakened locks still run — they just race");
    ali::trace::validate(&m.take_trace().expect("tracing on")).expect("complete trace")
}

#[test]
fn dropping_one_inferred_lock_is_caught() {
    let src = r#"
        global a, b;
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { a = a + 1; b = b + a; nops(10); }
                i = i + 1;
            }
            return 0;
        }
    "#;
    // Intact inference: clean.
    let v = run_weakened(src, 3, None);
    assert!(v.passed(), "intact locks must validate: {:?}", v.violations);
    assert!(v.checked > 0);
    // Count the inferred descriptors on the section.
    let program = lir::compile(src).unwrap();
    let pt = Arc::new(PointsTo::analyze(&program));
    let cfg = ali::lockscheme::SchemeConfig::full(3, program.elem_field_opt());
    let analysis = ali::lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = ali::lockinfer::transform(&program, &analysis);
    let n_specs = transformed
        .functions
        .iter()
        .flat_map(|f| &f.body)
        .find_map(|ins| match ins {
            lir::Instr::AcquireAll(_, specs) => Some(specs.len()),
            _ => None,
        })
        .expect("the section was transformed");
    assert!(n_specs > 0, "inference produced no locks to weaken");
    // Dropping any single descriptor must uncover at least one access
    // in at least one weakened variant (for this two-global section,
    // every descriptor is load-bearing).
    let mut caught = 0;
    for i in 0..n_specs {
        let v = run_weakened(src, 3, Some(i));
        if !v.violations.is_empty() {
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "weakened inference went unnoticed across {n_specs} variants"
    );
}

/// A sentinel-armed weakened run that crashes mid-section while the
/// demoted section is still serving probation: the reconstructed
/// quarantine history must suppress the half-open entry (never claim
/// live state the run can't prove), survive a JSON round trip intact,
/// and the crashed trace must still replay byte for byte.
#[test]
fn crash_inside_probation_suppresses_history_and_round_trips() {
    let spec = RunSpec {
        name: "probation-crash".into(),
        source: r#"
            global a, b;
            fn setup(n) { a = n; b = n; }
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { a = a + 1; b = b + a; nops(10); }
                    i = i + 1;
                }
                return 0;
            }
        "#
        .into(),
        init: ("setup", vec![0]),
        worker: ("work", vec![30]),
        check: None,
        heap_cells: 1 << 12,
    };
    let mut cfg = RunConfig::from_spec(&spec, 3, ExecMode::MultiGrain, THREADS);
    cfg.sentinel = Some(SentinelConfig::default());
    cfg.weaken = Some(WeakenPlan {
        section: 0,
        drop_index: 0,
    });
    cfg.faults = Some(FaultPlan::new(0x9A1C).with_panics(6, 1));
    let rec = replay::record(&cfg).expect("recording survives the crash");
    let h = ali::trace::quarantine_history(&rec.trace);
    assert!(
        h.demotions() > 0,
        "the weakened section must demote before the crash"
    );
    assert!(
        h.open.is_empty(),
        "a crashed run cannot prove its live quarantine state: {h:?}"
    );
    assert!(
        h.suppressed > 0,
        "the probation the crash interrupted is suppressed, not claimed: {h:?}"
    );
    // JSON round trip preserves both the bytes and the reconstruction.
    let loaded = ali::trace::Trace::from_json(&rec.trace.to_json()).expect("parse trace");
    assert_eq!(loaded.digest(), rec.trace.digest(), "JSON round-trip");
    let h2 = ali::trace::quarantine_history(&loaded);
    assert_eq!(h2, h, "history diverged across the round trip");
    assert_eq!(
        ali::trace::quarantine::render(&h2),
        ali::trace::quarantine::render(&h)
    );
    // The crashed, truncated run replays exactly.
    let again = replay::replay(&loaded).expect("crashed runs replay");
    assert_eq!(again.trace.digest(), rec.trace.digest());
    assert_eq!(again.outcome, rec.outcome);
}

#[test]
fn trace_file_replays_to_the_same_digest_twice() {
    let spec = micro::hashtable2(Contention::High, 50, 5);
    let mut cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, THREADS);
    // Crash the run on purpose: the failure must replay exactly too.
    cfg.faults = Some(FaultPlan::new(0x0B22).with_panics(8, 1));
    let rec = replay::record(&cfg).expect("recording survives the crash");
    let path = std::env::temp_dir().join("ali-trace-validate-roundtrip.json");
    std::fs::write(&path, rec.trace.to_json()).expect("write trace");
    let loaded = ali::trace::Trace::from_json(&std::fs::read_to_string(&path).expect("read"))
        .expect("parse trace");
    assert_eq!(loaded.digest(), rec.trace.digest(), "JSON round-trip");
    let once = replay::replay(&loaded).expect("first replay");
    let twice = replay::replay(&loaded).expect("second replay");
    assert_eq!(once.trace.digest(), loaded.digest(), "replay == recording");
    assert_eq!(
        once.trace.digest(),
        twice.trace.digest(),
        "replay is stable"
    );
    assert_eq!(once.outcome, twice.outcome);
    let _ = std::fs::remove_file(&path);
}
