//! The observability layer's determinism contract (DESIGN.md §5.9):
//! a trace-derived metrics snapshot is a pure function of the trace
//! bytes, so it is byte-identical at every analysis thread count; the
//! exporters render those bytes into frozen golden files.
//!
//! Set `BLESS=1` to regenerate the goldens under `tests/golden/` after
//! an intentional format change.

use atomic_lock_inference as ali;

use ali::interp::ExecMode;
use ali::replay::RunConfig;
use ali::{obs, Pipeline};
use proptest::prelude::*;

/// A writer section, a read-mostly section, and a short counter
/// section: enough shape for nonzero wait/hold histograms, lock-mode
/// spread, and per-section metric labels.
const SRC: &str = r#"
    global shared;
    global total;
    fn setup(n) { shared = n; total = 0; }
    fn work(iters) {
        let i = 0;
        let acc = 0;
        while (i < iters) {
            atomic { shared = shared + 1; nops(60); }
            atomic { acc = acc + shared; nops(5); }
            atomic { total = total + 1; }
            i = i + 1;
        }
        return acc;
    }
    fn probe() { return shared + total; }
"#;

fn cfg(seed: u64, threads: usize, iters: i64) -> RunConfig {
    RunConfig {
        name: "obs-metrics".into(),
        source: SRC.into(),
        k: 3,
        mode: ExecMode::MultiGrain,
        threads,
        heap_cells: 1 << 12,
        seed,
        quantum: 64,
        stm_abort_budget: 16,
        faults: None,
        sentinel: None,
        weaken: None,
        sched: None,
        repairs: Vec::new(),
        trace_capacity: 1 << 16,
        init: ("setup".into(), vec![0]),
        worker: ("work".into(), vec![iters]),
        check: Some("probe".into()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `obs::from_trace` composed with the recorder is byte-identical
    /// at analysis thread counts 1, 2, and 7 — the snapshot inherits
    /// the trace's thread-count independence, and the canonical JSON
    /// encoding makes that equality literal.
    #[test]
    fn derived_snapshots_are_identical_at_every_analysis_thread_count(
        seed in any::<u64>(),
        threads in 2usize..5,
        iters in 4i64..10,
    ) {
        let c = cfg(seed, threads, iters);
        let snaps: Vec<String> = [1usize, 2, 7]
            .iter()
            .map(|&t| {
                let rec = Pipeline::new(c.clone())
                    .analysis_threads(t)
                    .record()
                    .expect("recording succeeds");
                obs::from_trace(&rec.trace).to_json()
            })
            .collect();
        prop_assert_eq!(&snaps[1], &snaps[0], "snapshot bytes diverged at 2 threads");
        prop_assert_eq!(&snaps[2], &snaps[0], "snapshot bytes diverged at 7 threads");
        prop_assert!(
            snaps[0].starts_with("{\"format\":\"ali-metrics-v1\""),
            "canonical header missing"
        );
    }

    /// A live metrics registry riding the run never perturbs the
    /// recorded trace: armed and unarmed recordings are byte-identical.
    #[test]
    fn live_metrics_never_perturb_the_trace(
        seed in any::<u64>(),
        threads in 2usize..5,
        iters in 4i64..8,
    ) {
        let c = cfg(seed, threads, iters);
        let reg = std::sync::Arc::new(obs::Registry::new());
        let armed = Pipeline::new(c.clone())
            .analysis_threads(1)
            .metrics(std::sync::Arc::clone(&reg))
            .record()
            .expect("armed recording succeeds");
        let plain = Pipeline::new(c)
            .analysis_threads(1)
            .record()
            .expect("plain recording succeeds");
        prop_assert_eq!(armed.trace.to_json(), plain.trace.to_json());
        prop_assert_eq!(&armed.outcome, &plain.outcome);
        // And the registry really was live.
        let entries = reg
            .snapshot()
            .counters
            .iter()
            .find(|(k, _)| k.name == "ali_run_section_entries_total")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        prop_assert!(entries > 0, "armed run must count section entries");
    }
}

/// Golden recording: fixed seed and shape, so the exporters' output is
/// frozen down to the byte.
fn golden_trace() -> ali::trace::Trace {
    Pipeline::new(cfg(0x0B5, 4, 6))
        .analysis_threads(1)
        .record()
        .expect("golden recording succeeds")
        .trace
}

fn assert_golden(name: &str, rendered: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("bless {path}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        rendered, want,
        "{name} drifted from its golden file — rerun with BLESS=1 if intentional"
    );
}

#[test]
fn prometheus_exposition_matches_the_golden_file() {
    let t = golden_trace();
    assert_golden(
        "metrics.prom",
        &obs::export::prometheus(&obs::from_trace(&t)),
    );
}

#[test]
fn speedscope_flamegraph_matches_the_golden_file() {
    let t = golden_trace();
    assert_golden("metrics.speedscope.json", &obs::export::speedscope(&t));
}

#[test]
fn snapshot_json_matches_the_golden_file() {
    let t = golden_trace();
    assert_golden("metrics.json", &obs::from_trace(&t).to_json());
}
