//! Profile-guided per-section adaptation — the *measurement* half of
//! the adaptive loop (DESIGN.md §5.4).
//!
//! [`lockinfer::adapt`] is the pure policy: corrected wait/hold
//! profiles in, candidate per-section [`ConfigMap`] overrides out. This
//! module closes the loop against the deterministic interpreter:
//!
//! 1. **Record** the baseline under the uniform configuration
//!    ([`crate::replay::record`]) and profile its trace — wait split
//!    from hold at the first `PlanComplete` marker, revalidation
//!    retries tallied separately.
//! 2. **Propose** candidate overrides from those profiles.
//! 3. **Re-infer** the program once per candidate map. Phase A summary
//!    caches are memoized in a [`SummaryStore`] keyed by scheme
//!    configuration, so the candidate loop pays for each distinct
//!    configuration once.
//! 4. **Replay** the identical `RunConfig` (same seed, same virtual
//!    scheduler, same fault plan) under each candidate's locks and
//!    measure the replayed [`PlanCost`].
//! 5. **Select** the candidate with the lowest total virtual-time wait,
//!    strictly below the baseline, and emit a machine-readable
//!    [`DecisionReport`].
//!
//! Everything downstream of the recorded trace is deterministic: the
//! policy is pure, inference is byte-identical at any analysis thread
//! count, and the virtual scheduler reproduces executions exactly — so
//! two `adapt` runs over the same config produce byte-identical
//! reports and adapted-trace digests.
//!
//! An adapted trace is deliberately **not** stamped with `run.*`
//! replay metadata: `replay()` would re-infer under the uniform
//! configuration and silently diverge. It carries `adapt.*` keys
//! describing the applied overrides instead.

use crate::replay::{execute, options_for, record, stamp_outcome, Recording, RunConfig};
use interp::Machine;
use lockinfer::adapt::{candidates, select, AdaptPolicy, Decision, DecisionReport, PlanCost};
use lockinfer::library::LibrarySpec;
use lockinfer::SummaryStore;
use lockscheme::{ConfigMap, SchemeConfig};
use std::sync::Arc;
use trace::Trace;

/// The full result of one adaptation loop.
#[derive(Clone, Debug)]
pub struct AdaptRun {
    /// Machine-readable decision record (all candidates, all costs).
    pub report: DecisionReport,
    /// The baseline recording the profiles came from.
    pub baseline: Recording,
    /// The winning candidate's recording, when one beat the baseline.
    pub adapted: Option<Recording>,
}

/// Records `cfg`, profiles it, evaluates policy candidates by replay,
/// and selects the best per-section configuration.
///
/// `analysis_threads` is the Phase B worker count for lock inference
/// (`0` = one per core); the outcome is identical for every value.
///
/// # Errors
///
/// Returns a message on compile failure or when the recorded trace is
/// unusable (ring overflow).
pub fn adapt(
    cfg: &RunConfig,
    policy: &AdaptPolicy,
    analysis_threads: usize,
) -> Result<AdaptRun, String> {
    let baseline = record(cfg)?;
    if baseline.trace.dropped > 0 {
        return Err(format!(
            "adapt: baseline trace dropped {} events — raise trace_capacity",
            baseline.trace.dropped
        ));
    }
    let program = lir::compile(&cfg.source).map_err(|e| e.to_string())?;
    let base_map = ConfigMap::uniform(SchemeConfig::full(cfg.k, program.elem_field_opt()));
    let profiles = trace::profile(&baseline.trace);
    let cands = candidates(&profiles, &base_map, policy);
    let base_cost = PlanCost::from_profiles(&profiles, baseline.outcome.makespan);

    let mut store = SummaryStore::new();
    let mut decisions = Vec::with_capacity(cands.len());
    let mut recordings = Vec::with_capacity(cands.len());
    for cand in &cands {
        let map = cand.config_map(&base_map);
        // Wake-policy candidates keep the lock plan (the base map, a
        // SummaryStore cache hit) and steer the scheduler instead: the
        // policy's configuration is frozen from the baseline profiles,
        // exactly as the `crate::sched` harness would.
        let mut cand_cfg = cfg.clone();
        if let lockinfer::adapt::Adjustment::WakePolicy(kind) = cand.adjustment {
            cand_cfg.sched = Some(interp::SchedConfig::from_profiles(kind, &profiles));
        }
        let rec = record_with_map(&cand_cfg, &map, analysis_threads, &mut store)?;
        let prof = trace::profile(&rec.trace);
        decisions.push(Decision {
            candidate: *cand,
            cost: PlanCost::from_profiles(&prof, rec.outcome.makespan),
        });
        recordings.push(rec);
    }
    let selected = select(
        base_cost,
        &decisions.iter().map(|d| d.cost).collect::<Vec<_>>(),
    );
    let report = DecisionReport {
        name: cfg.name.clone(),
        mode: format!("{:?}", cfg.mode),
        baseline: base_cost,
        candidates: decisions,
        selected,
    };
    let adapted = selected.and_then(|i| recordings.into_iter().nth(i));
    Ok(AdaptRun {
        report,
        baseline,
        adapted,
    })
}

/// Like [`adapt`], but starting from an existing self-describing trace
/// (one produced by [`crate::replay::record`]): the embedded
/// [`RunConfig`] is re-executed as the baseline.
///
/// # Errors
///
/// Returns a message when the trace lacks `run.*` metadata or the
/// embedded source no longer compiles.
pub fn adapt_trace(
    t: &Trace,
    policy: &AdaptPolicy,
    analysis_threads: usize,
) -> Result<AdaptRun, String> {
    adapt(&RunConfig::from_trace(t)?, policy, analysis_threads)
}

/// Executes `cfg` with locks inferred under a per-section `map` rather
/// than the uniform configuration — the candidate-evaluation twin of
/// [`crate::replay::record`]. Phase A summaries are shared through
/// `store` across every candidate of the same program.
fn record_with_map(
    cfg: &RunConfig,
    map: &ConfigMap,
    analysis_threads: usize,
    store: &mut SummaryStore,
) -> Result<Recording, String> {
    let program = lir::compile(&cfg.source).map_err(|e| e.to_string())?;
    let pt = pointsto::PointsTo::analyze(&program);
    let analysis = lockinfer::analyze_program_with_configs(
        &program,
        &pt,
        map,
        &LibrarySpec::new(),
        analysis_threads,
        Some(store),
    );
    let transformed = lockinfer::transform(&program, &analysis);
    let m = Machine::new(
        Arc::new(transformed),
        Arc::new(pt),
        cfg.mode,
        options_for(cfg),
    );
    let (outcome, mut trace) = execute(&m, cfg);
    trace.meta_set("adapt.name", cfg.name.clone());
    trace.meta_set("adapt.base_k", cfg.k.to_string());
    for (section, c) in map.overrides() {
        trace.meta_set(
            &format!("adapt.section.{section}"),
            format!(
                "k={},expr={},pts={},eff={}",
                c.k, c.use_expr, c.use_pts, c.use_eff
            ),
        );
    }
    if let Some(s) = &cfg.sched {
        trace.meta_set("adapt.wake_policy", s.policy.tag().to_owned());
    }
    stamp_outcome(&outcome, &mut trace);
    Ok(Recording { outcome, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::ExecMode;

    /// Two sections with opposite temperaments: `hot` hammers one
    /// global under long critical sections (wait ≫ hold per entry once
    /// several threads queue), `cold` touches a thread-private cell
    /// (never contended).
    const SRC: &str = r#"
        global shared;
        global cells;
        fn setup(n) { cells = new(64); shared = 0; }
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { shared = shared + 1; nops(200); }
                atomic { cells[tid()] = cells[tid()] + 1; }
                i = i + 1;
            }
            return 0;
        }
        fn total() { return shared; }
    "#;

    fn cfg() -> RunConfig {
        RunConfig {
            name: "two-temperaments".into(),
            source: SRC.into(),
            k: 3,
            mode: ExecMode::MultiGrain,
            threads: 8,
            heap_cells: 1 << 16,
            seed: 11,
            quantum: 64,
            stm_abort_budget: 16,
            faults: None,
            sentinel: None,
            weaken: None,
            sched: None,
            trace_capacity: 1 << 18,
            init: ("setup".into(), vec![0]),
            worker: ("work".into(), vec![30]),
            check: Some("total".into()),
        }
    }

    #[test]
    fn adapt_produces_candidates_and_a_report() {
        let run = adapt(&cfg(), &AdaptPolicy::default(), 1).unwrap();
        assert!(
            !run.report.candidates.is_empty(),
            "the hot section must trigger at least one proposal"
        );
        let json = run.report.to_json();
        assert!(json.contains("\"baseline\""), "{json}");
        assert!(run.report.baseline.total_wait > 0);
        // Candidate runs still compute the right answer.
        assert_eq!(run.baseline.outcome.check, Some(8 * 30));
    }

    #[test]
    fn adapt_is_deterministic_across_analysis_thread_counts() {
        let runs: Vec<AdaptRun> = [1usize, 2, 8]
            .iter()
            .map(|&t| adapt(&cfg(), &AdaptPolicy::default(), t).unwrap())
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.report.to_json(), runs[0].report.to_json());
            assert_eq!(r.baseline.trace.digest(), runs[0].baseline.trace.digest());
            match (&r.adapted, &runs[0].adapted) {
                (Some(a), Some(b)) => assert_eq!(a.trace.digest(), b.trace.digest()),
                (None, None) => {}
                other => panic!("selection diverged across thread counts: {other:?}"),
            }
        }
    }

    #[test]
    fn adapted_traces_are_not_replayable_but_carry_adapt_meta() {
        let run = adapt(&cfg(), &AdaptPolicy::default(), 1).unwrap();
        if let Some(adapted) = &run.adapted {
            assert!(crate::replay::replay(&adapted.trace).is_err());
            assert_eq!(
                adapted.trace.meta_get("adapt.name"),
                Some("two-temperaments")
            );
        }
        // The baseline stays fully replayable.
        let again = crate::replay::replay(&run.baseline.trace).unwrap();
        assert_eq!(again.trace.digest(), run.baseline.trace.digest());
    }

    #[test]
    fn adapt_trace_round_trips_through_recorded_metadata() {
        let rec = record(&cfg()).unwrap();
        let from_trace = adapt_trace(&rec.trace, &AdaptPolicy::default(), 1).unwrap();
        let direct = adapt(&cfg(), &AdaptPolicy::default(), 1).unwrap();
        assert_eq!(from_trace.report.to_json(), direct.report.to_json());
    }
}
