//! Profile-guided per-section adaptation — the *measurement* half of
//! the adaptive loop (DESIGN.md §5.4).
//!
//! [`lockinfer::adapt`] is the pure policy: corrected wait/hold
//! profiles in, candidate per-section [`ConfigMap`] overrides out. This
//! module closes the loop against the deterministic interpreter,
//! driving the shared evaluation harness ([`crate::eval`]):
//!
//! 1. **Record** the baseline under the uniform configuration and
//!    profile its trace — wait split from hold at the first
//!    `PlanComplete` marker, revalidation retries tallied separately.
//!    The program is compiled and points-to analyzed **once**, shared
//!    with every candidate.
//! 2. **Propose** candidate overrides from those profiles.
//! 3. **Prune** (optionally) by the trace-analytic estimator
//!    ([`lockinfer::estimate`]): only the estimated top-k candidates
//!    are replayed, the rest carry [`EvalStatus::Pruned`].
//! 4. **Replay** the identical `RunConfig` (same seed, same virtual
//!    scheduler, same fault plan) under each kept candidate's locks —
//!    **concurrently**, on the harness's eval-thread pool — and
//!    measure the replayed [`PlanCost`]. Candidate recordings are
//!    dropped after profiling (O(1) memory in candidate count); a
//!    candidate whose trace overflowed its ring is surfaced as
//!    [`EvalStatus::Skipped`], not a silently bogus cost.
//! 5. **Select** the candidate with the lowest total virtual-time wait,
//!    strictly below the baseline, and emit a machine-readable
//!    [`DecisionReport`]. With [`EvalOptions::beam`] set, a beam search
//!    over compound multi-override maps runs afterwards, seeded from
//!    the improving singles. The winning configuration (compound
//!    beating singles beating baseline) is re-executed once for the
//!    returned recording.
//!
//! Everything downstream of the recorded trace is deterministic: the
//! policy is pure, inference is byte-identical at any analysis thread
//! count, each replay is an exact virtual-time re-execution, and the
//! harness merges results in candidate order — so two `adapt` runs
//! over the same config produce byte-identical reports and
//! adapted-trace digests **at every eval thread count**.
//!
//! An adapted trace is deliberately **not** stamped with `run.*`
//! replay metadata: `replay()` would re-infer under the uniform
//! configuration and silently diverge. It carries `adapt.*` keys
//! describing the applied overrides instead.

use crate::eval::EvalOptions;
use crate::replay::{Recording, RunConfig};
use crate::Pipeline;
use lockinfer::adapt::{AdaptPolicy, BeamReport, DecisionReport};
use trace::Trace;

/// The full result of one adaptation loop.
#[derive(Clone, Debug)]
pub struct AdaptRun {
    /// Machine-readable decision record (all candidates, all costs).
    pub report: DecisionReport,
    /// The baseline recording the profiles came from.
    pub baseline: Recording,
    /// The winning configuration's recording, when one beat the
    /// baseline (the beam winner when the search found a compound that
    /// beat every single).
    pub adapted: Option<Recording>,
    /// The beam-search record, when [`EvalOptions::beam`] was set.
    pub beam: Option<BeamReport>,
}

/// Records `cfg`, profiles it, evaluates policy candidates by replay,
/// and selects the best per-section configuration.
///
/// `analysis_threads` is the Phase B worker count for lock inference
/// (`0` = one per core); the outcome is identical for every value.
/// Candidates are evaluated with default [`EvalOptions`]: exact (no
/// pruning, no beam search), concurrently on one eval worker per core
/// — the report is byte-identical at every worker count.
///
/// # Errors
///
/// Returns a message on compile failure or when the recorded trace is
/// unusable (ring overflow).
pub fn adapt(
    cfg: &RunConfig,
    policy: &AdaptPolicy,
    analysis_threads: usize,
) -> Result<AdaptRun, String> {
    adapt_with(
        cfg,
        policy,
        &EvalOptions {
            analysis_threads,
            ..EvalOptions::default()
        },
    )
}

/// [`adapt`] with full control over the evaluation harness: eval
/// parallelism, trace-analytic pruning, beam search over compound
/// candidates, and invariant hoisting.
///
/// A thin wrapper over [`Pipeline::adapt`] — the loop body lives
/// there, so this function is byte-identical to the builder form.
///
/// # Errors
///
/// Returns a message on compile failure or when the recorded baseline
/// trace is unusable (ring overflow). A *candidate* trace overflowing
/// is not an error — the candidate is marked [`EvalStatus::Skipped`]
/// in the report and excluded from selection.
pub fn adapt_with(
    cfg: &RunConfig,
    policy: &AdaptPolicy,
    opts: &EvalOptions,
) -> Result<AdaptRun, String> {
    Pipeline::new(cfg.clone()).options(*opts).adapt(policy)
}

/// Like [`adapt`], but starting from an existing self-describing trace
/// (one produced by [`crate::replay::record`]): the embedded
/// [`RunConfig`] is re-executed as the baseline.
///
/// # Errors
///
/// Returns a message when the trace lacks `run.*` metadata or the
/// embedded source no longer compiles.
pub fn adapt_trace(
    t: &Trace,
    policy: &AdaptPolicy,
    analysis_threads: usize,
) -> Result<AdaptRun, String> {
    adapt(&RunConfig::from_trace(t)?, policy, analysis_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::ExecMode;
    use lockinfer::adapt::{BeamPolicy, EvalStatus};

    /// Two sections with opposite temperaments: `hot` hammers one
    /// global under long critical sections (wait ≫ hold per entry once
    /// several threads queue), `cold` touches a thread-private cell
    /// (never contended).
    const SRC: &str = r#"
        global shared;
        global cells;
        fn setup(n) { cells = new(64); shared = 0; }
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { shared = shared + 1; nops(200); }
                atomic { cells[tid()] = cells[tid()] + 1; }
                i = i + 1;
            }
            return 0;
        }
        fn total() { return shared; }
    "#;

    fn cfg() -> RunConfig {
        RunConfig {
            name: "two-temperaments".into(),
            source: SRC.into(),
            k: 3,
            mode: ExecMode::MultiGrain,
            threads: 8,
            heap_cells: 1 << 16,
            seed: 11,
            quantum: 64,
            stm_abort_budget: 16,
            faults: None,
            sentinel: None,
            weaken: None,
            sched: None,
            repairs: Vec::new(),
            trace_capacity: 1 << 18,
            init: ("setup".into(), vec![0]),
            worker: ("work".into(), vec![30]),
            check: Some("total".into()),
        }
    }

    #[test]
    fn adapt_produces_candidates_and_a_report() {
        let run = adapt(&cfg(), &AdaptPolicy::default(), 1).unwrap();
        assert!(
            !run.report.candidates.is_empty(),
            "the hot section must trigger at least one proposal"
        );
        let json = run.report.to_json();
        assert!(json.contains("\"baseline\""), "{json}");
        assert!(run.report.baseline.total_wait > 0);
        // The exact default evaluation replays every candidate.
        assert!(run.report.candidates.iter().all(|d| d.status.is_replayed()));
        // Candidate runs still compute the right answer.
        assert_eq!(run.baseline.outcome.check, Some(8 * 30));
    }

    #[test]
    fn adapt_is_deterministic_across_analysis_thread_counts() {
        let runs: Vec<AdaptRun> = [1usize, 2, 8]
            .iter()
            .map(|&t| adapt(&cfg(), &AdaptPolicy::default(), t).unwrap())
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.report.to_json(), runs[0].report.to_json());
            assert_eq!(r.baseline.trace.digest(), runs[0].baseline.trace.digest());
            match (&r.adapted, &runs[0].adapted) {
                (Some(a), Some(b)) => assert_eq!(a.trace.digest(), b.trace.digest()),
                (None, None) => {}
                other => panic!("selection diverged across thread counts: {other:?}"),
            }
        }
    }

    #[test]
    fn adapted_traces_are_not_replayable_but_carry_adapt_meta() {
        let run = adapt(&cfg(), &AdaptPolicy::default(), 1).unwrap();
        if let Some(adapted) = &run.adapted {
            assert!(crate::replay::replay(&adapted.trace).is_err());
            assert_eq!(
                adapted.trace.meta_get("adapt.name"),
                Some("two-temperaments")
            );
        }
        // The baseline stays fully replayable.
        let again = crate::replay::replay(&run.baseline.trace).unwrap();
        assert_eq!(again.trace.digest(), run.baseline.trace.digest());
    }

    #[test]
    fn adapt_trace_round_trips_through_recorded_metadata() {
        let rec = crate::replay::record(&cfg()).unwrap();
        let from_trace = adapt_trace(&rec.trace, &AdaptPolicy::default(), 1).unwrap();
        let direct = adapt(&cfg(), &AdaptPolicy::default(), 1).unwrap();
        assert_eq!(from_trace.report.to_json(), direct.report.to_json());
    }

    #[test]
    fn pruned_adaptation_marks_unreplayed_candidates() {
        let exact = adapt(&cfg(), &AdaptPolicy::default(), 1).unwrap();
        let n = exact.report.candidates.len();
        assert!(n >= 2, "need at least two candidates to prune");
        let pruned = adapt_with(
            &cfg(),
            &AdaptPolicy::default(),
            &EvalOptions {
                analysis_threads: 1,
                prune: Some(1),
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let replayed = pruned
            .report
            .candidates
            .iter()
            .filter(|d| d.status.is_replayed())
            .count();
        // top-1 plus the diversity guard's family bests: strictly
        // fewer replays than the exact run when any family has more
        // than one member.
        assert!(replayed >= 1 && replayed <= n);
        if replayed < n {
            assert!(pruned
                .report
                .candidates
                .iter()
                .any(|d| matches!(d.status, EvalStatus::Pruned { .. })));
        }
        // Pruning is advisory: replayed candidates keep their exact
        // measured costs.
        for (p, e) in pruned
            .report
            .candidates
            .iter()
            .zip(&exact.report.candidates)
        {
            if p.status.is_replayed() {
                assert_eq!(p.cost, e.cost);
            }
        }
    }

    #[test]
    fn beam_search_reports_compound_candidates() {
        let run = adapt_with(
            &cfg(),
            &AdaptPolicy::default(),
            &EvalOptions {
                analysis_threads: 1,
                beam: Some(BeamPolicy::default()),
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let beam = run.beam.expect("beam requested");
        assert_eq!(beam.baseline, run.report.baseline);
        let json = beam.to_json();
        assert!(json.starts_with("{\"width\":"), "{json}");
        // A selected compound must strictly beat the baseline and be
        // replayed, and the returned recording must exist.
        if let Some(d) = beam.winner() {
            assert!(d.status.is_replayed());
            assert!(d.cost.total_wait < beam.baseline.total_wait);
            assert!(run.adapted.is_some());
        }
    }
}
