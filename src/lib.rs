//! # atomic-lock-inference
//!
//! A full reproduction of *Inferring Locks for Atomic Sections*
//! (Cherem, Chilimbi, Gulwani; PLDI 2008): a compiler that turns
//! `atomic { .. }` sections into multi-granularity lock acquisitions,
//! together with every substrate the paper's system needs.
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | role |
//! |---|---|
//! | [`lir`] | input language, parser, canonical IR, CFG |
//! | [`pointsto`] | Steensgaard points-to analysis + `mayAlias` |
//! | [`lockscheme`] | lock formalism: concrete semantics, abstract schemes |
//! | [`lockinfer`] | **the paper's contribution**: backward lock inference + transformation |
//! | [`mglock`] | multi-granularity lock runtime (IS/IX/S/SIX/X) |
//! | [`tl2`] | TL2-style STM (the optimistic baseline) |
//! | [`interp`] | concurrent interpreter: Global/MultiGrain/Stm/Validate + virtual time |
//! | [`trace`] | event tracing, Eraser-style lockset validation, profiles |
//! | [`sentinel`] | online lockset sentinel: inline licensing checks, per-section quarantine |
//! | `sched` | pluggable deterministic wake policies + convoy detection (see [`sched`](crate::sched) for the evaluation harness) |
//! | `reinfer` | quarantine-aware re-inference: diagnose sentinel violations, repair demoted sections (see [`reinfer`](crate::reinfer)) |
//! | [`workloads`] | the evaluation programs (micro, STAMP-like, SPEC-like) |
//!
//! plus [`replay`], this crate's own deterministic record/replay layer
//! over traced executions, [`obs`], the unified observability layer
//! (live metrics registry + trace-derived snapshots and exporters),
//! and [`Pipeline`], the builder-style entry point to every
//! measurement loop (baseline → profile → propose → evaluate →
//! select).
//!
//! ## Quickstart
//!
//! ```
//! use atomic_lock_inference as ali;
//!
//! let src = r#"
//!     struct list { head; }
//!     fn push(l, e) {
//!         atomic { *e = l->head; l->head = e; }
//!     }
//! "#;
//! let (program, analysis, transformed) = ali::lockinfer::compile_with_locks(src, 3)?;
//! println!("{}", analysis.render(&program));
//! assert!(transformed.to_string().contains("acquireAll"));
//! # Ok::<(), ali::lir::lower::FrontendError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end demonstrations and the
//! `bench` crate for the harness regenerating the paper's tables and
//! figures.

pub mod adapt;
pub mod eval;
pub mod pipeline;
pub mod reinfer;
pub mod replay;
pub mod sched;

pub use pipeline::Pipeline;

pub use interp;
pub use lir;
pub use lockinfer;
pub use lockscheme;
pub use mglock;
pub use obs;
pub use pointsto;
pub use sentinel;
pub use tl2;
pub use trace;
pub use workloads;
