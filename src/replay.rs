//! Deterministic record/replay of atomic-section executions.
//!
//! A recorded run is **self-describing**: [`record`] stamps the full
//! [`RunConfig`] — source text, inference depth `k`, execution mode,
//! seed, thread count, fault plan, entry points — into the trace's
//! metadata alongside the events, so a trace file alone is enough to
//! re-execute the run. Because the interpreter's virtual-time scheduler
//! is deterministic (see `interp::sim`), [`replay`] reproduces the
//! original execution *exactly*: same interleaving, same events, same
//! canonical JSON bytes, same digest. That makes the digest a complete
//! fingerprint of a concurrent execution — the property the
//! `trace-dump` binary and the chaos tests check.
//!
//! ```
//! use atomic_lock_inference as ali;
//!
//! let spec = ali::workloads::micro::list(ali::workloads::Contention::Low, 40, 1);
//! let cfg = ali::replay::RunConfig::from_spec(&spec, 3, ali::interp::ExecMode::MultiGrain, 4);
//! let rec = ali::replay::record(&cfg)?;
//! let again = ali::replay::replay(&rec.trace)?;
//! assert_eq!(rec.trace.digest(), again.trace.digest());
//! # Ok::<(), String>(())
//! ```
//!
//! Replay re-runs with the *default* cost model; runs recorded under a
//! custom [`interp::CostModel`] replay with different clock values.

use interp::{ExecMode, FaultPlan, Options, RepairSpec, SchedConfig, SentinelConfig, WeakenPlan};
use lockscheme::{ConfigMap, SchemeConfig};
use std::sync::Arc;
use trace::Trace;

/// One installed repair, at configuration level: `(section, candidate
/// id, repaired scheme configuration)`. The concrete per-section lock
/// specs are **derived** deterministically at machine-build time (see
/// [`repair_specs`]), so a trace stamped with repairs stays
/// self-describing — replaying re-derives the identical specs from the
/// embedded source.
pub type RepairEntry = (u32, u32, SchemeConfig);

/// Everything needed to reproduce one traced execution.
#[derive(Clone, PartialEq, Debug)]
pub struct RunConfig {
    /// Display name (workload name, free-form for ad-hoc runs).
    pub name: String,
    /// Mini-language source text.
    pub source: String,
    /// Lock-inference depth bound `k`.
    pub k: usize,
    /// Execution discipline.
    pub mode: ExecMode,
    /// Virtual threads running the worker entry.
    pub threads: usize,
    /// Heap capacity in cells.
    pub heap_cells: usize,
    /// Base PRNG seed.
    pub seed: u64,
    /// Virtual-time scheduling quantum.
    pub quantum: u64,
    /// STM degradation budget (aborts before irrevocable fallback).
    pub stm_abort_budget: u64,
    /// Fault-injection plan, if any.
    pub faults: Option<FaultPlan>,
    /// Online lockset sentinel, if enabled.
    pub sentinel: Option<SentinelConfig>,
    /// Weakened-inference injection, if any.
    pub weaken: Option<WeakenPlan>,
    /// Wake policy for the virtual-time scheduler (`None` = legacy
    /// FIFO). Stamped into `run.sched_*` so policy-steered runs replay
    /// under the same decisions.
    pub sched: Option<SchedConfig>,
    /// Admitted re-inference repairs (DESIGN.md §5.8), installed
    /// dormant into the sentinel: when the named section heals, its
    /// plans switch to the specs derived under the repaired
    /// configuration instead of the seed scheme. Stamped into
    /// `run.repair.<section>` so healed runs replay exactly.
    pub repairs: Vec<RepairEntry>,
    /// Per-thread event ring capacity.
    pub trace_capacity: usize,
    /// Single-threaded setup entry `(function, args)`.
    pub init: (String, Vec<i64>),
    /// Per-thread timed entry `(function, args)`.
    pub worker: (String, Vec<i64>),
    /// Post-run invariant checker, if any.
    pub check: Option<String>,
}

impl RunConfig {
    /// A config for a benchmark workload with library-default machine
    /// options.
    pub fn from_spec(
        spec: &workloads::RunSpec,
        k: usize,
        mode: ExecMode,
        threads: usize,
    ) -> RunConfig {
        let opts = Options::default();
        RunConfig {
            name: spec.name.clone(),
            source: spec.source.clone(),
            k,
            mode,
            threads,
            heap_cells: spec.heap_cells,
            seed: opts.seed,
            quantum: opts.quantum,
            stm_abort_budget: opts.stm_abort_budget,
            faults: None,
            sentinel: None,
            weaken: None,
            sched: None,
            repairs: Vec::new(),
            trace_capacity: trace::TraceConfig::default().capacity,
            init: (spec.init.0.to_owned(), spec.init.1.clone()),
            worker: (spec.worker.0.to_owned(), spec.worker.1.clone()),
            check: spec.check.map(str::to_owned),
        }
    }

    /// Reconstructs the config a trace was recorded under.
    ///
    /// # Errors
    ///
    /// Returns a message when a required `run.*` metadata key is
    /// missing or malformed — e.g. a trace that was not produced by
    /// [`record`].
    pub fn from_trace(t: &Trace) -> Result<RunConfig, String> {
        let get = |k: &str| {
            t.meta_get(k)
                .map(str::to_owned)
                .ok_or_else(|| format!("replay: trace metadata missing `{k}`"))
        };
        let int = |k: &str| {
            get(k)?
                .parse::<u64>()
                .map_err(|e| format!("replay: bad `{k}`: {e}"))
        };
        let faults = match t.meta_get("run.fault_seed") {
            None => None,
            Some(_) => Some(FaultPlan {
                seed: int("run.fault_seed")?,
                panic_per_mille: int("run.fault_panic_pm")? as u16,
                max_panics: int("run.fault_max_panics")? as u32,
                stm_abort_per_mille: int("run.fault_abort_pm")? as u16,
                wakeup_delay_per_mille: int("run.fault_wakeup_pm")? as u16,
                wakeup_delay_ticks: int("run.fault_wakeup_ticks")?,
                stall_per_mille: int("run.fault_stall_pm")? as u16,
                stall_ticks: int("run.fault_stall_ticks")?,
            }),
        };
        let sentinel = match t.meta_get("run.sentinel_sample") {
            None => None,
            Some(_) => Some(SentinelConfig {
                sample_every: int("run.sentinel_sample")? as u32,
                probation: int("run.sentinel_probation")? as u32,
                flap_multiplier: int("run.sentinel_flap")? as u32,
                max_probation: int("run.sentinel_max")? as u32,
            }),
        };
        let weaken = match t.meta_get("run.weaken_section") {
            None => None,
            Some(_) => Some(WeakenPlan {
                section: int("run.weaken_section")? as u32,
                drop_index: int("run.weaken_drop")? as usize,
            }),
        };
        let sched = match t.meta_get("run.sched_policy") {
            None => None,
            Some(tag) => {
                let policy = interp::PolicyKind::from_tag(tag)
                    .ok_or_else(|| format!("replay: unknown wake policy `{tag}`"))?;
                let expected_hold =
                    SchedConfig::parse_holds(t.meta_get("run.sched_holds").unwrap_or(""))
                        .ok_or_else(|| "replay: bad `run.sched_holds`".to_owned())?;
                // Absent on traces recorded before the aging knob
                // existed: those ran with aging off.
                let aging = match t.meta_get("run.sched_aging") {
                    None => 0,
                    Some(_) => int("run.sched_aging")?,
                };
                Some(SchedConfig {
                    policy,
                    expected_hold,
                    aging,
                })
            }
        };
        let mut repair_keys: Vec<u32> = t
            .meta
            .iter()
            .filter_map(|(k, _)| k.strip_prefix("run.repair."))
            .map(|s| {
                s.parse::<u32>()
                    .map_err(|e| format!("replay: bad repair section `{s}`: {e}"))
            })
            .collect::<Result<_, _>>()?;
        repair_keys.sort_unstable();
        let repairs = repair_keys
            .into_iter()
            .map(|s| {
                let v = get(&format!("run.repair.{s}"))?;
                parse_repair(s, &v)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunConfig {
            name: get("run.name")?,
            source: get("run.source")?,
            k: int("run.k")? as usize,
            mode: parse_mode(&get("run.mode")?)?,
            threads: int("run.threads")? as usize,
            heap_cells: int("run.heap_cells")? as usize,
            seed: int("run.seed")?,
            quantum: int("run.quantum")?,
            stm_abort_budget: int("run.stm_abort_budget")?,
            faults,
            sentinel,
            weaken,
            sched,
            repairs,
            trace_capacity: int("run.capacity")? as usize,
            init: (get("run.init")?, parse_args(&get("run.init_args")?)?),
            worker: (get("run.worker")?, parse_args(&get("run.worker_args")?)?),
            check: t.meta_get("run.check").map(str::to_owned),
        })
    }

    /// Stamps this config into a trace's metadata (the inverse of
    /// [`RunConfig::from_trace`]). Crate-visible for the policy
    /// evaluation harness (`crate::sched`), whose steered recordings
    /// stay fully replayable.
    pub(crate) fn stamp(&self, t: &mut Trace) {
        t.meta_set("run.name", self.name.clone());
        t.meta_set("run.source", self.source.clone());
        t.meta_set("run.k", self.k.to_string());
        t.meta_set("run.mode", format!("{:?}", self.mode));
        t.meta_set("run.threads", self.threads.to_string());
        t.meta_set("run.heap_cells", self.heap_cells.to_string());
        t.meta_set("run.seed", self.seed.to_string());
        t.meta_set("run.quantum", self.quantum.to_string());
        t.meta_set("run.stm_abort_budget", self.stm_abort_budget.to_string());
        t.meta_set("run.capacity", self.trace_capacity.to_string());
        t.meta_set("run.init", self.init.0.clone());
        t.meta_set("run.init_args", render_args(&self.init.1));
        t.meta_set("run.worker", self.worker.0.clone());
        t.meta_set("run.worker_args", render_args(&self.worker.1));
        if let Some(chk) = &self.check {
            t.meta_set("run.check", chk.clone());
        }
        if let Some(f) = self.faults {
            t.meta_set("run.fault_seed", f.seed.to_string());
            t.meta_set("run.fault_panic_pm", f.panic_per_mille.to_string());
            t.meta_set("run.fault_max_panics", f.max_panics.to_string());
            t.meta_set("run.fault_abort_pm", f.stm_abort_per_mille.to_string());
            t.meta_set("run.fault_wakeup_pm", f.wakeup_delay_per_mille.to_string());
            t.meta_set("run.fault_wakeup_ticks", f.wakeup_delay_ticks.to_string());
            t.meta_set("run.fault_stall_pm", f.stall_per_mille.to_string());
            t.meta_set("run.fault_stall_ticks", f.stall_ticks.to_string());
        }
        if let Some(s) = self.sentinel {
            t.meta_set("run.sentinel_sample", s.sample_every.to_string());
            t.meta_set("run.sentinel_probation", s.probation.to_string());
            t.meta_set("run.sentinel_flap", s.flap_multiplier.to_string());
            t.meta_set("run.sentinel_max", s.max_probation.to_string());
        }
        if let Some(w) = self.weaken {
            t.meta_set("run.weaken_section", w.section.to_string());
            t.meta_set("run.weaken_drop", w.drop_index.to_string());
        }
        if let Some(s) = &self.sched {
            t.meta_set("run.sched_policy", s.policy.tag().to_owned());
            t.meta_set("run.sched_holds", s.holds_string());
            // Only stamped when armed, so pre-aging traces stay
            // byte-identical through a record/stamp round trip.
            if s.aging != 0 {
                t.meta_set("run.sched_aging", s.aging.to_string());
            }
        }
        for &(section, candidate, c) in &self.repairs {
            t.meta_set(
                &format!("run.repair.{section}"),
                format!(
                    "{candidate}:k={},expr={},pts={},eff={},elem={}",
                    c.k,
                    c.use_expr,
                    c.use_pts,
                    c.use_eff,
                    match c.elem_field {
                        Some(f) => f.0.to_string(),
                        None => "none".to_owned(),
                    }
                ),
            );
        }
    }
}

/// Parses one `run.repair.<section>` value back into a [`RepairEntry`]
/// (the inverse of the [`RunConfig::stamp`] encoding).
fn parse_repair(section: u32, v: &str) -> Result<RepairEntry, String> {
    let bad = || format!("replay: bad `run.repair.{section}`: `{v}`");
    let (candidate, fields) = v.split_once(':').ok_or_else(bad)?;
    let candidate = candidate.parse::<u32>().map_err(|_| bad())?;
    let mut cfg = SchemeConfig::full(0, None);
    for field in fields.split(',') {
        let (key, val) = field.split_once('=').ok_or_else(bad)?;
        match key {
            "k" => cfg.k = val.parse().map_err(|_| bad())?,
            "expr" => cfg.use_expr = val.parse().map_err(|_| bad())?,
            "pts" => cfg.use_pts = val.parse().map_err(|_| bad())?,
            "eff" => cfg.use_eff = val.parse().map_err(|_| bad())?,
            "elem" => {
                cfg.elem_field = match val {
                    "none" => None,
                    n => Some(lir::FieldId(n.parse().map_err(|_| bad())?)),
                };
            }
            _ => return Err(bad()),
        }
    }
    Ok((section, candidate, cfg))
}

fn parse_mode(s: &str) -> Result<ExecMode, String> {
    Ok(match s {
        "Global" => ExecMode::Global,
        "MultiGrain" => ExecMode::MultiGrain,
        "Stm" => ExecMode::Stm,
        "Validate" => ExecMode::Validate,
        other => return Err(format!("replay: unknown mode `{other}`")),
    })
}

fn render_args(args: &[i64]) -> String {
    args.iter()
        .map(i64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_args(s: &str) -> Result<Vec<i64>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.parse().map_err(|e| format!("replay: bad args: {e}")))
        .collect()
}

/// What one recorded/replayed run produced, rendered deterministically
/// under the virtual scheduler.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RunOutcome {
    /// Per-thread worker return values (empty when the run errored
    /// before the workers finished).
    pub results: Vec<i64>,
    /// Virtual makespan of the worker phase, in ticks.
    pub makespan: u64,
    /// The checker's return value, when the config names one.
    pub check: Option<i64>,
    /// The first runtime error, rendered — chaos runs record and
    /// replay *through* failures rather than aborting.
    pub error: Option<String>,
}

/// The result of [`record`] or [`replay`]: the outcome plus the merged
/// event trace with the config stamped into its metadata.
#[derive(Clone, Debug)]
pub struct Recording {
    pub outcome: RunOutcome,
    pub trace: Trace,
}

/// Compiles, transforms, and executes `cfg` with tracing on, returning
/// the outcome and the self-describing trace.
///
/// Runtime errors (including injected chaos faults) do **not** fail the
/// recording — they land in [`RunOutcome::error`] and the events up to
/// the failure are kept, so a crashing run can be replayed and
/// inspected.
///
/// # Errors
///
/// Returns a message on compile failure or when the trace was dropped
/// (per-thread ring overflow — raise [`RunConfig::trace_capacity`]).
pub fn record(cfg: &RunConfig) -> Result<Recording, String> {
    let m = machine(cfg)?;
    let (outcome, mut trace) = execute(&m, cfg);
    cfg.stamp(&mut trace);
    stamp_outcome(&outcome, &mut trace);
    Ok(Recording { outcome, trace })
}

/// Builds the machine a [`RunConfig`] prescribes. Without repairs this
/// is [`interp::machine_for`]; with repairs the program is compiled
/// once and each repair's specs are derived before construction, so
/// `replay()` of a healed trace reproduces the repaired plans exactly.
fn machine(cfg: &RunConfig) -> Result<interp::Machine, String> {
    if cfg.repairs.is_empty() {
        return interp::machine_for(&cfg.source, cfg.k, cfg.mode, options_for(cfg));
    }
    let program = lir::compile(&cfg.source).map_err(|e| e.to_string())?;
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let base = ConfigMap::uniform(SchemeConfig::full(cfg.k, program.elem_field_opt()));
    let lib = lockinfer::library::LibrarySpec::new();
    let analysis = lockinfer::analyze_program_with_configs(&program, &pt, &base, &lib, 0, None);
    let transformed = lockinfer::transform(&program, &analysis);
    let mut opts = options_for(cfg);
    opts.repairs = repair_specs(&cfg.repairs, &program, &pt, &base, &lib, 0, None);
    Ok(interp::Machine::new(
        Arc::new(transformed),
        pt,
        cfg.mode,
        opts,
    ))
}

/// Derives the concrete lock specs each [`RepairEntry`] installs:
/// re-runs the inference with the repaired configuration overriding
/// the entry's section on top of `base` and extracts that section's
/// `acquireAll` plan. Deterministic at every `analysis_threads` count
/// (the engine's Phase B guarantee), and incremental when `store`
/// memoizes Phase A summaries across candidate configs.
pub(crate) fn repair_specs(
    repairs: &[RepairEntry],
    program: &lir::Program,
    pt: &pointsto::PointsTo,
    base: &ConfigMap,
    lib: &lockinfer::library::LibrarySpec,
    analysis_threads: usize,
    store: Option<&lockinfer::SummaryStore>,
) -> Vec<RepairSpec> {
    repairs
        .iter()
        .map(|&(section, candidate, config)| {
            let mut map = base.clone();
            map.set_override(section, config);
            let analysis = lockinfer::analyze_program_with_configs(
                program,
                pt,
                &map,
                lib,
                analysis_threads,
                store,
            );
            let specs = analysis
                .sections
                .iter()
                .find(|s| s.id.0 == section)
                .map(|s| s.locks.iter().map(|l| l.to_spec()).collect())
                .unwrap_or_default();
            RepairSpec {
                section,
                candidate,
                specs,
            }
        })
        .collect()
}

/// The machine options a [`RunConfig`] prescribes (tracing always on).
pub(crate) fn options_for(cfg: &RunConfig) -> Options {
    Options {
        heap_cells: cfg.heap_cells,
        seed: cfg.seed,
        quantum: cfg.quantum,
        faults: cfg.faults,
        sentinel: cfg.sentinel,
        weaken: cfg.weaken,
        sched: cfg.sched.clone(),
        stm_abort_budget: cfg.stm_abort_budget,
        trace: Some(trace::TraceConfig {
            capacity: cfg.trace_capacity,
        }),
        ..Options::default()
    }
}

/// Runs `cfg`'s init/worker/check phases on an already-built machine
/// and takes the (unstamped) trace. Shared between [`record`] and the
/// adaptation loop in `crate::adapt`, which builds its machines from a
/// per-section [`lockscheme::ConfigMap`] instead of the uniform `k`.
pub(crate) fn execute(m: &interp::Machine, cfg: &RunConfig) -> (RunOutcome, trace::Trace) {
    let mut outcome = RunOutcome::default();
    if let Err(e) = m.run_named(&cfg.init.0, &cfg.init.1) {
        outcome.error = Some(format!("init: {e}"));
    }
    if outcome.error.is_none() {
        match m.run_threads_virtual(&cfg.worker.0, cfg.threads, |_| cfg.worker.1.clone()) {
            Ok((results, makespan)) => {
                outcome.results = results;
                outcome.makespan = makespan;
            }
            Err(e) => outcome.error = Some(format!("worker: {e}")),
        }
    }
    if outcome.error.is_none() {
        if let Some(chk) = &cfg.check {
            match m.run_named(chk, &[]) {
                Ok(v) => outcome.check = Some(v),
                Err(e) => outcome.error = Some(format!("check: {e}")),
            }
        }
    }
    let trace = m
        .take_trace()
        .expect("machine built with tracing enabled has a trace");
    (outcome, trace)
}

/// Re-executes the run a trace was recorded from and returns the fresh
/// recording. Under the deterministic scheduler the new trace's
/// canonical JSON (and therefore [`Trace::digest`]) matches the
/// original byte for byte.
///
/// # Errors
///
/// Returns a message when the trace lacks `run.*` metadata or the
/// embedded source no longer compiles.
pub fn replay(t: &Trace) -> Result<Recording, String> {
    record(&RunConfig::from_trace(t)?)
}

/// The outcome is stamped into the metadata too, so digest equality
/// certifies not just the same events but the same results, makespan,
/// and error disposition.
pub(crate) fn stamp_outcome(o: &RunOutcome, t: &mut Trace) {
    t.meta_set("out.results", render_args(&o.results));
    t.meta_set("out.makespan", o.makespan.to_string());
    if let Some(v) = o.check {
        t.meta_set("out.check", v.to_string());
    }
    if let Some(e) = &o.error {
        t.meta_set("out.error", e.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        global c;
        fn setup(n) { c = n; }
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { c = c + 1; nops(20); }
                i = i + 1;
            }
            return 0;
        }
        fn total() { return c; }
    "#;

    fn cfg(mode: ExecMode) -> RunConfig {
        RunConfig {
            name: "counter".into(),
            source: SRC.into(),
            k: 3,
            mode,
            threads: 4,
            heap_cells: 1 << 16,
            seed: 7,
            quantum: 64,
            stm_abort_budget: 16,
            faults: None,
            sentinel: None,
            weaken: None,
            sched: None,
            repairs: Vec::new(),
            trace_capacity: 1 << 16,
            init: ("setup".into(), vec![10]),
            worker: ("work".into(), vec![25]),
            check: Some("total".into()),
        }
    }

    #[test]
    fn config_round_trips_through_trace_meta() {
        let mut t = Trace::default();
        let mut c = cfg(ExecMode::Stm);
        c.faults = Some(FaultPlan::new(9).with_stm_aborts(40));
        c.sentinel = Some(SentinelConfig {
            sample_every: 2,
            probation: 3,
            flap_multiplier: 4,
            max_probation: 24,
        });
        c.weaken = Some(WeakenPlan {
            section: 1,
            drop_index: 0,
        });
        c.sched = Some(SchedConfig {
            policy: interp::PolicyKind::ShortestExpectedHold,
            expected_hold: vec![(1, 40), (2, 900)],
            aging: 6,
        });
        c.repairs = vec![
            (
                0,
                1,
                SchemeConfig {
                    use_expr: false,
                    ..SchemeConfig::full(3, None)
                },
            ),
            (
                2,
                0,
                SchemeConfig {
                    use_eff: false,
                    elem_field: Some(lir::FieldId(4)),
                    ..SchemeConfig::full(9, Some(lir::FieldId(4)))
                },
            ),
        ];
        c.stamp(&mut t);
        assert_eq!(RunConfig::from_trace(&t).unwrap(), c);
        // And through the JSON encoding as well.
        let t2 = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(RunConfig::from_trace(&t2).unwrap(), c);
    }

    #[test]
    fn record_then_replay_reproduces_the_digest() {
        for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
            let rec = record(&cfg(mode)).unwrap();
            assert_eq!(rec.outcome.check, Some(10 + 4 * 25), "{mode:?}");
            assert!(rec.outcome.error.is_none());
            assert!(!rec.trace.events.is_empty());
            let rep = replay(&rec.trace).unwrap();
            assert_eq!(rec.outcome, rep.outcome, "{mode:?}");
            assert_eq!(rec.trace.digest(), rep.trace.digest(), "{mode:?}");
            assert_eq!(rec.trace.to_json(), rep.trace.to_json(), "{mode:?}");
        }
    }

    #[test]
    fn chaos_failure_replays_to_the_same_digest() {
        let mut c = cfg(ExecMode::MultiGrain);
        c.faults = Some(FaultPlan::new(0xBAD).with_panics(200, 1));
        let rec = record(&c).unwrap();
        let err = rec.outcome.error.as_deref().expect("panic plan fires");
        assert!(err.contains("panic"), "{err}");
        let rep = replay(&rec.trace).unwrap();
        assert_eq!(rec.outcome, rep.outcome);
        assert_eq!(rec.trace.digest(), rep.trace.digest());
    }

    #[test]
    fn recorded_lock_traces_validate_clean() {
        for mode in [ExecMode::Global, ExecMode::MultiGrain] {
            let rec = record(&cfg(mode)).unwrap();
            let v = trace::validate(&rec.trace).unwrap();
            assert!(v.passed(), "{mode:?}: {:?}", v.violations);
            assert!(v.checked > 0, "{mode:?}");
        }
    }

    #[test]
    fn foreign_trace_is_rejected() {
        let t = Trace::default();
        assert!(replay(&t).unwrap_err().contains("run.name"));
    }
}
