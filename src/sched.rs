//! Replay-driven wake-policy evaluation — the *measurement* half of
//! the contention-aware scheduling subsystem (DESIGN.md §5.6).
//!
//! The `sched` crate is the pure policy engine: [`WakePolicy`] ranking
//! functions in, wake order out. This module closes the loop against
//! the deterministic interpreter through the shared evaluation harness
//! ([`crate::eval`]), mirroring [`crate::adapt`]:
//!
//! 1. **Record** the baseline under the historical FIFO order
//!    (`sched: None`) and profile its trace. The program is compiled
//!    and points-to analyzed **once**, shared with every policy run.
//! 2. **Detect** convoy-prone sections from the wait/hold histograms
//!    ([`sched::convoy::detect`]) — the evidence that re-ordering
//!    wakes can recover anything at all.
//! 3. **Re-run** the *identical* `RunConfig` (same seed, same virtual
//!    scheduler, same fault plan) once per non-FIFO [`PolicyKind`],
//!    with each policy's [`SchedConfig`] frozen from the baseline
//!    profiles — **concurrently**, on the harness's eval-thread pool —
//!    and measure the replayed [`PolicyCost`]. Every policy uses the
//!    same uniform lock plan, so inference runs once and the rest hit
//!    the shared `SummaryStore`. Candidate recordings are dropped
//!    after profiling; a policy whose trace overflowed its ring lands
//!    in [`SchedReport::skipped`] instead of contributing a bogus
//!    cost.
//! 4. **Select** the policy with the lowest total virtual-time wait,
//!    strictly below the FIFO baseline, and emit a machine-readable
//!    [`SchedReport`]. The winner is re-executed once for the returned
//!    recording.
//!
//! Everything downstream of the recorded trace is deterministic:
//! policies are pure functions of recorded state, inference is
//! byte-identical at any analysis thread count, each replay is an
//! exact virtual-time re-execution, and the harness merges results in
//! policy order — so two `evaluate` runs over the same config produce
//! byte-identical reports and steered trace digests **at every eval
//! thread count**.
//!
//! Unlike adapted traces (which carry `adapt.*` keys only), a
//! policy-steered recording **is** stamped with full `run.*` metadata
//! including `run.sched_policy` / `run.sched_holds`: the frozen
//! expected-hold table travels with the trace, so
//! [`crate::replay::replay`] reproduces the steered schedule
//! bit-for-bit from the trace alone.

use crate::eval::EvalOptions;
use crate::replay::{Recording, RunConfig};
use crate::Pipeline;
use trace::Trace;

pub use ::sched::convoy::{ConvoyFlag, ConvoyPolicy};
pub use ::sched::report::{PolicyCost, PolicyOutcome, SchedReport, SkippedPolicy};
pub use ::sched::{queue_profiles, PolicyKind, SchedConfig, WakePolicy};

/// The full result of one policy evaluation loop.
#[derive(Clone, Debug)]
pub struct SchedRun {
    /// Machine-readable evaluation record (all policies, all costs,
    /// convoy evidence).
    pub report: SchedReport,
    /// The FIFO baseline recording the profiles came from.
    pub baseline: Recording,
    /// The winning policy's recording, when one beat the baseline.
    pub steered: Option<Recording>,
}

/// Records `cfg` under FIFO, profiles it, re-runs each alternative
/// wake policy on the identical schedule, and selects the best by
/// strict measured wait reduction.
///
/// `cfg.sched` is ignored — the baseline is always the FIFO order, so
/// the evaluation answers "what would each policy have bought *this*
/// run". `analysis_threads` is the Phase B worker count for lock
/// inference (`0` = one per core); the outcome is identical for every
/// value. Policies are evaluated with default [`EvalOptions`]:
/// concurrently on one eval worker per core — the report is
/// byte-identical at every worker count.
///
/// # Errors
///
/// Returns a message on compile failure or when the recorded baseline
/// trace is unusable (ring overflow).
pub fn evaluate(
    cfg: &RunConfig,
    convoy: &ConvoyPolicy,
    analysis_threads: usize,
) -> Result<SchedRun, String> {
    evaluate_with(
        cfg,
        convoy,
        &EvalOptions {
            analysis_threads,
            ..EvalOptions::default()
        },
    )
}

/// [`evaluate`] with full control over the evaluation harness (eval
/// parallelism, invariant hoisting; pruning and beam search do not
/// apply to the fixed policy set).
///
/// A thin wrapper over [`Pipeline::sched`] — the loop body lives
/// there, so this function is byte-identical to the builder form.
///
/// # Errors
///
/// Returns a message on compile failure or when the recorded baseline
/// trace is unusable (ring overflow). A *steered* trace overflowing is
/// not an error — the policy lands in [`SchedReport::skipped`] and is
/// excluded from selection.
pub fn evaluate_with(
    cfg: &RunConfig,
    convoy: &ConvoyPolicy,
    opts: &EvalOptions,
) -> Result<SchedRun, String> {
    Pipeline::new(cfg.clone()).options(*opts).sched(convoy)
}

/// Like [`evaluate`], but starting from an existing self-describing
/// trace (one produced by [`crate::replay::record`]): the embedded
/// [`RunConfig`] is re-executed as the baseline.
///
/// # Errors
///
/// Returns a message when the trace lacks `run.*` metadata or the
/// embedded source no longer compiles.
pub fn evaluate_trace(
    t: &Trace,
    convoy: &ConvoyPolicy,
    analysis_threads: usize,
) -> Result<SchedRun, String> {
    evaluate(&RunConfig::from_trace(t)?, convoy, analysis_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::ExecMode;

    /// A convoy factory: every thread hammers one global under a long
    /// critical section (`hot`, expensive) or a short one (`quick`,
    /// cheap), so FIFO wake order regularly parks quick work behind
    /// expensive holders. ShortestExpectedHold reorders those ties.
    const SRC: &str = r#"
        global shared;
        global tally;
        fn setup(n) { shared = 0; tally = 0; }
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { shared = shared + 1; nops(300); }
                atomic { tally = tally + 1; }
                i = i + 1;
            }
            return 0;
        }
        fn total() { return shared + tally; }
    "#;

    fn cfg() -> RunConfig {
        RunConfig {
            name: "convoy-factory".into(),
            source: SRC.into(),
            k: 3,
            mode: ExecMode::MultiGrain,
            threads: 8,
            heap_cells: 1 << 16,
            seed: 11,
            quantum: 64,
            stm_abort_budget: 16,
            faults: None,
            sentinel: None,
            weaken: None,
            sched: None,
            repairs: Vec::new(),
            trace_capacity: 1 << 18,
            init: ("setup".into(), vec![0]),
            worker: ("work".into(), vec![25]),
            check: Some("total".into()),
        }
    }

    #[test]
    fn evaluate_reports_convoys_and_all_policies() {
        let run = evaluate(&cfg(), &ConvoyPolicy::default(), 1).unwrap();
        assert_eq!(run.report.evaluated.len(), PolicyKind::ALL.len() - 1);
        assert!(run.report.skipped.is_empty(), "nothing overflows here");
        assert!(
            !run.report.convoys.is_empty(),
            "8 threads behind a 300-nop hold must flag a convoy: {}",
            run.report.to_json()
        );
        assert!(run.report.baseline.total_wait > 0);
        // Every policy run still computes the right answer.
        assert_eq!(run.baseline.outcome.check, Some(2 * 8 * 25));
        let json = run.report.to_json();
        assert!(json.contains("\"policy\":\"seh\""), "{json}");
        assert!(json.contains("\"policy\":\"rbatch\""), "{json}");
    }

    #[test]
    fn evaluate_is_deterministic_across_analysis_thread_counts() {
        let runs: Vec<SchedRun> = [1usize, 2, 7]
            .iter()
            .map(|&t| evaluate(&cfg(), &ConvoyPolicy::default(), t).unwrap())
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.report.to_json(), runs[0].report.to_json());
            assert_eq!(r.baseline.trace.digest(), runs[0].baseline.trace.digest());
            match (&r.steered, &runs[0].steered) {
                (Some(a), Some(b)) => assert_eq!(a.trace.digest(), b.trace.digest()),
                (None, None) => {}
                other => panic!("selection diverged across thread counts: {other:?}"),
            }
        }
    }

    #[test]
    fn steered_recordings_replay_bit_for_bit() {
        let run = evaluate(&cfg(), &ConvoyPolicy::default(), 1).unwrap();
        // The baseline replays, and so does every steered recording:
        // the frozen policy travels in `run.sched_*` metadata.
        let again = crate::replay::replay(&run.baseline.trace).unwrap();
        assert_eq!(again.trace.digest(), run.baseline.trace.digest());
        if let Some(steered) = &run.steered {
            assert_eq!(
                steered.trace.meta_get("run.sched_policy"),
                Some(run.report.winner().unwrap().policy.tag())
            );
            let rep = crate::replay::replay(&steered.trace).unwrap();
            assert_eq!(rep.trace.digest(), steered.trace.digest());
            assert_eq!(rep.outcome, steered.outcome);
        }
    }

    #[test]
    fn steered_traces_record_wake_decisions_fifo_records_none() {
        let run = evaluate(&cfg(), &ConvoyPolicy::default(), 1).unwrap();
        let wk = |t: &Trace| {
            t.events
                .iter()
                .filter(|e| matches!(e.kind, trace::EventKind::WakeDecision { .. }))
                .count()
        };
        assert_eq!(wk(&run.baseline.trace), 0, "FIFO path must stay silent");
        if let Some(steered) = &run.steered {
            assert!(wk(&steered.trace) > 0, "steered runs trace their decisions");
            assert!(
                !queue_profiles(&steered.trace).is_empty(),
                "wake decisions aggregate into per-lock queue profiles"
            );
        }
    }
}
