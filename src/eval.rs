//! Shared what-if candidate-evaluation harness (DESIGN.md §5.7).
//!
//! The adaptive loop ([`crate::adapt`]) and the wake-policy loop
//! ([`crate::sched`]) share one measurement shape: record a baseline,
//! derive candidates from its profiles, re-run the identical
//! deterministic schedule once per candidate, select by strict
//! measured wait reduction. This module is that shape, factored out
//! and made fast, in four layers:
//!
//! 1. **Hoisted invariants.** The program is compiled and the
//!    points-to analysis run **once per evaluation**, shared as
//!    [`Arc`]s across every candidate; Phase A summary caches are
//!    memoized per distinct [`SchemeConfig`] in one concurrent
//!    [`SummaryStore`], and candidates naming the same effective run
//!    configuration replay once (see [`eval_singles`]). The
//!    pre-harness behavior — re-deriving all three per candidate, no
//!    dedup — is kept reachable (`hoist: false`) so `eval-bench` can
//!    measure exactly what the harness buys.
//! 2. **Parallel evaluation.** Candidates replay concurrently on a
//!    [`std::thread::scope`] pool of `eval_threads` workers pulling
//!    from an atomic work queue, and results are merged **by candidate
//!    index** — so every report is byte-identical at every eval thread
//!    count, the same guarantee (and the same mechanism) as the
//!    analysis engine's Phase B.
//! 3. **Trace-analytic pruning.** [`lockinfer::estimate`] scores every
//!    candidate from the baseline profiles alone; only the estimated
//!    `top_k` are replayed, the rest are marked
//!    [`EvalStatus::Pruned`] in the report. `prune: None` keeps exact
//!    behavior, and the `eval-bench` gate asserts the pruned set
//!    always contains the replay-selected winner.
//! 4. **Beam search over multi-override [`ConfigMap`]s.** Compound
//!    candidates — several per-section overrides plus a wake policy,
//!    k-sweeps, elem-field drops — are generated from the
//!    single-override winners ([`lockinfer::extend_beam`]) and
//!    evaluated through the same parallel, pruned pipeline.
//!
//! Candidate recordings are **not retained**: each worker profiles its
//! recording, keeps the [`PlanCost`], and drops the events, so memory
//! is O(1) in candidate count. The winner (if any) is re-executed once
//! at the end — deterministically identical to its evaluation run.
//!
//! A candidate whose trace overflowed its ring (`dropped > 0`) is
//! surfaced as [`EvalStatus::Skipped`] (or [`sched::SkippedPolicy`](::sched::SkippedPolicy))
//! instead of silently contributing a bogus profile; the baseline
//! overflowing is still a hard error, since every candidate's
//! evidence derives from it.

use crate::replay::{execute, options_for, stamp_outcome, Recording, RunConfig};
use interp::Machine;
use lockinfer::adapt::{Adjustment, BeamPolicy, BeamReport, MultiCandidate, MultiDecision};
use lockinfer::estimate;
use lockinfer::library::LibrarySpec;
use lockinfer::{Candidate, EvalStatus, PlanCost, SummaryStore};
use lockscheme::{ConfigMap, SchemeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use trace::SectionProfile;

/// Knobs of one harness evaluation. [`Default`] is the exact,
/// fully-parallel configuration: every candidate replayed, eval
/// workers one per core, invariants hoisted.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EvalOptions {
    /// Phase B worker count for lock inference (`0` = one per core).
    /// The outcome is identical for every value.
    pub analysis_threads: usize,
    /// Concurrent candidate replays (`0` = one per core). The outcome
    /// is identical for every value — results merge in candidate
    /// order.
    pub eval_threads: usize,
    /// Replay only the estimator's `top_k` candidates (`None` = exact:
    /// replay everything).
    pub prune: Option<usize>,
    /// Run a beam search over compound candidates after the
    /// single-override round.
    pub beam: Option<BeamPolicy>,
    /// Share one compiled program / points-to result / summary store
    /// across all candidates and deduplicate candidates naming the
    /// same effective run configuration. `false` re-derives everything
    /// per candidate and replays every candidate individually — the
    /// pre-harness loop, kept reachable so `eval-bench` measures
    /// exactly what the harness buys. Reports are byte-identical
    /// either way (duplicates replay to identical costs).
    pub hoist: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            analysis_threads: 0,
            eval_threads: 0,
            prune: None,
            beam: None,
            hoist: true,
        }
    }
}

impl EvalOptions {
    /// The exact sequential configuration with the given analysis
    /// parallelism — what the pre-harness loops did, minus the
    /// per-candidate recompiles.
    pub fn sequential(analysis_threads: usize) -> EvalOptions {
        EvalOptions {
            analysis_threads,
            eval_threads: 1,
            ..EvalOptions::default()
        }
    }
}

/// How a harness recording is stamped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Stamp {
    /// Full `run.*` metadata: the recording is self-describing and
    /// replayable (baselines, steered wake-policy runs).
    Run,
    /// `adapt.*` metadata only: the recording ran under a candidate
    /// [`ConfigMap`], so `replay()` must reject it rather than
    /// silently re-infer under the uniform configuration.
    Adapt,
}

/// What one candidate evaluation produced (the recording itself is
/// dropped — memory stays O(1) in candidate count).
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum CandidateRun {
    /// Replayed clean; the measured cost.
    Done(PlanCost),
    /// The recording was unusable; the reason to surface.
    Skipped(String),
}

/// The per-evaluation invariants every candidate shares: one compiled
/// program, one points-to result, one concurrent summary store.
pub struct EvalContext {
    program: Arc<lir::Program>,
    pt: Arc<pointsto::PointsTo>,
    store: SummaryStore,
    lib: LibrarySpec,
    hoist: bool,
    /// Live metrics registry ([`crate::pipeline::Pipeline::metrics`]):
    /// armed runs publish `ali_run_*` series and the harness counts
    /// `ali_eval_*` candidate totals. `None` = off, zero overhead.
    metrics: Option<Arc<obs::Registry>>,
}

impl EvalContext {
    /// Compiles `cfg`'s program and runs points-to, once.
    ///
    /// # Errors
    ///
    /// Returns a message on compile failure.
    pub fn new(cfg: &RunConfig, hoist: bool) -> Result<EvalContext, String> {
        let program = lir::compile(&cfg.source).map_err(|e| e.to_string())?;
        let pt = pointsto::PointsTo::analyze(&program);
        Ok(EvalContext {
            program: Arc::new(program),
            pt: Arc::new(pt),
            store: SummaryStore::new(),
            lib: LibrarySpec::new(),
            hoist,
            metrics: None,
        })
    }

    /// Arms every run this context executes with a live registry.
    pub(crate) fn arm_metrics(&mut self, reg: Arc<obs::Registry>) {
        self.metrics = Some(reg);
    }

    /// Bumps a harness counter on the armed registry, if any.
    pub(crate) fn count(&self, name: &str, n: u64) {
        if let Some(reg) = &self.metrics {
            reg.counter(name).add(n);
        }
    }

    /// The uniform configuration map `cfg` prescribes — the baseline
    /// every candidate overrides.
    pub fn base_map(&self, cfg: &RunConfig) -> ConfigMap {
        ConfigMap::uniform(SchemeConfig::full(cfg.k, self.program.elem_field_opt()))
    }

    /// Distinct scheme configurations whose Phase A summaries have
    /// been computed so far.
    pub fn summary_configs(&self) -> usize {
        self.store.len()
    }

    /// Executes `cfg` with locks inferred under `map` — the one
    /// recording primitive behind baselines, adapt candidates, and
    /// steered sched runs (formerly the near-identical
    /// `record_with_map` / `record_with_threads` twins).
    pub(crate) fn run_one(
        &self,
        cfg: &RunConfig,
        map: &ConfigMap,
        stamp: Stamp,
        analysis_threads: usize,
    ) -> Result<Recording, String> {
        Ok(self.run_one_ledger(cfg, map, stamp, analysis_threads)?.0)
    }

    /// [`Self::run_one`] plus the sentinel's canonical violation
    /// ledger, snapshotted before the machine is dropped — the
    /// evidence the re-inference pass (`crate::reinfer`) diagnoses.
    /// Empty for machines built without a sentinel.
    pub(crate) fn run_one_ledger(
        &self,
        cfg: &RunConfig,
        map: &ConfigMap,
        stamp: Stamp,
        analysis_threads: usize,
    ) -> Result<(Recording, Vec<sentinel::Violation>), String> {
        let (program, pt) = if self.hoist {
            (Arc::clone(&self.program), Arc::clone(&self.pt))
        } else {
            let p = lir::compile(&cfg.source).map_err(|e| e.to_string())?;
            let pt = pointsto::PointsTo::analyze(&p);
            (Arc::new(p), Arc::new(pt))
        };
        let store = if self.hoist { Some(&self.store) } else { None };
        let analysis = lockinfer::analyze_program_with_configs(
            &program,
            &pt,
            map,
            &self.lib,
            analysis_threads,
            store,
        );
        let transformed = lockinfer::transform(&program, &analysis);
        let mut opts = options_for(cfg);
        opts.metrics = self.metrics.clone();
        if !cfg.repairs.is_empty() {
            opts.repairs = crate::replay::repair_specs(
                &cfg.repairs,
                &program,
                &pt,
                map,
                &self.lib,
                analysis_threads,
                store,
            );
        }
        let m = Machine::new(Arc::new(transformed), pt, cfg.mode, opts);
        let (outcome, mut trace) = execute(&m, cfg);
        // Counters accumulate across the evaluation; gauges reflect
        // the most recent run's end-of-run totals.
        m.publish_metrics();
        let ledger = m
            .sentinel()
            .map(sentinel::Sentinel::violations)
            .unwrap_or_default();
        match stamp {
            Stamp::Run => cfg.stamp(&mut trace),
            Stamp::Adapt => {
                trace.meta_set("adapt.name", cfg.name.clone());
                trace.meta_set("adapt.base_k", cfg.k.to_string());
                for (section, c) in map.overrides() {
                    trace.meta_set(
                        &format!("adapt.section.{section}"),
                        format!(
                            "k={},expr={},pts={},eff={}",
                            c.k, c.use_expr, c.use_pts, c.use_eff
                        ),
                    );
                }
                if let Some(s) = &cfg.sched {
                    trace.meta_set("adapt.wake_policy", s.policy.tag().to_owned());
                }
            }
        }
        stamp_outcome(&outcome, &mut trace);
        Ok((Recording { outcome, trace }, ledger))
    }

    /// [`Self::run_one`] for a candidate: profiles the recording,
    /// keeps the cost, drops the events. A trace that overflowed its
    /// ring is a skip, not a silently bogus cost.
    pub(crate) fn eval_candidate(
        &self,
        cfg: &RunConfig,
        map: &ConfigMap,
        analysis_threads: usize,
    ) -> Result<CandidateRun, String> {
        let rec = self.run_one(cfg, map, Stamp::Adapt, analysis_threads)?;
        if rec.trace.dropped > 0 {
            return Ok(CandidateRun::Skipped(format!(
                "candidate trace dropped {} events - raise trace_capacity",
                rec.trace.dropped
            )));
        }
        let prof = trace::profile(&rec.trace);
        Ok(CandidateRun::Done(PlanCost::from_profiles(
            &prof,
            rec.outcome.makespan,
        )))
    }

    /// The [`RunConfig`] a candidate runs under: `cfg` plus the frozen
    /// wake-policy configuration when the candidate steers the
    /// scheduler.
    pub(crate) fn candidate_cfg(
        cfg: &RunConfig,
        wake: Option<interp::PolicyKind>,
        profiles: &[SectionProfile],
    ) -> RunConfig {
        let mut c = cfg.clone();
        if let Some(kind) = wake {
            c.sched = Some(interp::SchedConfig::from_profiles(kind, profiles));
        }
        c
    }
}

/// Runs `f(0..n)` on `eval_threads` scoped workers (0 = one per core)
/// pulling indices from an atomic queue, and merges the results **in
/// index order** — the canonical merge that keeps every downstream
/// report byte-identical at every thread count. `eval_threads <= 1`
/// (or a single item) degenerates to a plain sequential loop.
pub(crate) fn par_map<T, F>(n: usize, eval_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_threads = if eval_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        eval_threads
    }
    .clamp(1, n.max(1));
    if n_threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("eval worker panicked"))
            .collect()
    });
    for part in parts {
        for (i, v) in part {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index evaluated exactly once"))
        .collect()
}

/// The wake policy a single-override candidate steers, if any.
fn wake_of(c: &Candidate) -> Option<interp::PolicyKind> {
    match c.adjustment {
        Adjustment::WakePolicy(kind) => Some(kind),
        _ => None,
    }
}

/// Everything one candidate round evaluates against: the hoisted
/// context, the run being adapted, its baseline map/profiles/cost, and
/// the harness knobs.
pub(crate) struct EvalScope<'a> {
    pub ctx: &'a EvalContext,
    pub cfg: &'a RunConfig,
    pub base_map: &'a ConfigMap,
    pub profiles: &'a [SectionProfile],
    pub base_cost: PlanCost,
    pub opts: &'a EvalOptions,
}

/// Evaluates one set of single-override candidates through the pruned,
/// parallel pipeline and returns one `(cost, status)` per candidate
/// **in candidate order**.
///
/// Candidates naming the same *effective run configuration* — the same
/// override set and wake policy, e.g. one wake policy proposed for two
/// different convoy sections (steering is global, so both describe the
/// identical run) — are **deduplicated**: the configuration replays
/// once and every duplicate carries the shared measured cost as
/// [`EvalStatus::Replayed`]. Pruning and the estimator's diversity
/// guard operate on the deduplicated groups, each represented by its
/// best-estimated member, so a group is kept or pruned as a whole.
/// The legacy-emulation mode (`hoist: false`) skips the dedup and
/// replays each candidate individually; determinism makes the
/// resulting report byte-identical either way.
///
/// # Errors
///
/// Propagates the first candidate whose execution failed outright
/// (compile failure — impossible for candidates of a compiled
/// baseline, but surfaced rather than swallowed).
pub(crate) fn eval_singles(
    scope: &EvalScope<'_>,
    cands: &[Candidate],
) -> Result<Vec<(PlanCost, EvalStatus)>, String> {
    let &EvalScope {
        ctx,
        cfg,
        base_map,
        profiles,
        base_cost,
        opts,
    } = scope;
    let ests: Vec<u64> = cands
        .iter()
        .map(|c| estimate::estimate(c, profiles, base_cost))
        .collect();
    // Group by effective configuration, preserving first-seen order.
    // The legacy-emulation mode (`hoist: false`) replays every
    // candidate individually instead.
    type Key = (Vec<(u32, SchemeConfig)>, Option<interp::PolicyKind>);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    if opts.hoist {
        let mut keys: Vec<Key> = Vec::new();
        for (i, c) in cands.iter().enumerate() {
            let key: Key = (c.config_map(base_map).overrides().to_vec(), wake_of(c));
            match keys.iter().position(|k| *k == key) {
                Some(g) => groups[g].push(i),
                None => {
                    keys.push(key);
                    groups.push(vec![i]);
                }
            }
        }
    } else {
        groups = (0..cands.len()).map(|i| vec![i]).collect();
    }
    // One representative per group: the member the estimator rates
    // best (ties by candidate order — deterministic).
    let reps: Vec<Candidate> = groups
        .iter()
        .map(|members| {
            let &best = members
                .iter()
                .min_by_key(|&&i| (ests[i], i))
                .expect("groups are non-empty");
            cands[best]
        })
        .collect();
    let keep: Vec<usize> = match opts.prune {
        Some(top_k) => estimate::prune(&reps, profiles, base_cost, top_k),
        None => (0..reps.len()).collect(),
    };
    let runs: Vec<Result<CandidateRun, String>> = par_map(keep.len(), opts.eval_threads, |j| {
        let rep = &reps[keep[j]];
        let cand_cfg = EvalContext::candidate_cfg(cfg, wake_of(rep), profiles);
        ctx.eval_candidate(&cand_cfg, &rep.config_map(base_map), opts.analysis_threads)
    });
    ctx.count("ali_eval_candidates_evaluated_total", keep.len() as u64);
    ctx.count(
        "ali_eval_candidates_pruned_total",
        (reps.len() - keep.len()) as u64,
    );
    ctx.count(
        "ali_eval_candidates_skipped_total",
        runs.iter()
            .filter(|r| matches!(r, Ok(CandidateRun::Skipped(_))))
            .count() as u64,
    );
    let mut out: Vec<(PlanCost, EvalStatus)> = cands
        .iter()
        .zip(&ests)
        .map(|(_, &est)| (PlanCost::default(), EvalStatus::Pruned { est }))
        .collect();
    for (j, run) in runs.into_iter().enumerate() {
        let shared = match run? {
            CandidateRun::Done(cost) => (cost, EvalStatus::Replayed),
            CandidateRun::Skipped(reason) => (PlanCost::default(), EvalStatus::Skipped { reason }),
        };
        for &i in &groups[keep[j]] {
            out[i] = shared.clone();
        }
    }
    Ok(out)
}

/// Beam search over compound candidates, seeded from the improving
/// single-override decisions. Each round extends the beam with every
/// compatible seed plus the k-sweep / elem-field variants, prunes by
/// the analytic estimate, replays the survivors in parallel, and
/// carries the `width` best forward. Returns the full evaluation
/// record; `selected` names the best compound that strictly beats both
/// the baseline **and** the best single-override cost.
pub(crate) fn run_beam(
    scope: &EvalScope<'_>,
    cands: &[Candidate],
    singles: &[(PlanCost, EvalStatus)],
    bp: BeamPolicy,
) -> Result<BeamReport, String> {
    let &EvalScope {
        ctx,
        cfg,
        base_map,
        profiles,
        base_cost,
        opts,
    } = scope;
    // Improving singles, best first — the seeds and the round-0 beam.
    let mut improving: Vec<(PlanCost, usize)> = singles
        .iter()
        .enumerate()
        .filter(|(_, (cost, status))| {
            status.is_replayed() && cost.total_wait < base_cost.total_wait
        })
        .map(|(i, (cost, _))| (*cost, i))
        .collect();
    improving.sort_by_key(|(c, i)| (c.total_wait, c.makespan, *i));
    let seeds: Vec<Candidate> = improving.iter().map(|&(_, i)| cands[i]).collect();
    let single_floor = improving
        .first()
        .map(|(c, _)| c.total_wait)
        .unwrap_or(base_cost.total_wait);
    let mut beam: Vec<MultiCandidate> = seeds
        .iter()
        .take(bp.width)
        .map(MultiCandidate::single)
        .collect();
    let mut evaluated: Vec<MultiDecision> = Vec::new();
    // Cross-round dedup by effective configuration (extend_beam only
    // dedupes within one round).
    type SeenKey = (Vec<(u32, SchemeConfig)>, Option<String>);
    let mut seen: Vec<SeenKey> = Vec::new();
    let key = |m: &MultiCandidate| {
        (
            m.config_map(base_map).overrides().to_vec(),
            m.wake_policy().map(|k| k.tag().to_owned()),
        )
    };
    for round in 1..=bp.rounds {
        let gen: Vec<MultiCandidate> = lockinfer::extend_beam(&beam, &seeds, base_map, bp.max_k)
            .into_iter()
            .filter(|m| {
                let k = key(m);
                if seen.contains(&k) {
                    false
                } else {
                    seen.push(k);
                    true
                }
            })
            .collect();
        if gen.is_empty() {
            break;
        }
        let keep: Vec<usize> = match opts.prune {
            Some(top_k) => estimate::prune_multi(&gen, profiles, base_cost, top_k),
            None => (0..gen.len()).collect(),
        };
        let runs: Vec<Result<CandidateRun, String>> = par_map(keep.len(), opts.eval_threads, |j| {
            let m = &gen[keep[j]];
            let cand_cfg = EvalContext::candidate_cfg(cfg, m.wake_policy(), profiles);
            ctx.eval_candidate(&cand_cfg, &m.config_map(base_map), opts.analysis_threads)
        });
        ctx.count("ali_eval_candidates_evaluated_total", keep.len() as u64);
        ctx.count(
            "ali_eval_candidates_pruned_total",
            (gen.len() - keep.len()) as u64,
        );
        ctx.count(
            "ali_eval_candidates_skipped_total",
            runs.iter()
                .filter(|r| matches!(r, Ok(CandidateRun::Skipped(_))))
                .count() as u64,
        );
        let mut round_costs: Vec<(PlanCost, usize)> = Vec::new();
        let mut statuses: Vec<(PlanCost, EvalStatus)> = gen
            .iter()
            .map(|m| {
                (
                    PlanCost::default(),
                    EvalStatus::Pruned {
                        est: estimate::estimate_multi(m, profiles, base_cost),
                    },
                )
            })
            .collect();
        for (j, run) in runs.into_iter().enumerate() {
            statuses[keep[j]] = match run? {
                CandidateRun::Done(cost) => (cost, EvalStatus::Replayed),
                CandidateRun::Skipped(reason) => {
                    (PlanCost::default(), EvalStatus::Skipped { reason })
                }
            };
        }
        for (m, (cost, status)) in gen.into_iter().zip(statuses) {
            if status.is_replayed() && cost.total_wait < base_cost.total_wait {
                round_costs.push((cost, evaluated.len()));
            }
            evaluated.push(MultiDecision {
                candidate: m,
                cost,
                status,
                round,
            });
        }
        // Next beam: this round's `width` best improving compounds.
        round_costs.sort_by_key(|(c, i)| (c.total_wait, c.makespan, *i));
        if round_costs.is_empty() {
            break;
        }
        beam = round_costs
            .iter()
            .take(bp.width)
            .map(|&(_, i)| evaluated[i].candidate.clone())
            .collect();
    }
    let selected = evaluated
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            d.status.is_replayed()
                && d.cost.total_wait < base_cost.total_wait
                && d.cost.total_wait < single_floor
        })
        .min_by_key(|(i, d)| (d.cost.total_wait, d.cost.makespan, *i))
        .map(|(i, _)| i);
    Ok(BeamReport {
        width: bp.width,
        rounds: bp.rounds,
        baseline: base_cost,
        evaluated,
        selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_merges_in_index_order_at_any_thread_count() {
        for threads in [0usize, 1, 2, 7, 16] {
            let out = par_map(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "{threads}");
        }
        assert!(par_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn par_map_runs_every_index_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let hits: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        par_map(50, 7, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
