//! `ali::Pipeline` — the single entry point to the measurement loops
//! (DESIGN.md §5.9).
//!
//! Every evaluation subsystem in this crate walks the same arc:
//! **baseline** (record the run deterministically) → **profile**
//! (derive per-section wait/hold evidence or a violation ledger) →
//! **propose** (pure policy: candidates from evidence) → **evaluate**
//! (replay each candidate on the identical schedule, via
//! [`crate::eval`]) → **select** (strict measured improvement).
//! Historically each loop exposed its own free function with its own
//! parameter list; [`Pipeline`] is the builder that names the shared
//! knobs once and offers each loop as a terminal:
//!
//! ```no_run
//! use atomic_lock_inference as ali;
//! # fn cfg() -> ali::replay::RunConfig { unimplemented!() }
//! let run = ali::Pipeline::new(cfg())
//!     .analysis_threads(1)
//!     .prune(4)
//!     .adapt(&ali::lockinfer::adapt::AdaptPolicy::default())?;
//! # Ok::<(), String>(())
//! ```
//!
//! The legacy free functions ([`crate::adapt::adapt_with`],
//! [`crate::sched::evaluate_with`], [`crate::reinfer::reinfer_with`])
//! are thin wrappers over these terminals and produce byte-identical
//! reports — the loop bodies live here and only here.
//!
//! A pipeline can also be armed with an [`obs::Registry`]
//! ([`Pipeline::metrics`]): every run it executes then publishes
//! live `ali_run_*` counters/histograms and the harness counts
//! `ali_eval_*` candidate totals, at demonstrably negligible cost
//! (the `metrics-overhead` bench gates it) and with zero effect on
//! the deterministic schedule or any recorded trace.

use crate::adapt::AdaptRun;
use crate::eval::{eval_singles, par_map, run_beam, EvalContext, EvalOptions, EvalScope, Stamp};
use crate::reinfer::ReinferRun;
use crate::replay::{Recording, RunConfig};
use crate::sched::SchedRun;
use ::sched::convoy::{detect, ConvoyPolicy};
use ::sched::report::{
    select as sched_select, PolicyCost, PolicyOutcome, SchedReport, SkippedPolicy,
};
use ::sched::{PolicyKind, SchedConfig};
use lockinfer::adapt::{
    candidates as adapt_candidates, select as adapt_select, AdaptPolicy, Adjustment, BeamPolicy,
    Decision, DecisionReport,
};
use lockinfer::reinfer::{
    admit, candidates as repair_candidates, RepairDecision, RepairOutcome, RepairReport,
    SectionReport, Witness,
};
use lockinfer::{EvalStatus, PlanCost};
use lockscheme::ConfigMap;
use sentinel::Violation;
use std::sync::Arc;
use trace::Trace;

/// Builder over one run configuration and one set of harness knobs;
/// terminals execute a measurement loop (module docs above).
#[derive(Clone)]
pub struct Pipeline {
    cfg: RunConfig,
    opts: EvalOptions,
    metrics: Option<Arc<obs::Registry>>,
}

impl Pipeline {
    /// A pipeline over `cfg` with default [`EvalOptions`]: exact (no
    /// pruning, no beam), one eval worker and one analysis worker per
    /// core, invariants hoisted, metrics off.
    pub fn new(cfg: RunConfig) -> Pipeline {
        Pipeline {
            cfg,
            opts: EvalOptions::default(),
            metrics: None,
        }
    }

    /// A pipeline over the [`RunConfig`] embedded in a self-describing
    /// trace (one produced by [`crate::replay::record`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the trace lacks `run.*` metadata.
    pub fn from_trace(t: &Trace) -> Result<Pipeline, String> {
        Ok(Pipeline::new(RunConfig::from_trace(t)?))
    }

    /// Replaces the full harness option set.
    pub fn options(mut self, opts: EvalOptions) -> Pipeline {
        self.opts = opts;
        self
    }

    /// Phase B worker count for lock inference (`0` = one per core);
    /// the outcome is identical for every value.
    pub fn analysis_threads(mut self, n: usize) -> Pipeline {
        self.opts.analysis_threads = n;
        self
    }

    /// Concurrent candidate replays (`0` = one per core); reports are
    /// byte-identical at every value.
    pub fn eval_threads(mut self, n: usize) -> Pipeline {
        self.opts.eval_threads = n;
        self
    }

    /// Replay only the estimator's `top_k` candidates.
    pub fn prune(mut self, top_k: usize) -> Pipeline {
        self.opts.prune = Some(top_k);
        self
    }

    /// Run a beam search over compound candidates after the
    /// single-override round ([`Pipeline::adapt`] only).
    pub fn beam(mut self, bp: BeamPolicy) -> Pipeline {
        self.opts.beam = Some(bp);
        self
    }

    /// Arms every run this pipeline executes with a live metrics
    /// registry: `ali_run_*` series from the interpreter and runtimes,
    /// `ali_eval_*` candidate totals from the harness. Metrics never
    /// influence the deterministic schedule or any recorded trace.
    pub fn metrics(mut self, reg: Arc<obs::Registry>) -> Pipeline {
        self.metrics = Some(reg);
        self
    }

    /// The effective harness options.
    pub fn eval_options(&self) -> &EvalOptions {
        &self.opts
    }

    /// The run configuration this pipeline measures.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    fn context(&self, cfg: &RunConfig) -> Result<EvalContext, String> {
        let mut ctx = EvalContext::new(cfg, self.opts.hoist)?;
        if let Some(reg) = &self.metrics {
            ctx.arm_metrics(Arc::clone(reg));
        }
        Ok(ctx)
    }

    // ------------------------------------------------------------------
    // Terminals

    /// **Baseline only**: records the configuration once, stamped with
    /// full `run.*` metadata — byte-identical to
    /// [`crate::replay::record`], but metrics-armed when the pipeline
    /// is.
    ///
    /// # Errors
    ///
    /// Returns a message on compile failure.
    pub fn record(&self) -> Result<Recording, String> {
        let ctx = self.context(&self.cfg)?;
        let base_map = ctx.base_map(&self.cfg);
        ctx.run_one(&self.cfg, &base_map, Stamp::Run, self.opts.analysis_threads)
    }

    /// Profile-guided per-section adaptation: baseline → wait/hold
    /// profiles → policy candidates → replayed evaluation (optionally
    /// pruned, optionally beam-extended) → strict-improvement
    /// selection. See [`crate::adapt`] for the loop's full contract.
    ///
    /// # Errors
    ///
    /// Returns a message on compile failure or when the recorded
    /// baseline trace is unusable (ring overflow).
    pub fn adapt(&self, policy: &AdaptPolicy) -> Result<AdaptRun, String> {
        let cfg = &self.cfg;
        let opts = &self.opts;
        let ctx = self.context(cfg)?;
        let base_map = ctx.base_map(cfg);
        let baseline = ctx.run_one(cfg, &base_map, Stamp::Run, opts.analysis_threads)?;
        if baseline.trace.dropped > 0 {
            return Err(format!(
                "adapt: baseline trace dropped {} events — raise trace_capacity",
                baseline.trace.dropped
            ));
        }
        let profiles = trace::profile(&baseline.trace);
        let cands = adapt_candidates(&profiles, &base_map, policy);
        let base_cost = PlanCost::from_profiles(&profiles, baseline.outcome.makespan);

        let scope = EvalScope {
            ctx: &ctx,
            cfg,
            base_map: &base_map,
            profiles: &profiles,
            base_cost,
            opts,
        };
        let singles = eval_singles(&scope, &cands)?;
        let decisions: Vec<Decision> = cands
            .iter()
            .zip(&singles)
            .map(|(cand, (cost, status))| Decision {
                candidate: *cand,
                cost: *cost,
                status: status.clone(),
            })
            .collect();
        // Selection runs over the replayed subset only (pruned/skipped
        // candidates have no measured cost), mapped back to canonical
        // candidate indices.
        let replayed: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.status.is_replayed())
            .map(|(i, _)| i)
            .collect();
        let selected = adapt_select(
            base_cost,
            &replayed
                .iter()
                .map(|&i| decisions[i].cost)
                .collect::<Vec<_>>(),
        )
        .map(|j| replayed[j]);
        let report = DecisionReport {
            name: cfg.name.clone(),
            mode: format!("{:?}", cfg.mode),
            baseline: base_cost,
            candidates: decisions,
            selected,
        };

        let beam = match opts.beam {
            Some(bp) => Some(run_beam(&scope, &cands, &singles, bp)?),
            None => None,
        };

        // Candidate recordings were dropped after profiling; the
        // overall winner — the beam compound when it beat every
        // single, else the selected single — is re-executed once,
        // deterministically identical to its evaluation run.
        let adapted = if let Some((bi, b)) = beam.as_ref().and_then(|b| b.selected.zip(Some(b))) {
            let m = &b.evaluated[bi].candidate;
            let ccfg = EvalContext::candidate_cfg(cfg, m.wake_policy(), &profiles);
            Some(ctx.run_one(
                &ccfg,
                &m.config_map(&base_map),
                Stamp::Adapt,
                opts.analysis_threads,
            )?)
        } else if let Some(i) = selected {
            let cand = &cands[i];
            let wake = match cand.adjustment {
                Adjustment::WakePolicy(kind) => Some(kind),
                _ => None,
            };
            let ccfg = EvalContext::candidate_cfg(cfg, wake, &profiles);
            Some(ctx.run_one(
                &ccfg,
                &cand.config_map(&base_map),
                Stamp::Adapt,
                opts.analysis_threads,
            )?)
        } else {
            None
        };
        Ok(AdaptRun {
            report,
            baseline,
            adapted,
            beam,
        })
    }

    /// Replay-driven wake-policy evaluation: FIFO baseline → convoy
    /// detection → one steered re-run per policy → strict-improvement
    /// selection. See [`crate::sched`] for the loop's full contract.
    ///
    /// # Errors
    ///
    /// Returns a message on compile failure or when the recorded
    /// baseline trace is unusable (ring overflow).
    pub fn sched(&self, convoy: &ConvoyPolicy) -> Result<SchedRun, String> {
        let opts = &self.opts;
        let mut base_cfg = self.cfg.clone();
        base_cfg.sched = None;
        let ctx = self.context(&base_cfg)?;
        let base_map = ctx.base_map(&base_cfg);
        let baseline = ctx.run_one(&base_cfg, &base_map, Stamp::Run, opts.analysis_threads)?;
        if baseline.trace.dropped > 0 {
            return Err(format!(
                "sched: baseline trace dropped {} events — raise trace_capacity",
                baseline.trace.dropped
            ));
        }
        let profiles = trace::profile(&baseline.trace);
        let convoys = detect(&profiles, convoy);
        let base_cost = PolicyCost::from_profiles(&profiles, baseline.outcome.makespan);

        let kinds: Vec<PolicyKind> = PolicyKind::ALL
            .into_iter()
            .filter(|&k| k != PolicyKind::Fifo)
            .collect();
        // One steered re-run per policy, concurrently; recordings are
        // profiled and dropped inside the worker (O(1) memory),
        // results merged in policy order.
        let runs: Vec<Result<Result<PolicyCost, String>, String>> =
            par_map(kinds.len(), opts.eval_threads, |i| {
                let mut steered_cfg = base_cfg.clone();
                steered_cfg.sched = Some(SchedConfig::from_profiles(kinds[i], &profiles));
                let rec =
                    ctx.run_one(&steered_cfg, &base_map, Stamp::Run, opts.analysis_threads)?;
                if rec.trace.dropped > 0 {
                    return Ok(Err(format!(
                        "steered trace dropped {} events - raise trace_capacity",
                        rec.trace.dropped
                    )));
                }
                let prof = trace::profile(&rec.trace);
                Ok(Ok(PolicyCost::from_profiles(&prof, rec.outcome.makespan)))
            });
        ctx.count("ali_eval_candidates_evaluated_total", kinds.len() as u64);
        let mut evaluated = Vec::new();
        let mut skipped = Vec::new();
        for (kind, run) in kinds.iter().zip(runs) {
            match run? {
                Ok(cost) => evaluated.push(PolicyOutcome {
                    policy: *kind,
                    cost,
                }),
                Err(reason) => skipped.push(SkippedPolicy {
                    policy: *kind,
                    reason,
                }),
            }
        }
        ctx.count("ali_eval_candidates_skipped_total", skipped.len() as u64);
        let selected = sched_select(base_cost, &evaluated);
        let report = SchedReport {
            name: self.cfg.name.clone(),
            mode: format!("{:?}", self.cfg.mode),
            baseline: base_cost,
            evaluated,
            selected,
            convoys,
            skipped,
        };
        // Re-execute the winner once for the returned recording —
        // deterministically identical to its evaluation run.
        let steered = match report.winner() {
            Some(w) => {
                let mut steered_cfg = base_cfg.clone();
                steered_cfg.sched = Some(SchedConfig::from_profiles(w.policy, &profiles));
                Some(ctx.run_one(&steered_cfg, &base_map, Stamp::Run, opts.analysis_threads)?)
            }
            None => None,
        };
        Ok(SchedRun {
            report,
            baseline,
            steered,
        })
    }

    /// Quarantine-aware re-inference: armed baseline → violation
    /// ledger → diagnosed repair candidates → replayed cleanliness +
    /// cost evaluation → per-section admission → healed re-recording.
    /// See [`crate::reinfer`] for the loop's full contract.
    ///
    /// # Errors
    ///
    /// Returns a message when the run is not sentinel-armed, on
    /// compile failure, or when the baseline/reference traces are
    /// unusable (ring overflow).
    pub fn reinfer(&self) -> Result<ReinferRun, String> {
        let cfg = &self.cfg;
        let opts = &self.opts;
        if cfg.sentinel.is_none() {
            return Err("reinfer: the run must be sentinel-armed (set RunConfig::sentinel)".into());
        }
        let ctx = self.context(cfg)?;
        let base_map = ctx.base_map(cfg);
        let (baseline, ledger) =
            ctx.run_one_ledger(cfg, &base_map, Stamp::Run, opts.analysis_threads)?;
        if baseline.trace.dropped > 0 {
            return Err(format!(
                "reinfer: baseline trace dropped {} events — raise trace_capacity",
                baseline.trace.dropped
            ));
        }
        let base_cost =
            PlanCost::from_profiles(&trace::profile(&baseline.trace), baseline.outcome.makespan);

        // The ledger is already canonical (`(clock, tid, seq)` order);
        // resolving each address through the baseline's
        // allocation-table snapshot yields the witnesses the policy
        // diagnoses.
        let witnesses: Vec<Witness> = ledger
            .iter()
            .map(|v| Witness {
                violation: v.clone(),
                extent: baseline.trace.alloc_of(v.addr).map(|a| (a.base, a.class)),
            })
            .collect();
        let sections: Vec<u32> = {
            let mut s: Vec<u32> = witnesses.iter().map(|w| w.violation.section).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let cands = repair_candidates(&witnesses, &base_map);

        // Candidate and reference runs replay the steady state the
        // repair would install: the weaken fault (the modeled
        // inference bug) is off, the sentinel stays armed so
        // cleanliness is measured, and the schedule is otherwise
        // identical.
        let mut ecfg = cfg.clone();
        ecfg.weaken = None;
        let maps: Vec<ConfigMap> = sections
            .iter()
            .map(|&s| {
                let mut m = base_map.clone();
                m.demote_to_global(s);
                m
            })
            .chain(cands.iter().map(|c| c.config_map(&base_map)))
            .collect();
        let runs: Vec<Result<(Recording, Vec<Violation>), String>> =
            par_map(maps.len(), opts.eval_threads, |i| {
                ctx.run_one_ledger(&ecfg, &maps[i], Stamp::Adapt, opts.analysis_threads)
            });
        ctx.count("ali_eval_candidates_evaluated_total", maps.len() as u64);
        let mut assessed: Vec<(bool, PlanCost, EvalStatus)> = Vec::with_capacity(runs.len());
        for run in runs {
            let (rec, cand_ledger) = run?;
            if rec.trace.dropped > 0 {
                ctx.count("ali_eval_candidates_skipped_total", 1);
                assessed.push((
                    false,
                    PlanCost::default(),
                    EvalStatus::Skipped {
                        reason: format!(
                            "candidate trace dropped {} events - raise trace_capacity",
                            rec.trace.dropped
                        ),
                    },
                ));
                continue;
            }
            let cost = PlanCost::from_profiles(&trace::profile(&rec.trace), rec.outcome.makespan);
            let clean = rec.outcome.error.is_none()
                && cand_ledger.is_empty()
                && trace::validate(&rec.trace)
                    .map(|v| v.passed())
                    .unwrap_or(false);
            assessed.push((clean, cost, EvalStatus::Replayed));
        }

        let mut reports: Vec<SectionReport> = Vec::with_capacity(sections.len());
        for (si, &section) in sections.iter().enumerate() {
            let (_, demoted, ref_status) = &assessed[si];
            if !ref_status.is_replayed() {
                return Err(format!(
                    "reinfer: global-demotion reference for section {section} was unusable"
                ));
            }
            let demoted = *demoted;
            let members: Vec<usize> = cands
                .iter()
                .enumerate()
                .filter(|(_, c)| c.section == section)
                .map(|(i, _)| i)
                .collect();
            let decisions: Vec<RepairDecision> = members
                .iter()
                .map(|&i| {
                    let (clean, cost, status) = assessed[sections.len() + i].clone();
                    RepairDecision {
                        candidate: cands[i],
                        clean,
                        cost,
                        status,
                    }
                })
                .collect();
            let outcomes: Vec<RepairOutcome> = decisions
                .iter()
                .map(|d| RepairOutcome {
                    clean: d.clean && d.status.is_replayed(),
                    cost: d.cost,
                })
                .collect();
            let admitted = admit(demoted, &outcomes);
            reports.push(SectionReport {
                section,
                violations: witnesses
                    .iter()
                    .filter(|w| w.violation.section == section)
                    .count() as u64,
                demoted,
                candidates: decisions,
                admitted,
            });
        }
        let report = RepairReport {
            name: cfg.name.clone(),
            mode: format!("{:?}", cfg.mode),
            baseline: base_cost,
            sections: reports,
        };

        // Re-record the original armed configuration with the admitted
        // repairs installed dormant: the offending sections heal onto
        // the repaired schemes instead of the seed scheme.
        let admitted = report.admitted();
        let healed = if admitted.is_empty() {
            None
        } else {
            let mut fcfg = cfg.clone();
            fcfg.repairs = admitted
                .iter()
                .map(|&(section, j)| {
                    let s = report
                        .sections
                        .iter()
                        .find(|s| s.section == section)
                        .expect("admitted section is reported");
                    (section, j as u32, s.candidates[j].candidate.config)
                })
                .collect();
            Some(ctx.run_one(&fcfg, &base_map, Stamp::Run, opts.analysis_threads)?)
        };
        Ok(ReinferRun {
            report,
            baseline,
            healed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::{ExecMode, SentinelConfig, WeakenPlan};

    const SRC: &str = r#"
        global shared;
        global tally;
        fn setup(n) { shared = 0; tally = 0; }
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { shared = shared + 1; nops(200); }
                atomic { tally = tally + 1; }
                i = i + 1;
            }
            return 0;
        }
        fn total() { return shared + tally; }
    "#;

    fn cfg() -> RunConfig {
        RunConfig {
            name: "pipeline-smoke".into(),
            source: SRC.into(),
            k: 3,
            mode: ExecMode::MultiGrain,
            threads: 6,
            heap_cells: 1 << 14,
            seed: 17,
            quantum: 64,
            stm_abort_budget: 16,
            faults: None,
            sentinel: None,
            weaken: None,
            sched: None,
            repairs: Vec::new(),
            trace_capacity: 1 << 18,
            init: ("setup".into(), vec![0]),
            worker: ("work".into(), vec![20]),
            check: Some("total".into()),
        }
    }

    #[test]
    fn record_terminal_matches_replay_record_bytes() {
        let a = Pipeline::new(cfg()).analysis_threads(1).record().unwrap();
        let b = crate::replay::record(&cfg()).unwrap();
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.trace.to_json(), b.trace.to_json());
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn adapt_terminal_matches_the_legacy_wrapper_bytes() {
        let policy = AdaptPolicy::default();
        let via_pipeline = Pipeline::new(cfg())
            .analysis_threads(1)
            .adapt(&policy)
            .unwrap();
        let via_legacy = crate::adapt::adapt(&cfg(), &policy, 1).unwrap();
        assert_eq!(
            via_pipeline.report.to_json(),
            via_legacy.report.to_json(),
            "the wrapper and the terminal are the same loop"
        );
        assert_eq!(
            via_pipeline.baseline.trace.digest(),
            via_legacy.baseline.trace.digest()
        );
    }

    #[test]
    fn sched_terminal_matches_the_legacy_wrapper_bytes() {
        let convoy = ConvoyPolicy::default();
        let via_pipeline = Pipeline::new(cfg())
            .analysis_threads(1)
            .sched(&convoy)
            .unwrap();
        let via_legacy = crate::sched::evaluate(&cfg(), &convoy, 1).unwrap();
        assert_eq!(via_pipeline.report.to_json(), via_legacy.report.to_json());
        assert_eq!(
            via_pipeline.baseline.trace.digest(),
            via_legacy.baseline.trace.digest()
        );
    }

    #[test]
    fn reinfer_terminal_matches_the_legacy_wrapper_bytes() {
        let mut c = cfg();
        c.sentinel = Some(SentinelConfig {
            sample_every: 1,
            ..SentinelConfig::default()
        });
        c.weaken = Some(WeakenPlan {
            section: 0,
            drop_index: 0,
        });
        let via_pipeline = Pipeline::new(c.clone())
            .analysis_threads(1)
            .reinfer()
            .unwrap();
        let via_legacy = crate::reinfer::reinfer(&c, 1).unwrap();
        assert_eq!(via_pipeline.report.to_json(), via_legacy.report.to_json());
        match (&via_pipeline.healed, &via_legacy.healed) {
            (Some(a), Some(b)) => assert_eq!(a.trace.digest(), b.trace.digest()),
            (None, None) => {}
            other => panic!("healing diverged between wrapper and terminal: {other:?}"),
        }
    }

    #[test]
    fn unarmed_reinfer_is_rejected_with_the_legacy_message() {
        let err = Pipeline::new(cfg()).reinfer().unwrap_err();
        assert!(err.contains("sentinel-armed"), "{err}");
    }

    #[test]
    fn metrics_armed_runs_count_sections_and_leave_traces_untouched() {
        let reg = Arc::new(obs::Registry::new());
        let armed = Pipeline::new(cfg())
            .analysis_threads(1)
            .metrics(Arc::clone(&reg))
            .record()
            .unwrap();
        let unarmed = Pipeline::new(cfg()).analysis_threads(1).record().unwrap();
        assert_eq!(
            armed.trace.digest(),
            unarmed.trace.digest(),
            "metrics must not perturb the deterministic schedule"
        );
        let snap = reg.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k.name == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing from snapshot"))
        };
        let entries = counter("ali_run_section_entries_total");
        let trace_entries = armed
            .trace
            .counts()
            .get("section_enter")
            .copied()
            .unwrap_or(0);
        assert_eq!(entries, trace_entries, "live counter mirrors the trace");
        assert!(counter("ali_run_lock_acquisitions_total") > 0);
        // End-of-run gauges were published.
        assert!(snap
            .gauges
            .iter()
            .any(|(k, v)| k.name == "ali_run_mg_batches" && *v > 0));
    }

    #[test]
    fn metrics_armed_adapt_counts_harness_candidates() {
        let reg = Arc::new(obs::Registry::new());
        let run = Pipeline::new(cfg())
            .analysis_threads(1)
            .metrics(Arc::clone(&reg))
            .adapt(&AdaptPolicy::default())
            .unwrap();
        assert!(!run.report.candidates.is_empty());
        let snap = reg.snapshot();
        let evaluated = snap
            .counters
            .iter()
            .find(|(k, _)| k.name == "ali_eval_candidates_evaluated_total")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(evaluated > 0, "harness counted its replays");
    }
}
