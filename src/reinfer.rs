//! Quarantine-aware re-inference — the *measurement* half (DESIGN.md
//! §5.8).
//!
//! [`lockinfer::reinfer`] is the pure policy: a canonical violation
//! ledger in, diagnosed repair candidates and an acceptance rule out.
//! This module closes the loop against the deterministic interpreter,
//! driving the shared evaluation harness ([`crate::eval`]):
//!
//! 1. **Record** the armed run (sentinel on, typically with a seeded
//!    [`interp::WeakenPlan`] fault) and snapshot the sentinel's
//!    canonical violation ledger — sorted by `(clock, tid, seq)`, so
//!    every downstream decision is thread-count independent.
//! 2. **Resolve** each violation address through the trace's
//!    allocation-table snapshot into its points-to class
//!    ([`trace::Trace::alloc_of`]), producing the [`Witness`]es the
//!    policy diagnoses.
//! 3. **Reference**: for every offending section, measure the cost of
//!    the quarantine ladder's *status quo* — the run with that section
//!    permanently demoted to the global lock
//!    ([`lockscheme::ConfigMap::demote_to_global`], weaken off).
//! 4. **Replay** every repair candidate on the identical deterministic
//!    schedule (weaken off, sentinel still armed), concurrently on the
//!    harness's eval-thread pool, and check each for *cleanliness*:
//!    zero sentinel violations **and** a lockset-clean validator
//!    verdict.
//! 5. **Admit** per section ([`lockinfer::reinfer::admit`]): the
//!    cheapest clean candidate strictly below the demotion reference's
//!    total wait, or nothing (the demotion stands — sound, just slow).
//! 6. **Heal**: re-run the original armed configuration with the
//!    admitted repairs installed dormant ([`RunConfig::repairs`]). The
//!    section offends, demotes, serves its probation, and heals *onto
//!    the repaired scheme*, ledgered as `["ri",section,candidate,1]`
//!    in the trace. The healed recording is stamped with full `run.*`
//!    metadata (including `run.repair.*`), so it replays byte-for-byte.
//!
//! Everything downstream of the recorded trace is deterministic, so
//! two runs over the same config produce byte-identical
//! [`RepairReport`] JSON and healed-trace digests **at every analysis
//! and eval thread count**.

use crate::eval::EvalOptions;
use crate::replay::{Recording, RunConfig};
use crate::Pipeline;
use lockinfer::reinfer::RepairReport;
use trace::Trace;

/// The full result of one re-inference pass.
#[derive(Clone, Debug)]
pub struct ReinferRun {
    /// Machine-readable repair record (all sections, all candidates).
    pub report: RepairReport,
    /// The armed baseline recording the ledger came from.
    pub baseline: Recording,
    /// The healed re-recording with every admitted repair installed,
    /// when at least one section's repair was admitted. Carries the
    /// demote → probation → heal → `ri`-accepted arc in its events.
    pub healed: Option<Recording>,
}

/// Records the armed run, diagnoses its violation ledger, evaluates
/// repair candidates by replay, and re-records with the admitted
/// repairs installed.
///
/// `analysis_threads` is the Phase B worker count for lock inference
/// (`0` = one per core); the outcome is identical for every value.
///
/// # Errors
///
/// Returns a message when the run is not sentinel-armed, on compile
/// failure, or when the baseline/reference traces are unusable (ring
/// overflow). A *candidate* trace overflowing is not an error — the
/// candidate is marked [`EvalStatus::Skipped`] and never admitted.
pub fn reinfer(cfg: &RunConfig, analysis_threads: usize) -> Result<ReinferRun, String> {
    reinfer_with(
        cfg,
        &EvalOptions {
            analysis_threads,
            ..EvalOptions::default()
        },
    )
}

/// [`reinfer`] with full control over the evaluation harness.
///
/// A thin wrapper over [`Pipeline::reinfer`] — the loop body lives
/// there, so this function is byte-identical to the builder form.
///
/// # Errors
///
/// See [`reinfer`].
pub fn reinfer_with(cfg: &RunConfig, opts: &EvalOptions) -> Result<ReinferRun, String> {
    Pipeline::new(cfg.clone()).options(*opts).reinfer()
}

/// Like [`reinfer`], but starting from an existing self-describing
/// trace (one produced by [`crate::replay::record`] with the sentinel
/// armed): the embedded [`RunConfig`] is re-executed as the armed
/// baseline.
///
/// # Errors
///
/// Returns a message when the trace lacks `run.*` metadata, is not
/// sentinel-armed, or the embedded source no longer compiles.
pub fn reinfer_trace(t: &Trace, analysis_threads: usize) -> Result<ReinferRun, String> {
    reinfer(&RunConfig::from_trace(t)?, analysis_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interp::{ExecMode, SentinelConfig, WeakenPlan};
    use trace::EventKind;

    /// Two sections with disjoint footprints: section 0 updates two
    /// globals under real work (its plan has two inferred locks —
    /// either is droppable), section 1 hammers a third. Demoting
    /// section 0 to the global lock serializes section 1 against it;
    /// a coarse per-class repair does not — so the repair is strictly
    /// cheaper than the demotion and the acceptance rule admits it.
    const SRC: &str = r#"
        global a;
        global b;
        global c;
        fn setup(n) { a = n; b = n; c = n; }
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { a = a + 1; b = b + a; nops(20); }
                atomic { c = c + 1; nops(20); }
                i = i + 1;
            }
            return 0;
        }
        fn total() { return a + c; }
    "#;

    fn cfg() -> RunConfig {
        RunConfig {
            name: "weakened-pair".into(),
            source: SRC.into(),
            k: 3,
            mode: ExecMode::MultiGrain,
            threads: 6,
            heap_cells: 1 << 14,
            seed: 13,
            quantum: 64,
            stm_abort_budget: 16,
            faults: None,
            sentinel: Some(SentinelConfig {
                sample_every: 1,
                ..SentinelConfig::default()
            }),
            weaken: Some(WeakenPlan {
                section: 0,
                drop_index: 0,
            }),
            sched: None,
            repairs: Vec::new(),
            trace_capacity: 1 << 18,
            init: ("setup".into(), vec![0]),
            worker: ("work".into(), vec![24]),
            check: Some("total".into()),
        }
    }

    #[test]
    fn a_weakened_section_heals_onto_an_admitted_nonglobal_repair() {
        let run = reinfer(&cfg(), 1).unwrap();
        // The seeded fault produced violations and the ledger reached
        // the diagnosis.
        let sec = run
            .report
            .sections
            .iter()
            .find(|s| s.section == 0)
            .expect("the weakened section is reported");
        assert!(sec.violations > 0);
        assert!(!sec.candidates.is_empty());
        // A repair was admitted: lockset-clean and strictly cheaper
        // than the global-demotion reference.
        let w = sec.winner().expect("a repair is admitted");
        assert!(w.clean);
        assert!(w.cost.total_wait < sec.demoted.total_wait);
        assert!(!w.candidate.config.is_trivially_sound());
        // The healed run ledgers the re-admission onto the repair and
        // never demotes the section again afterwards.
        let healed = run.healed.as_ref().expect("healed recording exists");
        let events = &healed.trace.events;
        let accept = events
            .iter()
            .position(|e| {
                matches!(
                    e.kind,
                    EventKind::Reinfer {
                        section: 0,
                        accepted: true,
                        ..
                    }
                )
            })
            .expect("healed trace carries the ri-accepted ledger entry");
        assert!(
            !events[accept..].iter().any(|e| matches!(
                e.kind,
                EventKind::Quarantine {
                    section: 0,
                    healed: false,
                    ..
                }
            )),
            "zero post-repair violations: the repaired scheme must not re-offend"
        );
        // The healed recording is self-describing: replaying it
        // re-derives the repaired specs and reproduces the digest.
        assert!(
            healed.trace.meta_get("run.repair.0").is_some(),
            "repairs are stamped"
        );
        let again = crate::replay::replay(&healed.trace).unwrap();
        assert_eq!(again.trace.digest(), healed.trace.digest());
        assert_eq!(again.outcome, healed.outcome);
    }

    #[test]
    fn reports_and_healed_digests_are_identical_at_every_eval_thread_count() {
        let runs: Vec<ReinferRun> = [1usize, 2, 7]
            .iter()
            .map(|&t| {
                reinfer_with(
                    &cfg(),
                    &EvalOptions {
                        analysis_threads: 1,
                        eval_threads: t,
                        ..EvalOptions::default()
                    },
                )
                .unwrap()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.report.to_json(), runs[0].report.to_json());
            assert_eq!(r.baseline.trace.digest(), runs[0].baseline.trace.digest());
            match (&r.healed, &runs[0].healed) {
                (Some(a), Some(b)) => assert_eq!(a.trace.digest(), b.trace.digest()),
                (None, None) => {}
                other => panic!("healing diverged across eval thread counts: {other:?}"),
            }
        }
    }

    #[test]
    fn clean_armed_runs_are_left_untouched() {
        let mut c = cfg();
        c.weaken = None;
        let run = reinfer(&c, 1).unwrap();
        assert!(run.report.sections.is_empty());
        assert!(run.healed.is_none());
        // And the baseline stays fully replayable.
        let again = crate::replay::replay(&run.baseline.trace).unwrap();
        assert_eq!(again.trace.digest(), run.baseline.trace.digest());
    }

    #[test]
    fn unarmed_runs_are_rejected() {
        let mut c = cfg();
        c.sentinel = None;
        assert!(reinfer(&c, 1).unwrap_err().contains("sentinel-armed"));
    }
}
