//! `lockc` — the lock-inference compiler driver.
//!
//! Reads a mini-language program with `atomic { .. }` sections and
//! either reports the inferred locks, emits IR, or runs the transformed
//! program under a chosen execution discipline.
//!
//! ```text
//! lockc program.atc                        # report inferred locks (k = 9)
//! lockc program.atc --k 3 --emit ir        # canonical IR before transformation
//! lockc program.atc --emit transformed     # IR with acquireAll/releaseAll
//! lockc program.atc --emit pointsto        # the Steensgaard partition
//! lockc program.atc --run main             # run under multi-grain locks
//! lockc program.atc --run worker --threads 8 --mode stm --args 1000
//! lockc program.atc --run main --mode validate   # Theorem-1 checking run
//! lockc program.atc --run worker --threads 8 --virtual   # virtual-time makespan
//! ```

use atomic_lock_inference::{interp, lockinfer, lockscheme, pointsto};
use interp::{ExecMode, Machine, Options};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    input: String,
    k: usize,
    emit: Option<String>,
    run: Option<String>,
    threads: usize,
    mode: ExecMode,
    run_args: Vec<i64>,
    virtual_time: bool,
    heap_cells: usize,
}

const USAGE: &str = "\
usage: lockc <program.atc> [options]

options:
  --k <n>            expression-lock length bound (default 9)
  --emit locks       print inferred locks per section (default)
  --emit ir          print the canonical IR
  --emit transformed print the IR after the acquireAll/releaseAll rewrite
  --emit pointsto    print the points-to partition
  --emit fmt         reformat the source (parse + pretty-print)
  --emit dot         Graphviz CFG of every function
  --run <fn>         execute <fn> in the transformed program
  --args <a,b,..>    integer arguments for --run
  --threads <n>      run <fn> on n threads (default 1)
  --mode <m>         global | multigrain | stm | validate (default multigrain)
  --virtual          use the deterministic virtual-time scheduler and
                     report the makespan
  --heap <cells>     heap size in cells (default 4194304)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        k: 9,
        emit: None,
        run: None,
        threads: 1,
        mode: ExecMode::MultiGrain,
        run_args: Vec::new(),
        virtual_time: false,
        heap_cells: 1 << 22,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut want = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--k" => args.k = want("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--emit" => args.emit = Some(want("--emit")?),
            "--run" => args.run = Some(want("--run")?),
            "--threads" => {
                args.threads = want("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--heap" => {
                args.heap_cells = want("--heap")?
                    .parse()
                    .map_err(|e| format!("--heap: {e}"))?
            }
            "--args" => {
                args.run_args = want("--args")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|e| format!("--args: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--mode" => {
                args.mode = match want("--mode")?.as_str() {
                    "global" => ExecMode::Global,
                    "multigrain" => ExecMode::MultiGrain,
                    "stm" => ExecMode::Stm,
                    "validate" => ExecMode::Validate,
                    other => return Err(format!("unknown mode `{other}`")),
                }
            }
            "--virtual" => args.virtual_time = true,
            "-h" | "--help" => return Err(String::new()),
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_owned()
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.input.is_empty() {
        return Err("no input file".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match drive(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn drive(args: Args) -> Result<(), String> {
    let src =
        std::fs::read_to_string(&args.input).map_err(|e| format!("reading {}: {e}", args.input))?;
    if args.emit.as_deref() == Some("fmt") {
        let module = lir::parser::parse(&src).map_err(|e| e.to_string())?;
        print!("{}", module.to_source());
        return Ok(());
    }
    let program = lir::compile(&src).map_err(|e| e.to_string())?;
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    let cfg = lockscheme::SchemeConfig::full(args.k, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = lockinfer::transform(&program, &analysis);

    match args.emit.as_deref() {
        Some("ir") => {
            print!("{program}");
            return Ok(());
        }
        Some("transformed") => {
            print!("{transformed}");
            return Ok(());
        }
        Some("pointsto") => {
            emit_pointsto(&program, &pt);
            return Ok(());
        }
        Some("locks") => {
            print!("{}", analysis.render(&program));
            println!("totals: {}", analysis.lock_counts());
            return Ok(());
        }
        Some("dot") => {
            emit_dot(&transformed);
            return Ok(());
        }
        Some(other) => return Err(format!("unknown --emit `{other}`")),
        None => {}
    }

    let Some(entry) = args.run else {
        // Default action: report the locks.
        print!("{}", analysis.render(&program));
        println!("totals: {}", analysis.lock_counts());
        return Ok(());
    };

    let machine = Machine::new(
        Arc::new(transformed),
        pt,
        args.mode,
        Options {
            heap_cells: args.heap_cells,
            ..Options::default()
        },
    );
    if args.threads <= 1 && !args.virtual_time {
        let r = machine
            .run_named(&entry, &args.run_args)
            .map_err(|e| e.to_string())?;
        println!("{entry} returned {r}");
    } else if args.virtual_time {
        let (results, makespan) = machine
            .run_threads_virtual(&entry, args.threads, |_| args.run_args.clone())
            .map_err(|e| e.to_string())?;
        println!(
            "{entry} on {} virtual threads returned {:?}",
            args.threads, results
        );
        println!(
            "virtual makespan: {makespan} ticks ({:.6} s)",
            makespan as f64 * 1e-9
        );
    } else {
        let results = machine
            .run_threads(&entry, args.threads, |_| args.run_args.clone())
            .map_err(|e| e.to_string())?;
        println!("{entry} on {} threads returned {results:?}", args.threads);
    }
    for line in machine.output() {
        println!("[print] {line}");
    }
    if args.mode == ExecMode::Stm {
        let st = machine.stm_stats();
        println!("stm: {} commits, {} aborts", st.commits, st.aborts);
    }
    Ok(())
}

/// Graphviz rendering of each function's CFG (transformed program).
fn emit_dot(program: &lir::Program) {
    println!("digraph program {{");
    println!("  node [shape=box, fontname=monospace, fontsize=9];");
    for func in &program.functions {
        let fname = program.fn_name(func.id);
        println!("  subgraph cluster_{} {{", func.id.0);
        println!("    label=\"{fname}\";");
        for (i, ins) in func.body.iter().enumerate() {
            let text = program
                .render_instr(ins)
                .replace('\\', "\\\\")
                .replace('"', "\\\"");
            let short = if text.len() > 48 {
                format!("{}…", &text[..47])
            } else {
                text
            };
            println!("    n{}_{i} [label=\"{i}: {short}\"];", func.id.0);
        }
        for (i, _) in func.body.iter().enumerate() {
            for t in lir::cfg::successors(&func.body, i) {
                if (t as usize) < func.body.len() {
                    println!("    n{0}_{i} -> n{0}_{t};", func.id.0);
                }
            }
        }
        println!("  }}");
    }
    println!("}}");
}

fn emit_pointsto(program: &lir::Program, pt: &pointsto::PointsTo) {
    println!("{} points-to classes", pt.n_classes());
    for c in 0..pt.n_classes() {
        let class = pointsto::PtsClass(c);
        let vars = pt.vars_in_class(class);
        let sites = pt.sites_in_class(class);
        if vars.is_empty() && sites.is_empty() {
            continue;
        }
        let names: Vec<&str> = vars.iter().map(|v| program.var_name(*v)).collect();
        let site_strs: Vec<String> = sites
            .iter()
            .map(|s| format!("{}@{}", program.fn_name(s.func), s.idx))
            .collect();
        let deref = pt
            .deref(class)
            .map(|d| format!(" -> P{}", d.0))
            .unwrap_or_default();
        println!(
            "P{c}{deref}: vars [{}] allocs [{}]",
            names.join(", "),
            site_strs.join(", ")
        );
    }
}
