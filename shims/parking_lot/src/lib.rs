//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the small API surface it actually uses — `Mutex`, `RwLock`,
//! and `Condvar` with parking_lot's guard-based calling conventions —
//! implemented over `std::sync`. Poisoning is swallowed (parking_lot
//! has none): a panic while holding a lock leaves the data as-is, which
//! is exactly the behaviour the fault-injection harness exercises.
//!
//! Semantic differences from the real crate (none observable here):
//! no eventual fairness, no `const fn` constructors beyond what std
//! provides, and `Condvar::wait_for` is implemented with
//! `std::sync::Condvar::wait_timeout`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with parking_lot's panic-transparent API:
/// `lock()` returns the guard directly and never observes poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so
/// [`Condvar::wait`] can temporarily take std's guard by value.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`] by reference, as in
/// parking_lot.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses; reports which.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn poisoned_lock_is_transparent() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a holder panicked");
    }

    #[test]
    fn rwlock_shares_and_excludes() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
