//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the proptest API subset its tests use: `Strategy` with
//! `prop_map` / `prop_filter_map` / `prop_recursive` / `boxed`,
//! `Just`, `any`, integer-range and tuple strategies,
//! `collection::vec`, `sample::select`, `option::of`, the
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design: generation is seeded
//! from the test function's name so every run is reproducible, and
//! failing cases are **not shrunk** — the panic message carries the
//! case number so a failure can be replayed by re-running the test.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG (splitmix64) driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test name, so each property gets a
        /// stable but distinct sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type. Unlike real
    /// proptest there is no value tree: generation is direct and
    /// failures are reported unshrunk.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<W, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, retrying
        /// generation; `reason` is reported if retries are exhausted.
        fn prop_filter_map<W, F: Fn(Self::Value) -> Option<W>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                reason,
            }
        }

        /// Builds a recursive strategy: `recurse` receives a strategy
        /// for the substructure and returns the composite level.
        /// `depth` bounds nesting; the size hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                // At every level allow falling back to a leaf, so
                // shallow values stay common and depth is bounded.
                cur = Union::new(vec![base.clone(), recurse(cur).boxed()]).boxed();
            }
            cur
        }

        /// Type-erases the strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased [`Strategy`].
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy yielding clones of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
        type Value = W;
        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, W, F: Fn(S::Value) -> Option<W>> Strategy for FilterMap<S, F> {
        type Value = W;
        fn generate(&self, rng: &mut TestRng) -> W {
            for _ in 0..100_000 {
                if let Some(w) = (self.f)(self.inner.generate(rng)) {
                    return w;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.reason);
        }
    }

    /// Uniform choice among several same-typed strategies; what
    /// `prop_oneof!` expands to.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $via:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $via).wrapping_sub(self.start as $via) as u64;
                    (self.start as $via).wrapping_add(rng.below(span) as $via) as $t
                }
            }
        )*};
    }

    int_range_strategy! {
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, for [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Strategy covering the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for [`vec`], converted from `usize` ranges.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Uniform choice from a non-empty list of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same 1-in-4 None weighting as real proptest's default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option<T>` values: mostly `Some`, occasionally `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items (callers
/// write `#[test]` themselves, as this workspace's tests do).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let __strats = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strats;
                    ($($crate::strategy::Strategy::generate($arg, &mut __rng),)+)
                };
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = __result {
                    eprintln!(
                        "proptest case {}/{} of {} failed (deterministic seed; \
                         rerun the test to reproduce)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::from_name("det");
            let strat = prop::collection::vec((0usize..100).prop_map(|x| x * 2), 1..8);
            (0..20)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = crate::test_runner::TestRng::from_name("rec");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(a in 0usize..50, b in any::<bool>(), xs in prop::collection::vec(0i64..9, 0..5)) {
            prop_assert!(a < 50);
            prop_assert_eq!(b, b);
            for x in xs {
                prop_assert!((0..9).contains(&x));
            }
        }

        #[test]
        fn oneof_and_option(v in prop_oneof![Just(0u8), 1u8..4], o in prop::option::of(2u32..6)) {
            prop_assert!(v < 4);
            if let Some(x) = o {
                prop_assert!((2..6).contains(&x));
            }
        }
    }
}
