//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the criterion API subset its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `bench_function` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Instead of criterion's statistical engine this harness runs a short
//! warm-up, sizes the iteration count to roughly fill the configured
//! measurement time (capped so `cargo bench` stays quick), and prints
//! mean wall-clock time per iteration. Good enough to eyeball relative
//! cost and to keep `cargo bench` compiling; not a substitute for real
//! criterion statistics.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point handed to each registered benchmark function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target wall-clock time spent measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), &mut f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing only; retained for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up and calibration pass: one timed iteration decides how
        // many iterations fit the measurement budget.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        // Cap total work well below criterion's defaults so offline
        // `cargo bench` finishes in seconds, not minutes.
        let budget = self.measurement_time.min(Duration::from_secs(2));
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

        let mut total = Duration::ZERO;
        let samples = self.sample_size.clamp(1, 30);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
        }
        let mean = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
        println!(
            "  {id:<32} {:>12.1} ns/iter ({samples} samples x {iters} iters)",
            mean
        );
    }
}

/// Times closures for one sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark name, optionally parameterised (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A parameterised id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.label.fmt(f)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Bundles benchmark functions into a runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2).measurement_time(Duration::from_millis(5));
        let mut hits = 0u64;
        g.bench_function("count", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &k| {
            b.iter(|| {
                hits += k;
                black_box(hits)
            })
        });
        g.finish();
        assert!(hits > 0, "parameterised bench body must run");
    }
}
