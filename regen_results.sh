#!/bin/bash
cd /root/repo
./target/release/table2   > results_table2.txt   2>/dev/null
./target/release/figure7  > results_figure7.txt  2>/dev/null
./target/release/ablation > results_ablation.txt 2>/dev/null
./target/release/figure8  > results_figure8.txt  2>/dev/null
echo DONE
