#!/bin/bash
# Regenerates every results_*.txt artifact from the release binaries.
# Errors are fatal and land on the terminal — a silently truncated
# table is worse than no table.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -q

./target/release/table1   > results_table1.txt
./target/release/table2   > results_table2.txt
./target/release/figure7  > results_figure7.txt
./target/release/ablation > results_ablation.txt
./target/release/figure8  > results_figure8.txt

# Profile-guided per-section adaptation (DESIGN.md §5.4): baseline vs
# adapted wait/hold per workload. The binary exits nonzero when no
# workload improves or an adapted run waits longer than its baseline.
./target/release/adapt-table > results_adapt.txt

# Contention-aware wake policies (DESIGN.md §5.6): FIFO baseline vs
# steered replay per workload. The binary exits nonzero when no
# workload improves or a steered run waits longer than its baseline.
./target/release/sched-table > results_sched.txt

# Shared candidate-evaluation harness (DESIGN.md §5.7): legacy
# sequential candidate loop vs the hoisted, parallel, pruned harness
# on generated scale programs. The binary exits nonzero when the
# aggregate candidate-loop speedup drops below 3x, an exact parallel
# report diverges from the sequential bytes, or pruning discards an
# exact winner.
./target/release/eval-bench > results_eval.txt

# Analysis-engine throughput: prints the naive-vs-optimized table and
# refreshes the committed baseline the CI smoke job checks against.
./target/release/analysis-bench --out BENCH_analysis.json \
    | tee results_analysis_bench.txt
echo DONE
