//! Exporters: Prometheus text exposition and speedscope flamegraphs.
//!
//! Both are deterministic renderings — [`prometheus`] walks the
//! sorted [`Snapshot`] series in order, [`speedscope`] walks the
//! trace's total event order — so equal inputs export to equal bytes
//! (the golden-file tests pin both formats).

use crate::json::push_escaped;
use crate::{HistData, Key, Snapshot};
use std::collections::HashMap;
use std::fmt::Write as _;
use trace::{EventKind, Trace};

fn push_series_name(out: &mut String, key: &Key, suffix: &str, extra: Option<(&str, String)>) {
    out.push_str(&key.name);
    out.push_str(suffix);
    let mut labels: Vec<(&str, String)> = key
        .labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    if let Some((k, v)) = extra {
        labels.push((k, v));
    }
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Prometheus label escaping: backslash, quote, newline.
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            let _ = write!(out, "{k}=\"{escaped}\"");
        }
        out.push('}');
    }
}

fn push_type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last.clear();
        last.push_str(name);
    }
}

fn push_scalars(out: &mut String, series: &[(Key, u64)], kind: &str) {
    let mut last = String::new();
    for (key, v) in series {
        push_type_line(out, &mut last, &key.name, kind);
        push_series_name(out, key, "", None);
        let _ = writeln!(out, " {v}");
    }
}

/// The inclusive upper bound of log₂ bucket `i` (samples `v` with
/// `⌊log₂(v+1)⌋ == i`), as the Prometheus `le` label.
fn bucket_le(i: usize) -> String {
    ((1u128 << (i + 1)) - 2).to_string()
}

fn push_hist(out: &mut String, key: &Key, h: &HistData) {
    let mut cum = 0u64;
    for (i, b) in h.buckets.iter().enumerate() {
        cum += b;
        push_series_name(out, key, "_bucket", Some(("le", bucket_le(i))));
        let _ = writeln!(out, " {cum}");
    }
    push_series_name(out, key, "_bucket", Some(("le", "+Inf".to_owned())));
    let _ = writeln!(out, " {}", h.count);
    push_series_name(out, key, "_sum", None);
    let _ = writeln!(out, " {}", h.sum);
    push_series_name(out, key, "_count", None);
    let _ = writeln!(out, " {}", h.count);
}

/// Renders a snapshot in the Prometheus text exposition format
/// (counters, gauges, and log₂ histograms with cumulative buckets).
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    push_scalars(&mut out, &snap.counters, "counter");
    push_scalars(&mut out, &snap.gauges, "gauge");
    let mut last = String::new();
    for (key, h) in &snap.hists {
        push_type_line(&mut out, &mut last, &key.name, "histogram");
        push_hist(&mut out, key, h);
    }
    out
}

// ----------------------------------------------------------------------
// Speedscope flamegraph export

#[derive(Default)]
struct ThreadProf {
    /// Open frame indices, innermost last.
    stack: Vec<usize>,
    /// `(open?, frame, at)` events in thread order.
    events: Vec<(bool, usize, u64)>,
    start: Option<u64>,
    last: u64,
    /// The top of `stack` is an outermost-section wait frame, closed
    /// by the section's first `PlanComplete` (its acquisition point).
    wait_open: bool,
}

impl ThreadProf {
    fn open(&mut self, frame: usize, at: u64) {
        self.stack.push(frame);
        self.events.push((true, frame, at));
    }

    fn close_top(&mut self, at: u64) {
        if let Some(frame) = self.stack.pop() {
            self.events.push((false, frame, at));
        }
    }
}

/// Renders the trace's per-section wait/hold structure as a
/// speedscope evented profile (one profile per thread; each outermost
/// section execution is a frame, with its pre-acquisition wait as a
/// child frame). Open it at <https://www.speedscope.app>.
pub fn speedscope(t: &Trace) -> String {
    let mut frames: Vec<String> = Vec::new();
    let mut frame_ids: HashMap<String, usize> = HashMap::new();
    let mut frame_of = |name: String| -> usize {
        *frame_ids.entry(name.clone()).or_insert_with(|| {
            frames.push(name);
            frames.len() - 1
        })
    };
    // Lock-discipline traces mark acquisition points; STM traces have
    // none, so no wait frames can be attributed.
    let has_plans = t.events.iter().any(|e| e.kind == EventKind::PlanComplete);
    let mut threads: std::collections::BTreeMap<u32, ThreadProf> = Default::default();
    for e in &t.events {
        let th = threads.entry(e.tid).or_default();
        th.start.get_or_insert(e.clock);
        th.last = th.last.max(e.clock);
        match e.kind {
            EventKind::SectionEnter { section } => {
                let outermost = th.stack.is_empty();
                let f = frame_of(format!("section {section}"));
                th.open(f, e.clock);
                if outermost && has_plans {
                    let w = frame_of(format!("section {section} wait"));
                    th.open(w, e.clock);
                    th.wait_open = true;
                }
            }
            // Only the first completion ends the wait; revalidation
            // retries happen inside the hold interval.
            EventKind::PlanComplete if th.wait_open => {
                th.close_top(e.clock);
                th.wait_open = false;
            }
            EventKind::SectionExit { .. } => {
                if th.wait_open {
                    th.close_top(e.clock);
                    th.wait_open = false;
                }
                th.close_top(e.clock);
            }
            EventKind::StmAbort => {
                // The attempt unwound: every open frame ends here.
                while !th.stack.is_empty() {
                    th.close_top(e.clock);
                }
                th.wait_open = false;
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",");
    out.push_str("\"shared\":{\"frames\":[");
    for (i, name) in frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_escaped(&mut out, name);
        out.push('}');
    }
    out.push_str("]},\"profiles\":[");
    for (i, (tid, th)) in threads.iter_mut().enumerate() {
        // A truncated or crashed thread leaves frames open; close them
        // at its final clock so the profile stays well-formed.
        let last = th.last;
        while !th.stack.is_empty() {
            th.close_top(last);
        }
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"type\":\"evented\",\"name\":\"thread {tid}\",\"unit\":\"none\",\
             \"startValue\":{},\"endValue\":{},\"events\":[",
            th.start.unwrap_or(0),
            th.last
        );
        for (j, (open, frame, at)) in th.events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"type\":\"{}\",\"frame\":{frame},\"at\":{at}}}",
                if *open { 'O' } else { 'C' }
            );
        }
        out.push_str("]}");
    }
    out.push_str("],\"name\":\"ali section wait/hold profile\",");
    out.push_str("\"exporter\":\"ali-obs\",\"activeProfileIndex\":0}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Event;

    fn ev(epoch: u64, tid: u32, clock: u64, kind: EventKind) -> Event {
        Event {
            epoch,
            tid,
            clock,
            kind,
        }
    }

    #[test]
    fn prometheus_renders_cumulative_buckets() {
        let mut snap = Snapshot::default();
        snap.counters.push((Key::plain("c_total"), 2));
        snap.hists.push((
            Key::labelled("h_ticks", "section", 1),
            HistData {
                buckets: vec![1, 2],
                count: 3,
                sum: 4,
                max: 2,
            },
        ));
        let text = prometheus(&snap);
        assert!(text.contains("# TYPE c_total counter\nc_total 2\n"));
        assert!(text.contains("h_ticks_bucket{section=\"1\",le=\"0\"} 1\n"));
        assert!(text.contains("h_ticks_bucket{section=\"1\",le=\"2\"} 3\n"));
        assert!(text.contains("h_ticks_bucket{section=\"1\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("h_ticks_sum{section=\"1\"} 4\n"));
        assert!(text.contains("h_ticks_count{section=\"1\"} 3\n"));
    }

    #[test]
    fn speedscope_frames_nest_and_close() {
        let t = Trace {
            events: vec![
                ev(0, 0, 10, EventKind::SectionEnter { section: 3 }),
                ev(1, 0, 15, EventKind::PlanComplete),
                ev(2, 0, 30, EventKind::SectionExit { section: 3 }),
                ev(3, 1, 5, EventKind::SectionEnter { section: 3 }),
            ],
            ..Trace::default()
        };
        let s = speedscope(&t);
        // Frame order is first-use: section 3, then its wait frame.
        assert!(s.contains("{\"name\":\"section 3\"},{\"name\":\"section 3 wait\"}"));
        // Thread 0: O section, O wait, C wait at the acquisition point,
        // C section at exit.
        assert!(s.contains(
            "{\"type\":\"O\",\"frame\":0,\"at\":10},{\"type\":\"O\",\"frame\":1,\"at\":10},\
             {\"type\":\"C\",\"frame\":1,\"at\":15},{\"type\":\"C\",\"frame\":0,\"at\":30}"
        ));
        // Thread 1 dangles: closed at its last clock.
        assert!(s.contains(
            "{\"type\":\"C\",\"frame\":1,\"at\":5},{\"type\":\"C\",\"frame\":0,\"at\":5}"
        ));
    }
}
