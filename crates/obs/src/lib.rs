//! Unified observability layer (DESIGN.md §5.9).
//!
//! The runtime crates emit evidence two ways: *live*, through a
//! [`Registry`] of relaxed-atomic counters, gauges, and log₂
//! [histograms](Hist) whose handles are resolved once (at worker or
//! machine construction) and incremented lock-free on the hot path;
//! and *post-hoc*, by deriving the same metric vocabulary from a
//! recorded trace ([`from_trace`]) — the latter is a pure function of
//! the trace bytes, so snapshots are byte-identical at every analysis
//! and eval thread count.
//!
//! A [`Snapshot`] is the deterministic export surface: metrics sorted
//! by `(name, labels)`, rendered as canonical JSON ([`Snapshot::to_json`],
//! fixed key order, byte equality ⇔ metric equality — the same
//! contract as `trace::json`), as Prometheus text exposition
//! ([`export::prometheus`]), or — for the per-section wait/hold
//! profiles — as a speedscope-compatible flamegraph
//! ([`export::speedscope`]).

pub mod derive;
pub mod export;
mod json;

pub use derive::from_trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Log₂ histograms cover the full `u64` sample range.
const HIST_BUCKETS: usize = 64;

/// A monotone event counter. Cheap to clone (shares the cell).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one. Relaxed: totals are read only at snapshot time.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins level (queue depths, end-of-run totals).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage of a live log₂ histogram (the atomic twin of
/// `trace::Histogram`: bucket `i` counts samples `v` with
/// `⌊log₂(v+1)⌋ == i`, so bucket 0 is exactly the zero samples).
struct HistCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂ histogram of `u64` samples, observable concurrently.
#[derive(Clone)]
pub struct Hist(Arc<HistCell>);

impl Hist {
    /// Records one sample (relaxed; saturating like
    /// `trace::Histogram::add`).
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (63 - v.saturating_add(1).leading_zeros().min(63)) as usize;
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // `sum` may saturate conceptually; wrapping is acceptable for a
        // diagnostic aggregate, but stay faithful to the trace twin.
        let _ = self
            .0
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    fn data(&self) -> HistData {
        let mut buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistData {
            buckets,
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
        }
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Hist),
}

/// A named set of metrics. Handle resolution takes a mutex
/// (registration time only); the handles themselves are lock-free.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.slots.lock().unwrap().len())
            .finish()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
        {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Hist {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Hist(Hist(Arc::new(HistCell::new()))))
        {
            Slot::Hist(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A deterministic snapshot: metrics sorted by name (the registry
    /// map is ordered), labels empty (live metrics are label-free;
    /// labelled series come from [`from_trace`]).
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().unwrap();
        let mut snap = Snapshot::default();
        for (name, slot) in slots.iter() {
            let key = Key::plain(name);
            match slot {
                Slot::Counter(c) => snap.counters.push((key, c.get())),
                Slot::Gauge(g) => snap.gauges.push((key, g.get())),
                Slot::Hist(h) => snap.hists.push((key, h.data())),
            }
        }
        snap
    }
}

/// A metric series identity: name plus (possibly empty) label pairs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Key {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl Key {
    /// A label-free key.
    pub fn plain(name: &str) -> Key {
        Key {
            name: name.to_owned(),
            labels: Vec::new(),
        }
    }

    /// A key with one label.
    pub fn labelled(name: &str, label: &str, value: impl ToString) -> Key {
        Key {
            name: name.to_owned(),
            labels: vec![(label.to_owned(), value.to_string())],
        }
    }
}

/// Exported histogram state (the non-atomic view of [`Hist`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HistData {
    /// Trailing zero buckets trimmed.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistData {
    /// Converts from the trace profiler's histogram.
    pub fn from_trace_hist(h: &trace::Histogram) -> HistData {
        HistData {
            buckets: h.buckets.clone(),
            count: h.count,
            sum: h.sum,
            max: h.max,
        }
    }
}

/// A point-in-time view of every metric, sorted by `(name, labels)` so
/// equal metric state renders to equal bytes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    pub counters: Vec<(Key, u64)>,
    pub gauges: Vec<(Key, u64)>,
    pub hists: Vec<(Key, HistData)>,
}

impl Snapshot {
    /// Restores the canonical order after out-of-order insertion.
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.hists.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Canonical JSON (`ali-metrics-v1`): fixed key order, sorted
    /// series, no whitespace — byte equality is snapshot equality.
    pub fn to_json(&self) -> String {
        json::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        let reg = Registry::new();
        let b = reg.counter("bbb");
        let a = reg.counter("aaa");
        a.inc();
        b.add(3);
        reg.counter("aaa").inc(); // same handle cell
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.name.as_str()).collect();
        assert_eq!(names, ["aaa", "bbb"]);
        assert_eq!(snap.counters[0].1, 2);
        assert_eq!(snap.counters[1].1, 3);
    }

    #[test]
    fn histogram_buckets_match_the_trace_profiler() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        let mut t = trace::Histogram::default();
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            h.observe(v);
            t.add(v);
        }
        let data = reg.snapshot().hists[0].1.clone();
        assert_eq!(data, HistData::from_trace_hist(&t));
    }

    #[test]
    fn gauges_are_last_writer_wins() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.set(2);
        assert_eq!(reg.snapshot().gauges[0].1, 2);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_clashes_are_programming_errors() {
        let reg = Registry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn snapshot_json_is_stable_under_resorting() {
        let mut snap = Snapshot::default();
        snap.counters.push((Key::labelled("c", "s", 2), 1));
        snap.counters.push((Key::plain("a"), 7));
        let mut twin = snap.clone();
        snap.sort();
        twin.sort();
        assert_eq!(snap.to_json(), twin.to_json());
        assert!(snap.to_json().starts_with("{\"format\":\"ali-metrics-v1\""));
    }
}
