//! Trace-derived metric snapshots.
//!
//! [`from_trace`] maps a recorded `ali-trace-v1` trace onto the same
//! metric vocabulary the live [`Registry`](crate::Registry) speaks —
//! a pure function of the trace bytes, so two snapshots derived from
//! the same recording are byte-identical no matter how many analysis
//! or eval threads produced it. The shape is fixed: every kind/mode/
//! class series is always present (zero-valued when unseen), and
//! per-section series follow the `trace::profile` section set.

use crate::{HistData, Key, Snapshot};
use mglock::{FineAddr, Mode, NodeKey};
use trace::{EventKind, FaultClass, Trace};

/// All event kinds, in the canonical `Trace::counts` vocabulary.
const EVENT_KINDS: [&str; 15] = [
    "alloc",
    "fault",
    "lock_acquire",
    "lock_release",
    "plan_complete",
    "quarantine",
    "read",
    "reinfer",
    "section_enter",
    "section_exit",
    "stm_abort",
    "stm_commit",
    "stm_fallback",
    "wake_decision",
    "write",
];

const MODES: [Mode; 5] = [Mode::Is, Mode::Ix, Mode::S, Mode::Six, Mode::X];
const NODE_CLASSES: [&str; 4] = ["root", "pts", "cell", "range"];
const FAULT_CLASSES: [FaultClass; 4] = [
    FaultClass::Panic,
    FaultClass::SpuriousAbort,
    FaultClass::Stall,
    FaultClass::WakeupDelay,
];

/// The trace JSON tag of a lock mode.
pub fn mode_tag(mode: Mode) -> &'static str {
    match mode {
        Mode::Is => "IS",
        Mode::Ix => "IX",
        Mode::S => "S",
        Mode::Six => "SIX",
        Mode::X => "X",
    }
}

/// The trace JSON class of a lock-tree node.
pub fn node_class(node: NodeKey) -> &'static str {
    match node {
        NodeKey::Root => "root",
        NodeKey::Pts(_) => "pts",
        NodeKey::Fine(_, FineAddr::Cell(_)) => "cell",
        NodeKey::Fine(_, FineAddr::Range(_)) => "range",
    }
}

fn fault_tag(class: FaultClass) -> &'static str {
    match class {
        FaultClass::Panic => "panic",
        FaultClass::SpuriousAbort => "abort",
        FaultClass::Stall => "stall",
        FaultClass::WakeupDelay => "delay",
    }
}

/// Derives the canonical metrics snapshot of a recorded trace.
pub fn from_trace(t: &Trace) -> Snapshot {
    let mut snap = Snapshot::default();

    let counts = t.counts();
    for kind in EVENT_KINDS {
        snap.counters.push((
            Key::labelled("ali_trace_events_total", "kind", kind),
            counts.get(kind).copied().unwrap_or(0),
        ));
    }

    let mut acquires = [0u64; MODES.len()];
    let mut wake_by_class = [0u64; NODE_CLASSES.len()];
    let mut faults = [0u64; FAULT_CLASSES.len()];
    let mut woken = 0u64;
    let (mut commit_reads, mut commit_writes) = (0u64, 0u64);
    let (mut demotions, mut heals) = (0u64, 0u64);
    let (mut repairs_on, mut repairs_off) = (0u64, 0u64);
    let mut threads: Vec<u32> = Vec::new();
    let mut makespan = 0u64;
    for e in &t.events {
        if let Err(i) = threads.binary_search(&e.tid) {
            threads.insert(i, e.tid);
        }
        makespan = makespan.max(e.clock);
        match e.kind {
            EventKind::LockAcquire { mode, .. } => {
                acquires[MODES.iter().position(|&m| m == mode).unwrap()] += 1;
            }
            EventKind::Fault { class } => {
                faults[FAULT_CLASSES.iter().position(|&c| c == class).unwrap()] += 1;
            }
            EventKind::WakeDecision {
                node, woken: batch, ..
            } => {
                let class = node_class(node);
                wake_by_class[NODE_CLASSES.iter().position(|&c| c == class).unwrap()] += 1;
                woken += batch as u64;
            }
            EventKind::StmCommit { reads, writes } => {
                commit_reads += reads;
                commit_writes += writes;
            }
            EventKind::Quarantine { healed, .. } => {
                if healed {
                    heals += 1;
                } else {
                    demotions += 1;
                }
            }
            EventKind::Reinfer { accepted, .. } => {
                if accepted {
                    repairs_on += 1;
                } else {
                    repairs_off += 1;
                }
            }
            _ => {}
        }
    }
    for (i, mode) in MODES.iter().enumerate() {
        snap.counters.push((
            Key::labelled("ali_lock_acquires_total", "mode", mode_tag(*mode)),
            acquires[i],
        ));
    }
    for (i, class) in NODE_CLASSES.iter().enumerate() {
        snap.counters.push((
            Key::labelled("ali_wake_decisions_total", "node", class),
            wake_by_class[i],
        ));
    }
    for (i, class) in FAULT_CLASSES.iter().enumerate() {
        snap.counters.push((
            Key::labelled("ali_faults_total", "class", fault_tag(*class)),
            faults[i],
        ));
    }
    snap.counters
        .push((Key::plain("ali_wake_woken_total"), woken));
    snap.counters
        .push((Key::plain("ali_stm_commit_reads_total"), commit_reads));
    snap.counters
        .push((Key::plain("ali_stm_commit_writes_total"), commit_writes));
    snap.counters
        .push((Key::plain("ali_quarantine_demotions_total"), demotions));
    snap.counters
        .push((Key::plain("ali_quarantine_heals_total"), heals));
    snap.counters
        .push((Key::plain("ali_repairs_accepted_total"), repairs_on));
    snap.counters
        .push((Key::plain("ali_repairs_revoked_total"), repairs_off));

    snap.gauges
        .push((Key::plain("ali_trace_dropped_events"), t.dropped));
    snap.gauges
        .push((Key::plain("ali_trace_threads"), threads.len() as u64));
    snap.gauges
        .push((Key::plain("ali_trace_makespan_ticks"), makespan));

    for p in trace::profile(t) {
        snap.counters.push((
            Key::labelled("ali_section_entries_total", "section", p.section),
            p.entries,
        ));
        snap.counters.push((
            Key::labelled("ali_section_aborts_total", "section", p.section),
            p.aborts,
        ));
        snap.hists.push((
            Key::labelled("ali_section_wait_ticks", "section", p.section),
            HistData::from_trace_hist(&p.wait),
        ));
        snap.hists.push((
            Key::labelled("ali_section_hold_ticks", "section", p.section),
            HistData::from_trace_hist(&p.hold),
        ));
        snap.hists.push((
            Key::labelled("ali_section_revalidations", "section", p.section),
            HistData::from_trace_hist(&p.revalidations),
        ));
    }

    snap.sort();
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_yields_the_full_zero_shape() {
        let snap = from_trace(&Trace::default());
        // 15 kinds + 5 modes + 4 node classes + 4 fault classes + 7
        // plain counters, zero sections.
        assert_eq!(snap.counters.len(), 35);
        assert!(snap.counters.iter().all(|(_, v)| *v == 0));
        assert_eq!(snap.gauges.len(), 3);
        assert!(snap.hists.is_empty());
        // Canonical order: sorted by (name, labels).
        let mut sorted = snap.clone();
        sorted.sort();
        assert_eq!(snap, sorted);
    }
}
