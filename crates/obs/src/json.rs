//! Canonical JSON for metric snapshots (`ali-metrics-v1`).
//!
//! Same contract as `trace::json`: fixed key order, series sorted by
//! `(name, labels)`, integers as plain `u64`s, no whitespace — so byte
//! equality of two encodings is equality of the snapshots.

use crate::{HistData, Key, Snapshot};

pub(crate) const FORMAT: &str = "ali-metrics-v1";

/// Appends `s` as a JSON string literal.
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_key(out: &mut String, key: &Key) {
    push_escaped(out, &key.name);
    out.push_str(",[");
    for (i, (k, v)) in key.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_escaped(out, k);
        out.push(',');
        push_escaped(out, v);
        out.push(']');
    }
    out.push(']');
}

fn push_scalars(out: &mut String, series: &[(Key, u64)]) {
    out.push('[');
    for (i, (key, v)) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_key(out, key);
        out.push_str(&format!(",{v}]"));
    }
    out.push(']');
}

fn push_hist(out: &mut String, h: &HistData) {
    out.push('[');
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&b.to_string());
    }
    out.push_str(&format!("],{},{},{}", h.count, h.sum, h.max));
}

/// Encodes a snapshot; the caller is expected to have [`Snapshot::sort`]ed
/// it (the [`crate::Registry`] and [`crate::from_trace`] paths both do).
pub(crate) fn encode(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\"format\":\"");
    out.push_str(FORMAT);
    out.push_str("\",\"counters\":");
    push_scalars(&mut out, &snap.counters);
    out.push_str(",\"gauges\":");
    push_scalars(&mut out, &snap.gauges);
    out.push_str(",\"hists\":[");
    for (i, (key, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_key(&mut out, key);
        out.push(',');
        push_hist(&mut out, h);
        out.push(']');
    }
    out.push_str("]}");
    out
}
