//! Concrete lock semantics (§3.2): `[[l]] = (P, ε)` where `P ⊆ Loc` and
//! `ε ∈ {ro, rw}`.
//!
//! At run time a lock denotes a set of concrete heap cells. The
//! interpreter implements [`LocationModel`] over its heap, and the
//! Validate execution mode uses [`ConcreteLock::protects`] to check the
//! operational side-condition of Theorem 1: every location accessed
//! inside an atomic section is protected, with the right effect, by
//! some held lock.

use lir::Eff;
use pointsto::PtsClass;
use std::collections::BTreeSet;

/// How concrete locations map back to analysis abstractions.
///
/// Locations are heap cell indices (`u64`).
pub trait LocationModel {
    /// The points-to class of the cell at `loc` (its allocation site's
    /// class, or its variable's class for variable cells).
    fn class_of(&self, loc: u64) -> Option<PtsClass>;

    /// The allocation extent `(base, len)` containing `loc`.
    fn extent_of(&self, loc: u64) -> Option<(u64, u64)>;
}

/// A lock instance with its concrete denotation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConcreteLock {
    /// `[[⊤]] = (Loc, rw)`.
    Global,
    /// `[[(⊤, P, ε)]] = (cells of class P, ε)`.
    Coarse { pts: PtsClass, eff: Eff },
    /// A fine expression lock that evaluated to a single cell:
    /// `[[l]] = ({addr}, ε)`.
    Cell { addr: u64, eff: Eff },
    /// A fine expression lock ending in the dynamic `[]` offset: it
    /// protects *every* element of the array allocated at `base`.
    Range { base: u64, eff: Eff },
}

impl ConcreteLock {
    /// The lock's effect component.
    pub fn eff(&self) -> Eff {
        match self {
            ConcreteLock::Global => Eff::Rw,
            ConcreteLock::Coarse { eff, .. }
            | ConcreteLock::Cell { eff, .. }
            | ConcreteLock::Range { eff, .. } => *eff,
        }
    }

    /// Whether the lock's denotation contains `loc` (ignoring effects).
    pub fn covers<M: LocationModel + ?Sized>(&self, loc: u64, model: &M) -> bool {
        match self {
            ConcreteLock::Global => true,
            ConcreteLock::Coarse { pts, .. } => model.class_of(loc) == Some(*pts),
            ConcreteLock::Cell { addr, .. } => loc == *addr,
            ConcreteLock::Range { base, .. } => {
                model.extent_of(loc).is_some_and(|(b, _)| b == *base)
            }
        }
    }

    /// The Theorem 1 side-condition: the lock protects `loc` for an
    /// access with effect `eff` iff it covers the location *and* allows
    /// at least that effect (`eff ⊑ [[l]].ε`).
    pub fn protects<M: LocationModel + ?Sized>(&self, loc: u64, eff: Eff, model: &M) -> bool {
        self.covers(loc, model) && eff.leq(self.eff())
    }

    /// Enumerates the denotation over a finite location universe —
    /// the executable form of `[[l]]` used to test the §3.2 relations.
    pub fn denotation<M: LocationModel + ?Sized>(
        &self,
        universe: impl IntoIterator<Item = u64>,
        model: &M,
    ) -> (BTreeSet<u64>, Eff) {
        let set = universe
            .into_iter()
            .filter(|&l| self.covers(l, model))
            .collect();
        (set, self.eff())
    }
}

/// The `conflict` relation of §3.2: two locks conflict iff their
/// denotations share a location and at least one allows writes.
pub fn conflict<M: LocationModel + ?Sized>(
    a: &ConcreteLock,
    b: &ConcreteLock,
    universe: &[u64],
    model: &M,
) -> bool {
    let (da, ea) = a.denotation(universe.iter().copied(), model);
    let (db, eb) = b.denotation(universe.iter().copied(), model);
    let intersects = da.intersection(&db).next().is_some();
    intersects && (ea == Eff::Rw || eb == Eff::Rw)
}

/// The `coarser` relation of §3.2: `b` is coarser than `a` iff
/// `[[a]] ⊑ [[b]]` (denotation inclusion and effect order).
pub fn coarser<M: LocationModel + ?Sized>(
    b: &ConcreteLock,
    a: &ConcreteLock,
    universe: &[u64],
    model: &M,
) -> bool {
    let (da, ea) = a.denotation(universe.iter().copied(), model);
    let (db, eb) = b.denotation(universe.iter().copied(), model);
    da.is_subset(&db) && ea.leq(eb)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy heap: cells 0..10; class = cell / 5; allocations of 5 cells.
    struct Toy;
    impl LocationModel for Toy {
        fn class_of(&self, loc: u64) -> Option<PtsClass> {
            (loc < 10).then_some(PtsClass((loc / 5) as u32))
        }
        fn extent_of(&self, loc: u64) -> Option<(u64, u64)> {
            (loc < 10).then(|| (loc / 5 * 5, 5))
        }
    }

    const UNIVERSE: [u64; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

    #[test]
    fn global_covers_everything() {
        let g = ConcreteLock::Global;
        for l in UNIVERSE {
            assert!(g.protects(l, Eff::Rw, &Toy));
        }
    }

    #[test]
    fn coarse_covers_its_class_only() {
        let c = ConcreteLock::Coarse {
            pts: PtsClass(0),
            eff: Eff::Rw,
        };
        assert!(c.protects(3, Eff::Rw, &Toy));
        assert!(!c.protects(7, Eff::Ro, &Toy));
    }

    #[test]
    fn effects_limit_protection() {
        let ro = ConcreteLock::Cell {
            addr: 2,
            eff: Eff::Ro,
        };
        assert!(ro.protects(2, Eff::Ro, &Toy));
        assert!(
            !ro.protects(2, Eff::Rw, &Toy),
            "a read lock does not license writes"
        );
    }

    #[test]
    fn range_lock_covers_the_allocation() {
        let r = ConcreteLock::Range {
            base: 5,
            eff: Eff::Rw,
        };
        for l in 5..10 {
            assert!(r.protects(l, Eff::Rw, &Toy));
        }
        assert!(!r.covers(4, &Toy));
    }

    #[test]
    fn conflict_requires_overlap_and_a_writer() {
        let a = ConcreteLock::Cell {
            addr: 2,
            eff: Eff::Ro,
        };
        let b = ConcreteLock::Coarse {
            pts: PtsClass(0),
            eff: Eff::Ro,
        };
        let w = ConcreteLock::Coarse {
            pts: PtsClass(0),
            eff: Eff::Rw,
        };
        let far = ConcreteLock::Cell {
            addr: 9,
            eff: Eff::Rw,
        };
        assert!(
            !conflict(&a, &b, &UNIVERSE, &Toy),
            "two readers never conflict"
        );
        assert!(conflict(&a, &w, &UNIVERSE, &Toy));
        assert!(
            !conflict(&a, &far, &UNIVERSE, &Toy),
            "disjoint locks never conflict"
        );
    }

    #[test]
    fn coarser_matches_the_lattice() {
        let fine = ConcreteLock::Cell {
            addr: 2,
            eff: Eff::Ro,
        };
        let class = ConcreteLock::Coarse {
            pts: PtsClass(0),
            eff: Eff::Rw,
        };
        assert!(coarser(&class, &fine, &UNIVERSE, &Toy));
        assert!(!coarser(&fine, &class, &UNIVERSE, &Toy));
        assert!(coarser(&ConcreteLock::Global, &class, &UNIVERSE, &Toy));
    }
}
