//! # lockscheme — the lock formalism of §3
//!
//! This crate gives the paper's lock definitions executable form:
//!
//! * [`concrete`] — *concrete lock semantics* `[[l]] = (P, ε)`: which
//!   locations a lock protects, for which accesses. The interpreter's
//!   Validate mode uses this to check Theorem 1 empirically.
//! * [`scheme`] — *abstract lock schemes* `Σ = (L, ≤, ⊤, ·̄, +, *)` as a
//!   trait, with the paper's example instances: k-limited expression
//!   locks `Σ_k`, Steensgaard points-to locks `Σ≡`, read/write effect
//!   locks `Σ_ε`, field locks `Σ_i`, and Cartesian products.
//! * [`abslock`] — the *instantiated* scheme `Σ_k × Σ≡ × Σ_ε` used by
//!   the analysis implementation (§4.3), in the specialized tree-shaped
//!   representation the paper describes: a root `(⊤, ⊤)`, coarse
//!   points-to locks `(⊤, P)` below it, and fine expression locks
//!   `(e, P)` as leaves.
//! * [`intern`] — process-wide hash-consing of [`AbsLock`] terms: lock
//!   identity as a `u32`, `O(1)` lattice order on interned records, and
//!   memoized joins. The scalability substrate of the dataflow engine.

pub mod abslock;
pub mod concrete;
pub mod intern;
pub mod scheme;

pub use abslock::{AbsLock, ConfigMap, SchemeConfig};
pub use concrete::{ConcreteLock, LocationModel};
pub use intern::{LockId, LockInterner, LockRec};
pub use scheme::{EffScheme, FieldScheme, KExprScheme, Product, PtsScheme, Scheme};
