//! Global hash-consing of [`AbsLock`] terms.
//!
//! The dataflow engine's hot loop compares, stores, and copies abstract
//! locks millions of times on SPECint-sized programs. Hash-consing
//! makes every lock a `u32`: each distinct `AbsLock` (and each distinct
//! lock *path*) is stored exactly once in a process-wide table, so
//!
//! * lock equality is integer equality,
//! * the lattice order `≤` is a handful of integer compares on the
//!   interned components (path id, points-to class, effect) — no path
//!   walk, because syntactically equal paths share one id,
//! * the join `+`/`*` ops are memoized on id pairs,
//! * dataflow state can be a dense bitset over the lock universe.
//!
//! The table only grows (ids are never reused), so a [`LockRec`] copied
//! out of the interner stays valid forever; engines cache records and
//! `Arc<AbsLock>` handles locally and touch the shared `RwLock` only on
//! first sight of a lock. Interner ids are *names*, not semantics: two
//! processes (or two runs) may number locks differently, and nothing
//! downstream may depend on id order — the engine's outputs are sorted
//! structurally before they leave the analysis.

use crate::AbsLock;
use lir::{Eff, PathExpr};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Id of a hash-consed [`AbsLock`] in the global interner.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LockId(pub u32);

/// Sentinel for "component absent" (`⊤`) in a [`LockRec`].
pub const NONE: u32 = u32::MAX;

/// Compact, `Copy` shadow of one interned lock: enough to evaluate the
/// lattice order without touching the lock's path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockRec {
    /// Interned path id, or [`NONE`] for coarse/global locks.
    pub path: u32,
    /// Points-to class, or [`NONE`] for the global lock.
    pub pts: u32,
    /// Effect component.
    pub eff: Eff,
}

impl LockRec {
    /// The scheme order `≤` on interned records — componentwise, with
    /// [`NONE`] as the top of the path and points-to components.
    /// Agrees with [`AbsLock::leq`] by construction: equal paths have
    /// equal path ids and vice versa.
    #[inline]
    pub fn leq(self, other: LockRec) -> bool {
        (other.path == NONE || self.path == other.path)
            && (other.pts == NONE || self.pts == other.pts)
            && self.eff.leq(other.eff)
    }

    /// True for fine-grain expression locks.
    #[inline]
    pub fn is_fine(self) -> bool {
        self.path != NONE
    }
}

#[derive(Default)]
struct Inner {
    lock_ids: HashMap<AbsLock, u32>,
    locks: Vec<Arc<AbsLock>>,
    recs: Vec<LockRec>,
    path_ids: HashMap<PathExpr, u32>,
    join_memo: HashMap<(u32, u32), u32>,
}

/// The process-wide hash-consing table. See the module docs.
#[derive(Default)]
pub struct LockInterner {
    inner: RwLock<Inner>,
}

/// The global interner instance.
pub fn global() -> &'static LockInterner {
    static GLOBAL: OnceLock<LockInterner> = OnceLock::new();
    GLOBAL.get_or_init(LockInterner::default)
}

impl LockInterner {
    /// Interns `lock`, returning its id and compact record. Idempotent:
    /// structurally equal locks map to the same id forever.
    pub fn intern(&self, lock: &AbsLock) -> (LockId, LockRec) {
        if let Some(hit) = {
            let inner = self.inner.read().unwrap();
            inner
                .lock_ids
                .get(lock)
                .map(|&id| (LockId(id), inner.recs[id as usize]))
        } {
            return hit;
        }
        let mut inner = self.inner.write().unwrap();
        // Double-check: another thread may have interned it meanwhile.
        if let Some(&id) = inner.lock_ids.get(lock) {
            return (LockId(id), inner.recs[id as usize]);
        }
        let path = match &lock.path {
            None => NONE,
            Some(p) => match inner.path_ids.get(p) {
                Some(&pid) => pid,
                None => {
                    let pid = inner.path_ids.len() as u32;
                    inner.path_ids.insert(p.clone(), pid);
                    pid
                }
            },
        };
        let rec = LockRec {
            path,
            pts: lock.pts.map_or(NONE, |c| c.0),
            eff: lock.eff,
        };
        let id = inner.locks.len() as u32;
        inner.locks.push(Arc::new(lock.clone()));
        inner.recs.push(rec);
        inner.lock_ids.insert(lock.clone(), id);
        (LockId(id), rec)
    }

    /// The lock behind `id`. Panics on an id not minted by this
    /// interner (impossible for the global instance — ids are only ever
    /// obtained from [`LockInterner::intern`]).
    pub fn resolve(&self, id: LockId) -> Arc<AbsLock> {
        Arc::clone(&self.inner.read().unwrap().locks[id.0 as usize])
    }

    /// The compact record of `id`.
    pub fn rec(&self, id: LockId) -> LockRec {
        self.inner.read().unwrap().recs[id.0 as usize]
    }

    /// The lattice order on interned ids.
    pub fn leq(&self, a: LockId, b: LockId) -> bool {
        if a == b {
            return true;
        }
        let inner = self.inner.read().unwrap();
        inner.recs[a.0 as usize].leq(inner.recs[b.0 as usize])
    }

    /// The least upper bound of two interned locks, memoized on the
    /// (unordered) id pair.
    pub fn join(&self, a: LockId, b: LockId) -> LockId {
        if a == b {
            return a;
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if let Some(&id) = self.inner.read().unwrap().join_memo.get(&key) {
            return LockId(id);
        }
        let joined = {
            let inner = self.inner.read().unwrap();
            inner.locks[a.0 as usize].join(&inner.locks[b.0 as usize])
        };
        let (id, _) = self.intern(&joined);
        self.inner.write().unwrap().join_memo.insert(key, id.0);
        id
    }

    /// Number of distinct locks interned so far (process lifetime).
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().locks.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct lock paths interned so far.
    pub fn n_paths(&self) -> usize {
        self.inner.read().unwrap().path_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::{PathOp, VarId};
    use pointsto::PtsClass;

    fn fine(base: u32, ops: Vec<PathOp>, pts: u32, eff: Eff) -> AbsLock {
        AbsLock {
            path: Some(PathExpr {
                base: VarId(base),
                ops,
            }),
            pts: Some(PtsClass(pts)),
            eff,
        }
    }

    #[test]
    fn interning_is_idempotent_and_distinguishes() {
        let it = LockInterner::default();
        let a = fine(1, vec![PathOp::Deref], 3, Eff::Rw);
        let b = fine(1, vec![PathOp::Deref], 3, Eff::Ro);
        let (ia, _) = it.intern(&a);
        let (ia2, _) = it.intern(&a);
        let (ib, _) = it.intern(&b);
        assert_eq!(ia, ia2);
        assert_ne!(ia, ib);
        assert_eq!(*it.resolve(ia), a);
        assert_eq!(*it.resolve(ib), b);
        // Same path, different effect: one path entry, two locks.
        assert_eq!(it.n_paths(), 1);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn rec_leq_agrees_with_structural_leq() {
        let it = LockInterner::default();
        let samples = [
            AbsLock::global(),
            AbsLock::coarse(PtsClass(3), Eff::Rw),
            AbsLock::coarse(PtsClass(3), Eff::Ro),
            AbsLock::coarse(PtsClass(4), Eff::Rw),
            fine(1, vec![PathOp::Deref], 3, Eff::Rw),
            fine(1, vec![PathOp::Deref], 3, Eff::Ro),
            fine(2, vec![], 3, Eff::Rw),
            fine(1, vec![PathOp::Deref, PathOp::Deref], 4, Eff::Rw),
        ];
        let ids: Vec<(LockId, LockRec)> = samples.iter().map(|l| it.intern(l)).collect();
        for (i, x) in samples.iter().enumerate() {
            for (j, y) in samples.iter().enumerate() {
                assert_eq!(
                    ids[i].1.leq(ids[j].1),
                    x.leq(y),
                    "leq mismatch between {x} and {y}"
                );
                assert_eq!(it.leq(ids[i].0, ids[j].0), x.leq(y));
            }
        }
    }

    #[test]
    fn join_is_memoized_and_structural() {
        let it = LockInterner::default();
        let a = fine(1, vec![PathOp::Deref], 3, Eff::Ro);
        let b = fine(1, vec![PathOp::Deref], 3, Eff::Rw);
        let c = fine(2, vec![PathOp::Deref], 3, Eff::Rw);
        let (ia, _) = it.intern(&a);
        let (ib, _) = it.intern(&b);
        let (ic, _) = it.intern(&c);
        // Same path: join keeps it, lifting the effect.
        assert_eq!(*it.resolve(it.join(ia, ib)), a.join(&b));
        assert_eq!(it.join(ia, ib), it.join(ib, ia), "memo is unordered");
        // Different paths, same class: coarse lock.
        let j = it.resolve(it.join(ib, ic));
        assert!(j.path.is_none());
        assert_eq!(j.pts, Some(PtsClass(3)));
        assert_eq!(it.join(ia, ia), ia);
    }

    #[test]
    fn global_interner_is_shared_across_threads() {
        let lock = fine(7, vec![PathOp::Deref], 1, Eff::Rw);
        let ids: Vec<LockId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| global().intern(&lock).0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
