//! Abstract lock schemes (§3.3) as a trait, with the paper's example
//! instances.
//!
//! A scheme `Σ = (L, ≤, ⊤, ·̄, +, *)` is a bounded join-semilattice of
//! lock names together with three operators that build the lock `ê`
//! protecting the value of any expression `e`:
//!
//! ```text
//! x̂ = x̄        ê+i = ê + i        *̂e = * ê
//! ```
//!
//! The trait below mirrors that signature. Program points are omitted:
//! all instances here (like all instances in the paper) are
//! point-independent. The analysis in `lockinfer` is specialized to the
//! product `Σ_k × Σ≡ × Σ_ε` (see [`crate::abslock`]); this module is the
//! general framework it instantiates, used directly by tests and the
//! scheme-playground example.

use lir::{Eff, FieldId, PathExpr, PathOp, VarId};
use pointsto::{PointsTo, PtsClass};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// An abstract lock scheme.
pub trait Scheme {
    /// The lock-name domain `L`.
    type Lock: Clone + Eq + Hash + Debug;

    /// The top element `⊤` (a global lock).
    fn top(&self) -> Self::Lock;

    /// The partial order `≤`; `a ≤ b` means `b` is coarser.
    fn leq(&self, a: &Self::Lock, b: &Self::Lock) -> bool;

    /// Least upper bound.
    fn join(&self, a: &Self::Lock, b: &Self::Lock) -> Self::Lock;

    /// `x̄^ε` — the lock protecting the address of variable `x`.
    fn var(&self, x: VarId, eff: Eff) -> Self::Lock;

    /// `l +^ε i` — the lock protecting field `i` of locations protected
    /// by `l`.
    fn field(&self, l: &Self::Lock, f: FieldId, eff: Eff) -> Self::Lock;

    /// `*^ε l` — the lock protecting locations pointed to by locations
    /// protected by `l`.
    fn deref(&self, l: &Self::Lock, eff: Eff) -> Self::Lock;

    /// `l +^ε [?]` — offset by a dynamic amount the scheme cannot name.
    /// Defaults to `⊤`, the always-sound answer; schemes for which any
    /// offset stays in place override it.
    fn index(&self, l: &Self::Lock, eff: Eff) -> Self::Lock {
        let _ = (l, eff);
        self.top()
    }

    /// The derived `ê` construction for a whole path expression: all
    /// subexpressions take `ro`, the outermost step takes `eff`.
    fn path(&self, p: &PathExpr, eff: Eff) -> Self::Lock {
        let mut lock = self.var(p.base, if p.ops.is_empty() { eff } else { Eff::Ro });
        for (i, op) in p.ops.iter().enumerate() {
            let e = if i + 1 == p.ops.len() { eff } else { Eff::Ro };
            lock = match op {
                PathOp::Deref => self.deref(&lock, e),
                // The formal schemes of §3.3 model all offsets as
                // abstract fields; a symbolic index behaves like one
                // whose identity is unknown, so we use the top of the
                // field dimension by passing a fresh-ish marker — the
                // schemes here are field-insensitive except Σ_i, which
                // treats unknown offsets as ⊤ via `deref`-like loss.
                PathOp::Field(f) => self.field(&lock, *f, e),
                PathOp::Index(_) => self.index(&lock, e),
            };
        }
        lock
    }
}

/// `Σ_k` — expression locks with k-limiting. `None` is `⊤`.
#[derive(Clone, Copy, Debug)]
pub struct KExprScheme {
    pub k: usize,
}

impl Scheme for KExprScheme {
    type Lock = Option<PathExpr>;

    fn top(&self) -> Self::Lock {
        None
    }

    fn leq(&self, a: &Self::Lock, b: &Self::Lock) -> bool {
        b.is_none() || a == b
    }

    fn join(&self, a: &Self::Lock, b: &Self::Lock) -> Self::Lock {
        if a == b {
            a.clone()
        } else {
            None
        }
    }

    fn var(&self, x: VarId, _eff: Eff) -> Self::Lock {
        // A bare variable lock has length 1 (k = 0 admits no expression
        // locks at all, matching the implementation and Figure 7).
        if self.k >= 1 {
            Some(PathExpr::var(x))
        } else {
            None
        }
    }

    fn field(&self, l: &Self::Lock, f: FieldId, _eff: Eff) -> Self::Lock {
        self.extend(l, PathOp::Field(f))
    }

    fn deref(&self, l: &Self::Lock, _eff: Eff) -> Self::Lock {
        self.extend(l, PathOp::Deref)
    }
}

impl KExprScheme {
    fn extend(&self, l: &Option<PathExpr>, op: PathOp) -> Option<PathExpr> {
        let mut p = l.clone()?;
        p.ops.push(op);
        if p.len() > self.k {
            None
        } else {
            Some(p)
        }
    }
}

/// `Σ≡` — locks from a unification-based points-to analysis. `None` is
/// `⊤`. Field offsets stay in the same class; dereferences follow the
/// class's points-to edge (to `⊤` when there is none).
#[derive(Clone, Copy, Debug)]
pub struct PtsScheme<'a> {
    pub pt: &'a PointsTo,
}

impl Scheme for PtsScheme<'_> {
    type Lock = Option<PtsClass>;

    fn top(&self) -> Self::Lock {
        None
    }

    fn leq(&self, a: &Self::Lock, b: &Self::Lock) -> bool {
        b.is_none() || a == b
    }

    fn join(&self, a: &Self::Lock, b: &Self::Lock) -> Self::Lock {
        if a == b {
            *a
        } else {
            None
        }
    }

    fn var(&self, x: VarId, _eff: Eff) -> Self::Lock {
        Some(self.pt.class_of_var(x))
    }

    fn field(&self, l: &Self::Lock, _f: FieldId, _eff: Eff) -> Self::Lock {
        *l
    }

    fn deref(&self, l: &Self::Lock, _eff: Eff) -> Self::Lock {
        l.and_then(|c| self.pt.deref(c))
    }

    fn index(&self, l: &Self::Lock, _eff: Eff) -> Self::Lock {
        *l
    }
}

/// `Σ_ε` — the two-lock scheme that tracks only access effects.
#[derive(Clone, Copy, Debug, Default)]
pub struct EffScheme;

impl Scheme for EffScheme {
    type Lock = Eff;

    fn top(&self) -> Self::Lock {
        Eff::Rw
    }

    fn leq(&self, a: &Self::Lock, b: &Self::Lock) -> bool {
        a.leq(*b)
    }

    fn join(&self, a: &Self::Lock, b: &Self::Lock) -> Self::Lock {
        a.join(*b)
    }

    fn var(&self, _x: VarId, eff: Eff) -> Self::Lock {
        eff
    }

    fn field(&self, _l: &Self::Lock, _f: FieldId, eff: Eff) -> Self::Lock {
        eff
    }

    fn deref(&self, _l: &Self::Lock, eff: Eff) -> Self::Lock {
        eff
    }

    fn index(&self, _l: &Self::Lock, eff: Eff) -> Self::Lock {
        eff
    }
}

/// `Σ_i` — field-based locks: a location is protected by the offset at
/// which it is accessed. `None` is `⊤ = F`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FieldScheme;

impl Scheme for FieldScheme {
    type Lock = Option<BTreeSet<FieldId>>;

    fn top(&self) -> Self::Lock {
        None
    }

    fn leq(&self, a: &Self::Lock, b: &Self::Lock) -> bool {
        match (a, b) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(x), Some(y)) => x.is_subset(y),
        }
    }

    fn join(&self, a: &Self::Lock, b: &Self::Lock) -> Self::Lock {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.union(y).copied().collect()),
            _ => None,
        }
    }

    fn var(&self, _x: VarId, _eff: Eff) -> Self::Lock {
        None
    }

    fn field(&self, _l: &Self::Lock, f: FieldId, _eff: Eff) -> Self::Lock {
        Some(BTreeSet::from([f]))
    }

    fn deref(&self, _l: &Self::Lock, _eff: Eff) -> Self::Lock {
        None
    }
}

/// Cartesian product of two schemes (§3.3): if both factors are sound
/// approximations, so is the product.
#[derive(Clone, Copy, Debug)]
pub struct Product<A, B>(pub A, pub B);

impl<A: Scheme, B: Scheme> Scheme for Product<A, B> {
    type Lock = (A::Lock, B::Lock);

    fn top(&self) -> Self::Lock {
        (self.0.top(), self.1.top())
    }

    fn leq(&self, a: &Self::Lock, b: &Self::Lock) -> bool {
        self.0.leq(&a.0, &b.0) && self.1.leq(&a.1, &b.1)
    }

    fn join(&self, a: &Self::Lock, b: &Self::Lock) -> Self::Lock {
        (self.0.join(&a.0, &b.0), self.1.join(&a.1, &b.1))
    }

    fn var(&self, x: VarId, eff: Eff) -> Self::Lock {
        (self.0.var(x, eff), self.1.var(x, eff))
    }

    fn field(&self, l: &Self::Lock, f: FieldId, eff: Eff) -> Self::Lock {
        (self.0.field(&l.0, f, eff), self.1.field(&l.1, f, eff))
    }

    fn deref(&self, l: &Self::Lock, eff: Eff) -> Self::Lock {
        (self.0.deref(&l.0, eff), self.1.deref(&l.1, eff))
    }

    fn index(&self, l: &Self::Lock, eff: Eff) -> Self::Lock {
        (self.0.index(&l.0, eff), self.1.index(&l.1, eff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_locks<S: Scheme>(s: &S, paths: &[PathExpr]) -> Vec<S::Lock> {
        let mut out = vec![s.top()];
        for p in paths {
            out.push(s.path(p, Eff::Ro));
            out.push(s.path(p, Eff::Rw));
        }
        out
    }

    fn check_lattice_laws<S: Scheme>(s: &S, locks: &[S::Lock]) {
        for a in locks {
            assert!(s.leq(a, a), "reflexive");
            assert!(s.leq(a, &s.top()), "top is greatest");
            for b in locks {
                let j = s.join(a, b);
                assert!(s.leq(a, &j) && s.leq(b, &j), "join is an upper bound");
                assert_eq!(s.join(a, b), s.join(b, a), "join commutes");
                if s.leq(a, b) && s.leq(b, a) {
                    assert_eq!(a, b, "antisymmetric");
                }
                for c in locks {
                    if s.leq(a, b) && s.leq(b, c) {
                        assert!(s.leq(a, c), "transitive");
                    }
                    if s.leq(a, c) && s.leq(b, c) {
                        assert!(s.leq(&j, c), "join is least");
                    }
                }
            }
        }
    }

    fn fixtures() -> (lir::Program, PointsTo, Vec<PathExpr>) {
        let p = lir::compile(
            "struct s { f; g; }
             fn main(a, b) { let x = a->f; let y = b->g; let z = *x; }",
        )
        .unwrap();
        let pt = PointsTo::analyze(&p);
        let a = p.functions[0].params[0];
        let b = p.functions[0].params[1];
        let f = FieldId(
            p.fields
                .iter()
                .position(|fi| p.interner.resolve(fi.name) == "f")
                .unwrap() as u32,
        );
        let paths = vec![
            PathExpr::var(a),
            PathExpr::var(b),
            PathExpr {
                base: a,
                ops: vec![PathOp::Deref],
            },
            PathExpr {
                base: a,
                ops: vec![PathOp::Deref, PathOp::Field(f)],
            },
            PathExpr {
                base: b,
                ops: vec![PathOp::Deref, PathOp::Field(f), PathOp::Deref],
            },
        ];
        (p, pt, paths)
    }

    #[test]
    fn kexpr_lattice_laws() {
        let (_, _, paths) = fixtures();
        let s = KExprScheme { k: 2 };
        check_lattice_laws(&s, &sample_locks(&s, &paths));
    }

    #[test]
    fn kexpr_limits_length() {
        let (_, _, paths) = fixtures();
        let s = KExprScheme { k: 2 };
        // The length-3 path exceeds k=2 and becomes ⊤.
        assert_eq!(s.path(&paths[4], Eff::Rw), None);
        assert!(s.path(&paths[3], Eff::Rw).is_some());
        let s0 = KExprScheme { k: 0 };
        assert_eq!(
            s0.path(&paths[0], Eff::Rw),
            None,
            "x̄ has length 1: k=0 is all-coarse"
        );
        assert_eq!(s0.path(&paths[2], Eff::Rw), None);
        let s1 = KExprScheme { k: 1 };
        assert!(s1.path(&paths[0], Eff::Rw).is_some());
    }

    #[test]
    fn pts_lattice_laws_and_edges() {
        let (_, pt, paths) = fixtures();
        let s = PtsScheme { pt: &pt };
        check_lattice_laws(&s, &sample_locks(&s, &paths));
        // Field offsets stay in the class; derefs move along edges.
        let la = s.path(&paths[2], Eff::Rw);
        let lf = s.path(&paths[3], Eff::Rw);
        assert_eq!(la, lf);
    }

    #[test]
    fn eff_scheme_is_the_two_point_lattice() {
        let (_, _, paths) = fixtures();
        let s = EffScheme;
        check_lattice_laws(&s, &sample_locks(&s, &paths));
        assert_eq!(s.path(&paths[3], Eff::Ro), Eff::Ro);
        assert_eq!(s.path(&paths[3], Eff::Rw), Eff::Rw);
    }

    #[test]
    fn field_scheme_tracks_offsets() {
        let (p, _, paths) = fixtures();
        let s = FieldScheme;
        check_lattice_laws(&s, &sample_locks(&s, &paths));
        let f = FieldId(
            p.fields
                .iter()
                .position(|fi| p.interner.resolve(fi.name) == "f")
                .unwrap() as u32,
        );
        assert_eq!(s.path(&paths[3], Eff::Rw), Some(BTreeSet::from([f])));
        // A trailing deref forgets the field.
        assert_eq!(s.path(&paths[4], Eff::Rw), None);
    }

    #[test]
    fn product_composes_soundly() {
        let (_, pt, paths) = fixtures();
        let s = Product(
            KExprScheme { k: 3 },
            Product(PtsScheme { pt: &pt }, EffScheme),
        );
        check_lattice_laws(&s, &sample_locks(&s, &paths));
        let l = s.path(&paths[3], Eff::Ro);
        assert!(l.0.is_some(), "expression component survives k=3");
        assert!(l.1 .0.is_some(), "pts component tracks the class");
        assert_eq!(l.1 .1, Eff::Ro);
    }

    #[test]
    fn path_gives_subexpressions_ro() {
        // ê protects subexpressions for reads only: for the effect
        // scheme, the last step's effect is what survives.
        let (_, _, paths) = fixtures();
        let s = EffScheme;
        assert_eq!(s.path(&paths[4], Eff::Rw), Eff::Rw);
    }
}
