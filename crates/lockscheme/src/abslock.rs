//! The instantiated abstract lock scheme `Σ_k × Σ≡ × Σ_ε`.
//!
//! The paper's implementation observes (§4.3) that of all pairs in the
//! Cartesian product, only locks of the shapes `(⊤, ⊤)`, `(⊤, P)`, and
//! `(e, P)` with `P` the points-to class of `e` ever arise: the lattice
//! degenerates to a *tree*. [`AbsLock`] encodes exactly that tree, with
//! the effect component alongside.

use lir::{Eff, LockSpec, PathExpr, PathOp};
use pointsto::{PointsTo, PtsClass};
use std::fmt;

/// One lock of the instantiated scheme.
///
/// * `path = Some(e), pts = Some(P)` — fine-grain expression lock
///   `(e, P, ε)`;
/// * `path = None, pts = Some(P)` — coarse points-to lock `(⊤, P, ε)`;
/// * `path = None, pts = None` — the global lock `⊤` (always `rw`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AbsLock {
    pub path: Option<PathExpr>,
    pub pts: Option<PtsClass>,
    pub eff: Eff,
}

impl AbsLock {
    /// The global lock `⊤ = (Loc, rw)`.
    pub fn global() -> AbsLock {
        AbsLock {
            path: None,
            pts: None,
            eff: Eff::Rw,
        }
    }

    /// The coarse lock `(⊤, P, ε)` protecting a points-to partition.
    pub fn coarse(pts: PtsClass, eff: Eff) -> AbsLock {
        AbsLock {
            path: None,
            pts: Some(pts),
            eff,
        }
    }

    /// A fine expression lock, with its points-to component derived
    /// from the expression (the only pairing that protects anything).
    ///
    /// Returns `None` when the path's points-to class does not exist —
    /// the expression can only evaluate through a null dereference, so
    /// there is no location to protect (such runs fault before the
    /// access).
    pub fn fine(path: PathExpr, eff: Eff, pt: &PointsTo) -> Option<AbsLock> {
        let pts = pt.class_of_path(&path)?;
        Some(AbsLock {
            path: Some(path),
            pts: Some(pts),
            eff,
        })
    }

    /// True for the global lock.
    pub fn is_global(&self) -> bool {
        self.path.is_none() && self.pts.is_none()
    }

    /// True for fine-grain expression locks.
    pub fn is_fine(&self) -> bool {
        self.path.is_some()
    }

    /// The partial order `≤` of the scheme: componentwise, with `None`
    /// as the top of the `Σ_k` and `Σ≡` components.
    pub fn leq(&self, other: &AbsLock) -> bool {
        let path_leq = match (&self.path, &other.path) {
            (_, None) => true,
            (Some(a), Some(b)) => a == b,
            (None, Some(_)) => false,
        };
        let pts_leq = match (&self.pts, &other.pts) {
            (_, None) => true,
            (Some(a), Some(b)) => a == b,
            (None, Some(_)) => false,
        };
        path_leq && pts_leq && self.eff.leq(other.eff)
    }

    /// Least upper bound in the scheme lattice.
    pub fn join(&self, other: &AbsLock) -> AbsLock {
        let path = match (&self.path, &other.path) {
            (Some(a), Some(b)) if a == b => Some(a.clone()),
            _ => None,
        };
        let pts = match (&self.pts, &other.pts) {
            (Some(a), Some(b)) if a == b => Some(*a),
            _ => None,
        };
        // If the paths differ the expression component is ⊤; the pts
        // component may still agree and is kept either way.
        AbsLock {
            path,
            pts,
            eff: self.eff.join(other.eff),
        }
    }

    /// Conversion to the transformed-program representation.
    pub fn to_spec(&self) -> LockSpec {
        match (&self.path, &self.pts) {
            (None, None) => LockSpec::Global,
            (None, Some(p)) => LockSpec::Coarse {
                pts: p.0,
                eff: self.eff,
            },
            (Some(e), Some(p)) => LockSpec::Fine {
                path: e.clone(),
                pts: p.0,
                eff: self.eff,
            },
            (Some(_), None) => unreachable!("fine locks always carry a points-to class"),
        }
    }
}

/// Configuration of the analysis' lock scheme — the knob set used for
/// Table 1 / Figure 7 (`k`) and for the ablation bench (component
/// toggles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Expression length bound of `Σ_k`.
    pub k: usize,
    /// Use the expression component (`Σ_k`); off = always ⊤.
    pub use_expr: bool,
    /// Use the points-to component (`Σ≡`); off = always ⊤.
    pub use_pts: bool,
    /// Use the effect component (`Σ_ε`); off = always `rw`.
    pub use_eff: bool,
    /// The dynamic `[]` pseudo-field of the program, if any.
    pub elem_field: Option<lir::FieldId>,
}

impl SchemeConfig {
    /// The paper's full product scheme with expression bound `k`.
    pub fn full(k: usize, elem_field: Option<lir::FieldId>) -> SchemeConfig {
        SchemeConfig {
            k,
            use_expr: true,
            use_pts: true,
            use_eff: true,
            elem_field,
        }
    }

    /// The trivially sound degraded scheme the sentinel's quarantine
    /// ladder demotes an offending section to: with the expression and
    /// points-to components both off, every lock normalizes to the
    /// global lock at effect `rw`, so any execution of the section is
    /// licensed by construction while it serves its probation.
    pub fn trivially_sound(elem_field: Option<lir::FieldId>) -> SchemeConfig {
        SchemeConfig {
            k: 0,
            use_expr: false,
            use_pts: false,
            use_eff: false,
            elem_field,
        }
    }

    /// True when this configuration is the [`SchemeConfig::
    /// trivially_sound`] degraded point (ignoring `elem_field`, which
    /// is program metadata, not a scheme component).
    pub fn is_trivially_sound(&self) -> bool {
        !self.use_expr && !self.use_pts && !self.use_eff
    }

    /// Applies component toggles and representation invariants.
    /// Returns `None` when the lock provably protects no location.
    pub fn normalize(&self, mut lock: AbsLock, pt: &PointsTo) -> Option<AbsLock> {
        if !self.use_eff {
            lock.eff = Eff::Rw;
        }
        if !self.use_expr {
            if let Some(path) = lock.path.take() {
                lock.pts = pt.class_of_path(&path);
                lock.pts?;
            }
        }
        let lock = self.limit(lock, pt)?;
        let mut lock = lock;
        if !self.use_pts {
            lock.pts = None;
            // Without the points-to component a promoted expression
            // becomes the global lock.
            if lock.path.is_none() {
                lock.eff = if self.use_eff { lock.eff } else { Eff::Rw };
            }
        }
        Some(lock)
    }

    /// k-limiting + evaluability demotion (see [`AbsLock::normalize`]),
    /// with this config's dynamic-field knowledge.
    fn limit(&self, lock: AbsLock, pt: &PointsTo) -> Option<AbsLock> {
        let Some(path) = &lock.path else {
            return Some(lock);
        };
        let evaluable = path.ops.iter().enumerate().all(|(i, op)| match op {
            // The anonymous `[]` offset covers *all* elements, so it can
            // only be the final step (the runtime locks the whole
            // array). A named dynamic index is evaluable anywhere.
            PathOp::Field(f) => Some(*f) != self.elem_field || i + 1 == path.ops.len(),
            PathOp::Deref | PathOp::Index(_) => true,
        });
        let class = pt.class_of_path(path)?;
        // Expression length counts the base variable plus every offset
        // and dereference — so `x̄` has length 1 and k = 0 yields only
        // coarse locks (Figure 7's first column), while a chain of three
        // dereferences and three offsets has length 7 > 6 only with the
        // base included; the paper's "many expressions with 3 heap
        // dereferences may have length k = 6" counts ops only, so we
        // charge the base at 1 but keep ops as the dominant term.
        let length = path.ops.len().max(1);
        if length > self.k || !evaluable {
            Some(AbsLock {
                path: None,
                pts: Some(class),
                eff: lock.eff,
            })
        } else {
            Some(AbsLock {
                path: lock.path,
                pts: Some(class),
                eff: lock.eff,
            })
        }
    }
}

/// Per-section scheme configuration: one global default plus overrides
/// for individual static sections.
///
/// The paper picks a single `Σ_k × Σ≡ × Σ_ε` point for the whole
/// program; §6 shows no single point wins everywhere. The adaptive
/// loop (`lockinfer::adapt`) instead assigns each section the
/// configuration its measured contention profile asks for, and the
/// engine runs one shared Phase A summary pass per *distinct* config
/// so candidate maps stay affordable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigMap {
    /// The configuration of every section without an override.
    pub default: SchemeConfig,
    /// Per-section overrides, sorted by section id.
    overrides: Vec<(u32, SchemeConfig)>,
}

impl ConfigMap {
    /// A map assigning `default` to every section (the paper's global
    /// single-config setting).
    pub fn uniform(default: SchemeConfig) -> ConfigMap {
        ConfigMap {
            default,
            overrides: Vec::new(),
        }
    }

    /// Sets (or replaces) the configuration of one section. An
    /// override equal to the default is dropped, keeping the map
    /// canonical: two maps with the same effective assignment compare
    /// equal.
    pub fn set_override(&mut self, section: u32, cfg: SchemeConfig) {
        match self.overrides.binary_search_by_key(&section, |&(s, _)| s) {
            Ok(i) => {
                if cfg == self.default {
                    self.overrides.remove(i);
                } else {
                    self.overrides[i].1 = cfg;
                }
            }
            Err(i) => {
                if cfg != self.default {
                    self.overrides.insert(i, (section, cfg));
                }
            }
        }
    }

    /// The effective configuration of `section`.
    pub fn for_section(&self, section: u32) -> SchemeConfig {
        match self.overrides.binary_search_by_key(&section, |&(s, _)| s) {
            Ok(i) => self.overrides[i].1,
            Err(_) => self.default,
        }
    }

    /// The overrides, sorted by section id.
    pub fn overrides(&self) -> &[(u32, SchemeConfig)] {
        &self.overrides
    }

    /// Quarantines `section`: overrides its configuration with the
    /// [`SchemeConfig::trivially_sound`] degraded scheme (preserving
    /// the default's `elem_field`). The sentinel's offline corrective
    /// path — re-inferring under the demoted map yields a section whose
    /// every lock is the global lock.
    pub fn demote_to_global(&mut self, section: u32) {
        self.set_override(
            section,
            SchemeConfig::trivially_sound(self.default.elem_field),
        );
    }

    /// Lifts a [`ConfigMap::demote_to_global`] demotion: the section
    /// returns to the map's default configuration (the canonical form
    /// drops the override entirely).
    pub fn restore(&mut self, section: u32) {
        self.set_override(section, self.default);
    }

    /// Every distinct configuration the map can assign, default first,
    /// in deterministic (first-use) order — one Phase A summary pass
    /// runs per entry.
    pub fn distinct_configs(&self) -> Vec<SchemeConfig> {
        let mut out = vec![self.default];
        for &(_, cfg) in &self.overrides {
            if !out.contains(&cfg) {
                out.push(cfg);
            }
        }
        out
    }
}

impl From<SchemeConfig> for ConfigMap {
    fn from(default: SchemeConfig) -> ConfigMap {
        ConfigMap::uniform(default)
    }
}

impl fmt::Display for AbsLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.path, &self.pts) {
            (None, None) => write!(f, "⊤[{}]", self.eff),
            (None, Some(p)) => write!(f, "(⊤, {:?})[{}]", p, self.eff),
            (Some(e), Some(p)) => write!(f, "({:?}, {:?})[{}]", e, p, self.eff),
            (Some(e), None) => write!(f, "({:?}, ⊤)[{}]", e, self.eff),
        }
    }
}

/// Removes redundant locks: the merge of §4.1 keeps only locks not
/// strictly below another lock in the set (`N1 ⊔ N2` drops `l` when
/// `l < l'` for some `l'` in the union).
pub fn prune_redundant(locks: &mut Vec<AbsLock>) {
    locks.sort();
    locks.dedup();
    let snapshot = locks.clone();
    // `l < l'` ⟺ `l ≤ l' ∧ l ≠ l'` (≤ is antisymmetric).
    locks.retain(|l| !snapshot.iter().any(|l2| l != l2 && l.leq(l2)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::{PathOp, VarId};

    fn pt_for(src: &str) -> (lir::Program, PointsTo) {
        let p = lir::compile(src).unwrap();
        let pts = PointsTo::analyze(&p);
        (p, pts)
    }

    fn path(base: VarId, ops: Vec<PathOp>) -> PathExpr {
        PathExpr { base, ops }
    }

    #[test]
    fn global_is_top() {
        let (_, pt) = pt_for("fn main(a) { let b = *a; }");
        let g = AbsLock::global();
        let fine = AbsLock::fine(path(VarId(1), vec![]), Eff::Ro, &pt).unwrap();
        assert!(fine.leq(&g));
        assert!(!g.leq(&fine));
        assert_eq!(fine.join(&g), g);
    }

    #[test]
    fn coarse_dominates_its_fine_locks() {
        let (p, pt) = pt_for("fn main(a) { let b = *a; }");
        let a = p.functions[0].params[0];
        let fine = AbsLock::fine(path(a, vec![PathOp::Deref]), Eff::Rw, &pt).unwrap();
        let coarse = AbsLock::coarse(fine.pts.unwrap(), Eff::Rw);
        assert!(fine.leq(&coarse));
        assert!(!coarse.leq(&fine));
        // A coarse lock of a different class is incomparable.
        let other = AbsLock::coarse(PtsClass(fine.pts.unwrap().0 + 1), Eff::Rw);
        assert!(!fine.leq(&other));
    }

    #[test]
    fn effects_order_locks() {
        let (p, pt) = pt_for("fn main(a) { let b = *a; }");
        let a = p.functions[0].params[0];
        let ro = AbsLock::fine(path(a, vec![]), Eff::Ro, &pt).unwrap();
        let rw = AbsLock::fine(path(a, vec![]), Eff::Rw, &pt).unwrap();
        assert!(ro.leq(&rw));
        assert!(!rw.leq(&ro));
        assert_eq!(ro.join(&rw).eff, Eff::Rw);
    }

    #[test]
    fn join_is_lub_on_samples() {
        let (p, pt) = pt_for("fn main(a, c) { let b = *a; let d = *c; }");
        let a = p.functions[0].params[0];
        let c = p.functions[0].params[1];
        let samples = vec![
            AbsLock::global(),
            AbsLock::fine(path(a, vec![]), Eff::Ro, &pt).unwrap(),
            AbsLock::fine(path(a, vec![]), Eff::Rw, &pt).unwrap(),
            AbsLock::fine(path(c, vec![]), Eff::Rw, &pt).unwrap(),
            AbsLock::fine(path(a, vec![PathOp::Deref]), Eff::Rw, &pt).unwrap(),
        ];
        for x in &samples {
            for y in &samples {
                let j = x.join(y);
                assert!(
                    x.leq(&j) && y.leq(&j),
                    "join is an upper bound: {x} {y} -> {j}"
                );
                assert_eq!(x.join(y), y.join(x), "join commutes");
                for z in &samples {
                    if x.leq(z) && y.leq(z) {
                        assert!(j.leq(z), "join is least: {x}⊔{y}={j} vs {z}");
                    }
                }
            }
        }
    }

    #[test]
    fn k_limit_promotes_to_coarse() {
        let (p, pt) =
            pt_for("struct s { f; } fn main(a) { let b = a->f; let c = b->f; let d = c->f; }");
        let a = p.functions[0].params[0];
        let f = lir::FieldId(
            p.fields
                .iter()
                .position(|fi| p.interner.resolve(fi.name) == "f")
                .unwrap() as u32,
        );
        let long = path(
            a,
            vec![
                PathOp::Deref,
                PathOp::Field(f),
                PathOp::Deref,
                PathOp::Field(f),
            ],
        );
        let lock = AbsLock::fine(long.clone(), Eff::Rw, &pt).unwrap();
        let cfg3 = SchemeConfig::full(3, p.elem_field_opt());
        let n = cfg3.normalize(lock.clone(), &pt).unwrap();
        assert!(n.path.is_none(), "length-4 path exceeds k=3");
        assert_eq!(n.pts, lock.pts);
        let cfg9 = SchemeConfig::full(9, p.elem_field_opt());
        let n9 = cfg9.normalize(lock.clone(), &pt).unwrap();
        assert_eq!(n9.path, Some(long));
    }

    #[test]
    fn dynamic_field_mid_path_demotes() {
        let (p, pt) = pt_for("fn main(a, i) { let b = a[i]; let c = *b; }");
        let a = p.functions[0].params[0];
        let elem = p.elem_field_opt().unwrap();
        let cfg = SchemeConfig::full(9, Some(elem));
        // &a[i] — elem in final position: stays fine.
        let tail = AbsLock::fine(
            path(a, vec![PathOp::Deref, PathOp::Field(elem)]),
            Eff::Rw,
            &pt,
        )
        .unwrap();
        let n = cfg.normalize(tail, &pt).unwrap();
        assert!(n.path.is_some());
        // *(a[i]) — elem mid-path: demoted to coarse.
        let mid = AbsLock::fine(
            path(a, vec![PathOp::Deref, PathOp::Field(elem), PathOp::Deref]),
            Eff::Rw,
            &pt,
        )
        .unwrap();
        let n = cfg.normalize(mid, &pt).unwrap();
        assert!(n.path.is_none());
        assert!(n.pts.is_some());
    }

    #[test]
    fn null_only_locks_vanish() {
        let (p, pt) = pt_for("fn main() { let x = null; }");
        let x = p.functions[0].locals[0];
        assert!(AbsLock::fine(path(x, vec![PathOp::Deref]), Eff::Rw, &pt).is_none());
    }

    #[test]
    fn ablation_toggles() {
        let (p, pt) = pt_for("fn main(a) { let b = *a; }");
        let a = p.functions[0].params[0];
        let fine = AbsLock::fine(path(a, vec![PathOp::Deref]), Eff::Ro, &pt).unwrap();
        let mut cfg = SchemeConfig::full(9, None);
        cfg.use_eff = false;
        assert_eq!(cfg.normalize(fine.clone(), &pt).unwrap().eff, Eff::Rw);
        let mut cfg = SchemeConfig::full(9, None);
        cfg.use_expr = false;
        let n = cfg.normalize(fine.clone(), &pt).unwrap();
        assert!(n.path.is_none() && n.pts.is_some());
        let mut cfg = SchemeConfig::full(9, None);
        cfg.use_pts = false;
        cfg.use_expr = false;
        let n = cfg.normalize(fine, &pt).unwrap();
        assert!(n.is_global() || n.eff == Eff::Ro); // pts gone; path gone
        assert!(n.pts.is_none() && n.path.is_none());
    }

    #[test]
    fn trivially_sound_config_normalizes_everything_to_global() {
        let (p, pt) = pt_for("fn main(a) { let b = *a; }");
        let a = p.functions[0].params[0];
        let cfg = SchemeConfig::trivially_sound(None);
        assert!(cfg.is_trivially_sound());
        assert!(!SchemeConfig::full(9, None).is_trivially_sound());
        for eff in [Eff::Ro, Eff::Rw] {
            let fine = AbsLock::fine(path(a, vec![PathOp::Deref]), eff, &pt).unwrap();
            let n = cfg.normalize(fine, &pt).unwrap();
            assert!(n.is_global(), "demoted lock must be the global lock: {n}");
            assert_eq!(n.eff, Eff::Rw, "the effect component is off");
        }
    }

    #[test]
    fn demote_and_restore_keep_the_map_canonical() {
        let base = SchemeConfig::full(9, None);
        let mut map = ConfigMap::uniform(base);
        map.demote_to_global(4);
        assert!(map.for_section(4).is_trivially_sound());
        assert_eq!(map.for_section(3), base, "other sections are untouched");
        assert_eq!(map.overrides().len(), 1);
        // Demoting twice is idempotent.
        map.demote_to_global(4);
        assert_eq!(map.overrides().len(), 1);
        // Restoring drops the override entirely (canonical form).
        map.restore(4);
        assert_eq!(map, ConfigMap::uniform(base));
        // Restoring a never-demoted section is a no-op.
        map.restore(9);
        assert_eq!(map.overrides().len(), 0);
    }

    #[test]
    fn prune_keeps_maximal_locks() {
        let (p, pt) = pt_for("fn main(a) { let b = *a; }");
        let a = p.functions[0].params[0];
        let fine_ro = AbsLock::fine(path(a, vec![PathOp::Deref]), Eff::Ro, &pt).unwrap();
        let fine_rw = AbsLock::fine(path(a, vec![PathOp::Deref]), Eff::Rw, &pt).unwrap();
        let coarse = AbsLock::coarse(fine_rw.pts.unwrap(), Eff::Rw);
        let mut set = vec![fine_ro.clone(), fine_rw.clone(), coarse.clone()];
        prune_redundant(&mut set);
        assert_eq!(set, vec![coarse]);

        let mut set2 = vec![fine_ro.clone(), fine_ro.clone()];
        prune_redundant(&mut set2);
        assert_eq!(set2.len(), 1);
    }

    #[test]
    fn to_spec_round_trip_shapes() {
        let (p, pt) = pt_for("fn main(a) { let b = *a; }");
        let a = p.functions[0].params[0];
        assert_eq!(AbsLock::global().to_spec(), LockSpec::Global);
        let fine = AbsLock::fine(path(a, vec![]), Eff::Ro, &pt).unwrap();
        assert!(matches!(
            fine.to_spec(),
            LockSpec::Fine { eff: Eff::Ro, .. }
        ));
        let coarse = AbsLock::coarse(PtsClass(2), Eff::Rw);
        assert_eq!(
            coarse.to_spec(),
            LockSpec::Coarse {
                pts: 2,
                eff: Eff::Rw
            }
        );
    }
}
