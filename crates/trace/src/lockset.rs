//! Eraser-style lockset validation of a merged trace.
//!
//! The dynamic counterpart of Theorem 1: replay the totally-ordered
//! event stream, tracking per thread the section depth, the set of
//! held lock-tree nodes with their granted modes, and the section's
//! private allocations. Every in-section shared access must be
//! *licensed* by some held node:
//!
//! * the node must **cover** the location — `Root` covers everything,
//!   `Pts(p)` covers every cell whose allocation site has points-to
//!   class `p`, `Fine(_, Cell(a))` covers exactly cell `a`, and
//!   `Fine(_, Range(b))` covers every cell of the allocation based at
//!   `b`;
//! * the node's granted mode must license the **effect** — per Fig. 6,
//!   full modes do (`X` licenses reads and writes; `S` and `SIX`
//!   license reads) while intention modes (`IS`, `IX`) license
//!   *nothing*: they only announce locking intent below, so an access
//!   "protected" by an intention grant alone is a real violation.
//!
//! Cells the thread allocated inside the still-open section are exempt
//! (Lemma 2's reachability proviso: unpublished cells are private).
//!
//! STM-mode traces carry no lock events; for them the validator checks
//! the transactional discipline structurally — every access must fall
//! inside an open section attempt — and reports coverage vacuously.

use crate::event::EventKind;
use crate::Trace;
use mglock::{FineAddr, Mode, NodeKey};
use std::collections::HashMap;

/// One uncovered in-section access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Violation {
    pub tid: u32,
    pub epoch: u64,
    pub clock: u64,
    pub addr: u64,
    pub write: bool,
    /// The innermost section open on the thread (0 if unknown).
    pub section: u32,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tid {} epoch {} clock {}: uncovered {} of cell {} in section {}",
            self.tid,
            self.epoch,
            self.clock,
            if self.write { "write" } else { "read" },
            self.addr,
            self.section
        )
    }
}

/// Validation outcome.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Validation {
    /// In-section accesses checked against the lockset rule.
    pub checked: u64,
    /// Accesses exempt as section-private allocations.
    pub exempt: u64,
    /// Accesses not licensed by any held lock.
    pub violations: Vec<Violation>,
    /// Threads whose trace ends mid-section (crashed or panicked
    /// workers — legitimate under fault injection; their locks were
    /// unwind-released, which the trace records).
    pub crashed: Vec<u32>,
}

impl Validation {
    /// True when no uncovered access was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Why a trace could not be validated at all (as opposed to failing
/// validation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// The recorder dropped events (a ring buffer overflowed); a
    /// truncated trace could be missing lock grants, so checking it
    /// would report false violations.
    DroppedEvents { dropped: u64 },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::DroppedEvents { dropped } => {
                write!(f, "trace dropped {dropped} events; refusing to validate")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

#[derive(Default)]
struct ThreadState {
    depth: u32,
    section: u32,
    held: Vec<(NodeKey, Mode)>,
    allocs: Vec<(u64, u64)>,
}

/// Does a granted `(node, mode)` license an access of `addr` (whose
/// allocation, if any, is `extent = (base, points-to class)`) with the
/// given effect?
///
/// This is the Fig. 6 licensing core, shared between the post-hoc
/// trace validator here and the online sentinel (`crates/sentinel`),
/// which evaluates the same predicate against a worker's live held-
/// mode set.
pub fn licenses(
    node: NodeKey,
    mode: Mode,
    addr: u64,
    write: bool,
    extent: Option<(u64, u32)>,
) -> bool {
    if !mode_grants(mode, write) {
        return false;
    }
    match node {
        NodeKey::Root => true,
        NodeKey::Pts(p) => extent.is_some_and(|(_, class)| class == p),
        NodeKey::Fine(_, FineAddr::Cell(a)) => addr == a,
        NodeKey::Fine(_, FineAddr::Range(b)) => extent.is_some_and(|(base, _)| base == b),
    }
}

/// Fig. 6's effect filter alone: X is the only mode granting writes; S
/// and SIX additionally grant reads; the intention modes IS/IX grant no
/// access of their own. Exposed so the online sentinel can skip its
/// lazy extent lookup for grants that cannot license the effect anyway.
pub fn mode_grants(mode: Mode, write: bool) -> bool {
    if write {
        mode == Mode::X
    } else {
        matches!(mode, Mode::S | Mode::Six | Mode::X)
    }
}

/// Replays `trace` and checks the lockset discipline.
///
/// # Errors
///
/// [`ValidationError::DroppedEvents`] when the trace is truncated.
pub fn validate(trace: &Trace) -> Result<Validation, ValidationError> {
    if trace.dropped > 0 {
        return Err(ValidationError::DroppedEvents {
            dropped: trace.dropped,
        });
    }
    // STM traces have no lock grants; accesses are covered by the
    // transaction itself. Check section structure only.
    let stm = trace.meta_get("mode") == Some("Stm");
    let mut threads: HashMap<u32, ThreadState> = HashMap::new();
    let mut v = Validation::default();
    for e in &trace.events {
        let st = threads.entry(e.tid).or_default();
        match e.kind {
            EventKind::SectionEnter { section } => {
                st.depth += 1;
                st.section = section;
            }
            EventKind::SectionExit { .. } => {
                st.depth = st.depth.saturating_sub(1);
                if st.depth == 0 {
                    st.allocs.clear();
                }
            }
            EventKind::LockAcquire { node, mode } => st.held.push((node, mode)),
            EventKind::LockRelease { node, mode } => {
                if let Some(i) = st.held.iter().position(|&(n, m)| n == node && m == mode) {
                    st.held.swap_remove(i);
                }
            }
            EventKind::Alloc { base, len } => {
                if st.depth > 0 {
                    st.allocs.push((base, len));
                }
            }
            EventKind::Read { addr } | EventKind::Write { addr } => {
                let write = matches!(e.kind, EventKind::Write { .. });
                if st.allocs.iter().any(|&(b, l)| addr >= b && addr < b + l) {
                    v.exempt += 1;
                    continue;
                }
                v.checked += 1;
                let covered = if stm {
                    // The access is covered by the open transaction.
                    st.depth > 0
                } else {
                    let extent = trace.alloc_of(addr).map(|a| (a.base, a.class));
                    st.depth > 0
                        && st
                            .held
                            .iter()
                            .any(|&(n, m)| licenses(n, m, addr, write, extent))
                };
                if !covered {
                    v.violations.push(Violation {
                        tid: e.tid,
                        epoch: e.epoch,
                        clock: e.clock,
                        addr,
                        write,
                        section: st.section,
                    });
                }
            }
            EventKind::StmAbort => {
                // The worker resets its section depth and re-runs the
                // attempt from the snapshot.
                st.depth = 0;
                st.allocs.clear();
            }
            EventKind::PlanComplete
            | EventKind::StmCommit { .. }
            | EventKind::StmFallback
            | EventKind::Fault { .. }
            | EventKind::Quarantine { .. }
            | EventKind::WakeDecision { .. }
            | EventKind::Reinfer { .. } => {}
        }
    }
    let mut crashed: Vec<u32> = threads
        .iter()
        .filter(|(_, st)| st.depth > 0)
        .map(|(&tid, _)| tid)
        .collect();
    crashed.sort_unstable();
    v.crashed = crashed;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::AllocRecord;

    fn ev(epoch: u64, tid: u32, kind: EventKind) -> Event {
        Event {
            epoch,
            tid,
            clock: epoch,
            kind,
        }
    }

    fn lock_trace(events: Vec<Event>) -> Trace {
        Trace {
            meta: vec![("mode".into(), "MultiGrain".into())],
            allocs: vec![
                AllocRecord {
                    base: 10,
                    len: 4,
                    class: 1,
                },
                AllocRecord {
                    base: 20,
                    len: 8,
                    class: 2,
                },
            ],
            events,
            dropped: 0,
        }
    }

    #[test]
    fn full_modes_license_their_effects() {
        let node = NodeKey::Fine(1, FineAddr::Cell(11));
        let t = lock_trace(vec![
            ev(0, 0, EventKind::SectionEnter { section: 1 }),
            ev(
                1,
                0,
                EventKind::LockAcquire {
                    node,
                    mode: Mode::X,
                },
            ),
            ev(2, 0, EventKind::Read { addr: 11 }),
            ev(3, 0, EventKind::Write { addr: 11 }),
            ev(
                4,
                0,
                EventKind::LockRelease {
                    node,
                    mode: Mode::X,
                },
            ),
            ev(5, 0, EventKind::SectionExit { section: 1 }),
        ]);
        let v = validate(&t).unwrap();
        assert!(v.passed(), "{:?}", v.violations);
        assert_eq!(v.checked, 2);
    }

    #[test]
    fn shared_mode_rejects_writes() {
        let node = NodeKey::Pts(1);
        let t = lock_trace(vec![
            ev(0, 0, EventKind::SectionEnter { section: 1 }),
            ev(
                1,
                0,
                EventKind::LockAcquire {
                    node,
                    mode: Mode::S,
                },
            ),
            ev(2, 0, EventKind::Read { addr: 11 }),
            ev(3, 0, EventKind::Write { addr: 11 }),
            ev(4, 0, EventKind::SectionExit { section: 1 }),
        ]);
        let v = validate(&t).unwrap();
        assert_eq!(v.violations.len(), 1);
        assert!(v.violations[0].write);
    }

    #[test]
    fn intention_modes_license_nothing() {
        // IX on the partition announces a fine lock below; it must not
        // itself cover other cells of the class (the Fig. 6
        // distinction the validator exists to enforce).
        let t = lock_trace(vec![
            ev(0, 0, EventKind::SectionEnter { section: 1 }),
            ev(
                1,
                0,
                EventKind::LockAcquire {
                    node: NodeKey::Pts(1),
                    mode: Mode::Ix,
                },
            ),
            ev(
                2,
                0,
                EventKind::LockAcquire {
                    node: NodeKey::Fine(1, FineAddr::Cell(10)),
                    mode: Mode::X,
                },
            ),
            ev(3, 0, EventKind::Write { addr: 10 }),
            ev(4, 0, EventKind::Write { addr: 11 }),
            ev(5, 0, EventKind::SectionExit { section: 1 }),
        ]);
        let v = validate(&t).unwrap();
        assert_eq!(v.violations.len(), 1, "{:?}", v.violations);
        assert_eq!(v.violations[0].addr, 11);
    }

    #[test]
    fn range_and_coarse_nodes_cover_by_extent_and_class() {
        let t = lock_trace(vec![
            ev(0, 0, EventKind::SectionEnter { section: 2 }),
            ev(
                1,
                0,
                EventKind::LockAcquire {
                    node: NodeKey::Fine(2, FineAddr::Range(20)),
                    mode: Mode::X,
                },
            ),
            ev(2, 0, EventKind::Write { addr: 27 }),
            ev(
                3,
                0,
                EventKind::LockAcquire {
                    node: NodeKey::Pts(1),
                    mode: Mode::X,
                },
            ),
            ev(4, 0, EventKind::Write { addr: 12 }),
            // Cell 30 has no allocation record: neither node covers it.
            ev(5, 0, EventKind::Read { addr: 30 }),
            ev(6, 0, EventKind::SectionExit { section: 2 }),
        ]);
        let v = validate(&t).unwrap();
        assert_eq!(v.violations.len(), 1);
        assert_eq!(v.violations[0].addr, 30);
    }

    #[test]
    fn section_private_allocations_are_exempt() {
        let t = lock_trace(vec![
            ev(0, 0, EventKind::SectionEnter { section: 1 }),
            ev(1, 0, EventKind::Alloc { base: 100, len: 3 }),
            ev(2, 0, EventKind::Write { addr: 101 }),
            ev(3, 0, EventKind::SectionExit { section: 1 }),
        ]);
        let v = validate(&t).unwrap();
        assert!(v.passed());
        assert_eq!(v.exempt, 1);
        assert_eq!(v.checked, 0);
    }

    #[test]
    fn stm_abort_resets_depth_and_crashed_threads_are_reported() {
        let t = Trace {
            meta: vec![("mode".into(), "Stm".into())],
            allocs: Vec::new(),
            events: vec![
                ev(0, 0, EventKind::SectionEnter { section: 1 }),
                ev(1, 0, EventKind::Read { addr: 5 }),
                ev(2, 0, EventKind::StmAbort),
                ev(3, 0, EventKind::SectionEnter { section: 1 }),
                ev(4, 0, EventKind::Read { addr: 5 }),
                ev(
                    5,
                    0,
                    EventKind::StmCommit {
                        reads: 1,
                        writes: 0,
                    },
                ),
                ev(6, 0, EventKind::SectionExit { section: 1 }),
                // Thread 1 dies mid-section.
                ev(7, 1, EventKind::SectionEnter { section: 1 }),
                ev(
                    8,
                    1,
                    EventKind::Fault {
                        class: crate::event::FaultClass::Panic,
                    },
                ),
            ],
            dropped: 0,
        };
        let v = validate(&t).unwrap();
        assert!(v.passed());
        assert_eq!(v.crashed, vec![1]);
    }

    #[test]
    fn truncated_traces_are_refused() {
        let mut t = lock_trace(Vec::new());
        t.dropped = 7;
        assert!(matches!(
            validate(&t),
            Err(ValidationError::DroppedEvents { dropped: 7 })
        ));
    }
}
