//! # trace — runtime event tracing for the locking runtimes
//!
//! The dynamic counterpart of the paper's Theorem 1: every execution
//! under any of the three runtimes (multi-grain locks, TL2 STM, the
//! global-lock baseline) can record a structured event trace, and the
//! [`lockset`] validator replays the merged trace checking the
//! Eraser-style discipline — *every shared access inside an atomic
//! section must be covered by a held lock whose Fig. 6 mode licenses
//! the access effect*. Full modes license (X → read+write, S/SIX →
//! read); intention modes (IS/IX) license nothing — they only announce
//! descendants.
//!
//! The pieces:
//!
//! * [`event`] — the event vocabulary (section boundaries, lock
//!   grants/releases with modes, shared reads/writes, STM lifecycle,
//!   injected faults);
//! * [`recorder`] — per-thread ring buffers with a shared epoch
//!   counter; [`Recorder::take`] merges them into one totally-ordered
//!   [`Trace`];
//! * [`lockset`] — the validator;
//! * [`profile`] — per-section contention/hold-time histograms derived
//!   from a trace;
//! * [`quarantine`] — reconstruction of the sentinel's quarantine
//!   ladder (`["qr", …]` transitions) from a trace, with a truncation
//!   guard that drops half-open quarantines instead of fabricating
//!   state;
//! * [`json`] — a self-contained JSON export/import of traces (the
//!   build environment has no registry access, so the codec is
//!   hand-rolled rather than serde-derived — see `shims/README.md`).
//!
//! Under the deterministic virtual-time scheduler (`interp::sim`)
//! exactly one thread executes at any moment, so the epoch stamps give
//! a *deterministic* total order: the same seed and fault plan export
//! byte-identical traces, which is what makes recorded schedules
//! replayable.

pub mod event;
pub mod json;
pub mod lockset;
pub mod profile;
pub mod quarantine;
pub mod recorder;

pub use event::{Event, EventKind, FaultClass};
pub use lockset::{validate, Validation, ValidationError, Violation};
pub use profile::{profile, Histogram, SectionProfile};
pub use quarantine::{quarantine_history, QuarantineHistory, QuarantineTransition};
pub use recorder::{Recorder, ThreadRecorder, TraceConfig};

/// One allocation extent, snapshotted from the machine's allocation
/// table when the trace is taken. The allocator is a monotone bump
/// allocator, so the final table is a superset valid for every access
/// in the trace; `class` is the points-to partition of the site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AllocRecord {
    pub base: u64,
    pub len: u64,
    pub class: u32,
}

/// A merged, totally-ordered execution trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    /// Ordered key/value metadata. The validator reads `mode`; the
    /// replayer additionally stores the full run configuration
    /// (source, seed, threads, fault plan, entry points) so a trace
    /// file is self-describing.
    pub meta: Vec<(String, String)>,
    /// Allocation table snapshot (sorted by base).
    pub allocs: Vec<AllocRecord>,
    /// Events sorted by epoch.
    pub events: Vec<Event>,
    /// Events discarded because a per-thread buffer hit its capacity.
    pub dropped: u64,
}

impl Trace {
    /// Looks up a metadata value.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) a metadata value, preserving insertion order
    /// for new keys.
    pub fn meta_set(&mut self, key: &str, value: impl Into<String>) {
        match self.meta.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => self.meta.push((key.to_owned(), value.into())),
        }
    }

    /// The allocation extent containing `loc`, by binary search (bases
    /// are monotone).
    pub fn alloc_of(&self, loc: u64) -> Option<AllocRecord> {
        let idx = self.allocs.partition_point(|a| a.base <= loc);
        if idx == 0 {
            return None;
        }
        let a = self.allocs[idx - 1];
        (loc < a.base + a.len).then_some(a)
    }

    /// Canonical JSON encoding (see [`json`]).
    pub fn to_json(&self) -> String {
        json::encode(self)
    }

    /// Parses a trace from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns a rendered message on malformed input.
    pub fn from_json(s: &str) -> Result<Trace, String> {
        json::decode(s)
    }

    /// FNV-1a digest of the canonical JSON — the identity used by the
    /// replay determinism checks (same digest ⇔ byte-identical trace).
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Event counts by kind, for summaries.
    pub fn counts(&self) -> std::collections::BTreeMap<&'static str, u64> {
        let mut m = std::collections::BTreeMap::new();
        for e in &self.events {
            let k = match e.kind {
                EventKind::SectionEnter { .. } => "section_enter",
                EventKind::SectionExit { .. } => "section_exit",
                EventKind::LockAcquire { .. } => "lock_acquire",
                EventKind::LockRelease { .. } => "lock_release",
                EventKind::PlanComplete => "plan_complete",
                EventKind::Read { .. } => "read",
                EventKind::Write { .. } => "write",
                EventKind::Alloc { .. } => "alloc",
                EventKind::StmCommit { .. } => "stm_commit",
                EventKind::StmAbort => "stm_abort",
                EventKind::StmFallback => "stm_fallback",
                EventKind::Fault { .. } => "fault",
                EventKind::Quarantine { .. } => "quarantine",
                EventKind::WakeDecision { .. } => "wake_decision",
                EventKind::Reinfer { .. } => "reinfer",
            };
            *m.entry(k).or_insert(0) += 1;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mglock::{FineAddr, Mode, NodeKey};

    fn sample() -> Trace {
        let rec = Recorder::new(TraceConfig { capacity: 16 });
        let t0 = rec.register(0);
        t0.set_clock(5);
        t0.record(EventKind::SectionEnter { section: 1 });
        t0.record(EventKind::LockAcquire {
            node: NodeKey::Fine(2, FineAddr::Cell(40)),
            mode: Mode::X,
        });
        t0.record(EventKind::Write { addr: 40 });
        t0.record(EventKind::LockRelease {
            node: NodeKey::Fine(2, FineAddr::Cell(40)),
            mode: Mode::X,
        });
        t0.record(EventKind::SectionExit { section: 1 });
        rec.take(
            vec![("mode".into(), "MultiGrain".into())],
            vec![AllocRecord {
                base: 40,
                len: 4,
                class: 2,
            }],
        )
    }

    #[test]
    fn epochs_are_monotone_and_merge_orders_by_them() {
        let t = sample();
        assert!(t.events.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn capacity_overflow_counts_dropped() {
        let rec = Recorder::new(TraceConfig { capacity: 2 });
        let t0 = rec.register(0);
        for _ in 0..5 {
            t0.record(EventKind::StmAbort);
        }
        let t = rec.take(Vec::new(), Vec::new());
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn take_drains() {
        let rec = Recorder::new(TraceConfig::default());
        let t0 = rec.register(0);
        t0.record(EventKind::StmAbort);
        assert_eq!(rec.take(Vec::new(), Vec::new()).events.len(), 1);
        assert_eq!(rec.take(Vec::new(), Vec::new()).events.len(), 0);
    }

    #[test]
    fn alloc_lookup_uses_extents() {
        let t = sample();
        assert_eq!(t.alloc_of(40).unwrap().base, 40);
        assert_eq!(t.alloc_of(43).unwrap().base, 40);
        assert!(t.alloc_of(44).is_none());
        assert!(t.alloc_of(0).is_none());
    }

    #[test]
    fn digest_is_stable_and_json_roundtrips() {
        let t = sample();
        let back = Trace::from_json(&t.to_json()).expect("roundtrip");
        assert_eq!(t, back);
        assert_eq!(t.digest(), back.digest());
    }

    #[test]
    fn meta_accessors() {
        let mut t = sample();
        assert_eq!(t.meta_get("mode"), Some("MultiGrain"));
        t.meta_set("mode", "Stm");
        t.meta_set("seed", "7");
        assert_eq!(t.meta_get("mode"), Some("Stm"));
        assert_eq!(t.meta_get("seed"), Some("7"));
    }
}
