//! JSON export/import of traces.
//!
//! The build environment has no registry access (see
//! `shims/README.md`), so instead of serde this module hand-rolls a
//! canonical encoder and a small recursive-descent parser for the
//! subset of JSON the trace format uses: objects, arrays, strings
//! (with escapes — trace metadata embeds program source), and
//! unsigned integers.
//!
//! The encoding is canonical — no optional whitespace, fixed key
//! order — so byte equality of two exports is exactly trace equality,
//! which the determinism tests rely on.
//!
//! ```text
//! {"format":"ali-trace-v1",
//!  "dropped":0,
//!  "meta":[["mode","MultiGrain"],...],
//!  "allocs":[[base,len,class],...],
//!  "events":[[epoch,tid,clock,KIND],...]}
//! KIND := ["enter",s] | ["exit",s]
//!       | ["acq",NODE,MODE] | ["rel",NODE,MODE]
//!       | ["pc"]
//!       | ["rd",addr] | ["wr",addr] | ["al",base,len]
//!       | ["cmt",reads,writes] | ["ab"] | ["fb"] | ["flt",CLASS]
//!       | ["qr",section,healed01,probation]
//!       | ["wk",NODE,MODE,depth,woken]
//!       | ["ri",section,candidate,accepted01]
//! NODE := ["root"] | ["pts",p] | ["cell",p,addr] | ["range",p,base]
//! MODE := "IS" | "IX" | "S" | "SIX" | "X"
//! ```

use crate::event::{Event, EventKind, FaultClass};
use crate::{AllocRecord, Trace};
use mglock::{FineAddr, Mode, NodeKey};
use std::fmt::Write as _;

const FORMAT: &str = "ali-trace-v1";

// ----------------------------------------------------------------------
// Encoding

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn mode_tag(m: Mode) -> &'static str {
    match m {
        Mode::Is => "IS",
        Mode::Ix => "IX",
        Mode::S => "S",
        Mode::Six => "SIX",
        Mode::X => "X",
    }
}

fn mode_from_tag(s: &str) -> Option<Mode> {
    Some(match s {
        "IS" => Mode::Is,
        "IX" => Mode::Ix,
        "S" => Mode::S,
        "SIX" => Mode::Six,
        "X" => Mode::X,
        _ => return None,
    })
}

fn push_node(out: &mut String, n: NodeKey) {
    match n {
        NodeKey::Root => out.push_str("[\"root\"]"),
        NodeKey::Pts(p) => {
            let _ = write!(out, "[\"pts\",{p}]");
        }
        NodeKey::Fine(p, FineAddr::Cell(a)) => {
            let _ = write!(out, "[\"cell\",{p},{a}]");
        }
        NodeKey::Fine(p, FineAddr::Range(b)) => {
            let _ = write!(out, "[\"range\",{p},{b}]");
        }
    }
}

fn push_kind(out: &mut String, k: EventKind) {
    match k {
        EventKind::SectionEnter { section } => {
            let _ = write!(out, "[\"enter\",{section}]");
        }
        EventKind::SectionExit { section } => {
            let _ = write!(out, "[\"exit\",{section}]");
        }
        EventKind::LockAcquire { node, mode } => {
            out.push_str("[\"acq\",");
            push_node(out, node);
            out.push(',');
            push_escaped(out, mode_tag(mode));
            out.push(']');
        }
        EventKind::LockRelease { node, mode } => {
            out.push_str("[\"rel\",");
            push_node(out, node);
            out.push(',');
            push_escaped(out, mode_tag(mode));
            out.push(']');
        }
        EventKind::PlanComplete => out.push_str("[\"pc\"]"),
        EventKind::Read { addr } => {
            let _ = write!(out, "[\"rd\",{addr}]");
        }
        EventKind::Write { addr } => {
            let _ = write!(out, "[\"wr\",{addr}]");
        }
        EventKind::Alloc { base, len } => {
            let _ = write!(out, "[\"al\",{base},{len}]");
        }
        EventKind::StmCommit { reads, writes } => {
            let _ = write!(out, "[\"cmt\",{reads},{writes}]");
        }
        EventKind::StmAbort => out.push_str("[\"ab\"]"),
        EventKind::StmFallback => out.push_str("[\"fb\"]"),
        EventKind::Fault { class } => {
            out.push_str("[\"flt\",");
            push_escaped(out, class.tag());
            out.push(']');
        }
        EventKind::Quarantine {
            section,
            healed,
            probation,
        } => {
            // The parser's number grammar has no booleans; `healed`
            // encodes as 0/1.
            let _ = write!(out, "[\"qr\",{section},{},{probation}]", u64::from(healed));
        }
        EventKind::WakeDecision {
            node,
            mode,
            depth,
            woken,
        } => {
            out.push_str("[\"wk\",");
            push_node(out, node);
            out.push(',');
            push_escaped(out, mode_tag(mode));
            let _ = write!(out, ",{depth},{woken}]");
        }
        EventKind::Reinfer {
            section,
            candidate,
            accepted,
        } => {
            // `accepted` encodes as 0/1, like the qr healed flag.
            let _ = write!(
                out,
                "[\"ri\",{section},{candidate},{}]",
                u64::from(accepted)
            );
        }
    }
}

/// Canonical JSON encoding of a trace.
pub fn encode(t: &Trace) -> String {
    let mut out = String::with_capacity(64 + t.events.len() * 24);
    out.push_str("{\"format\":");
    push_escaped(&mut out, FORMAT);
    let _ = write!(out, ",\"dropped\":{},\"meta\":[", t.dropped);
    for (i, (k, v)) in t.meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_escaped(&mut out, k);
        out.push(',');
        push_escaped(&mut out, v);
        out.push(']');
    }
    out.push_str("],\"allocs\":[");
    for (i, a) in t.allocs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{},{}]", a.base, a.len, a.class);
    }
    out.push_str("],\"events\":[");
    for (i, e) in t.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{},{},", e.epoch, e.tid, e.clock);
        push_kind(&mut out, e.kind);
        out.push(']');
    }
    out.push_str("]}");
    out
}

// ----------------------------------------------------------------------
// Decoding

/// A parsed JSON value (the subset the trace format uses: no floats,
/// no booleans, no null).
enum Value {
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type PResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &str) -> PResult<T> {
        Err(format!("trace json: {what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> PResult<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", c as char))
        }
    }

    fn value(&mut self) -> PResult<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b) if b.is_ascii_digit() => Ok(Value::Num(self.number()?)),
            _ => self.err("expected a value"),
        }
    }

    fn number(&mut self) -> PResult<u64> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("trace json: bad number at byte {start}"))
    }

    fn string(&mut self) -> PResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "trace json: bad \\u escape".to_owned())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "trace json: bad \\u escape".to_owned())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| "trace json: bad codepoint".to_owned())?,
                            );
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "trace json: invalid utf-8".to_owned())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> PResult<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> PResult<Value> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            items.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(items));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

fn as_num(v: &Value, what: &str) -> PResult<u64> {
    match v {
        Value::Num(n) => Ok(*n),
        _ => Err(format!("trace json: {what} must be a number")),
    }
}

fn as_str<'v>(v: &'v Value, what: &str) -> PResult<&'v str> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(format!("trace json: {what} must be a string")),
    }
}

fn as_arr<'v>(v: &'v Value, what: &str) -> PResult<&'v [Value]> {
    match v {
        Value::Arr(items) => Ok(items),
        _ => Err(format!("trace json: {what} must be an array")),
    }
}

fn node_from(v: &Value) -> PResult<NodeKey> {
    let items = as_arr(v, "node")?;
    let tag = as_str(items.first().ok_or("trace json: empty node")?, "node tag")?;
    Ok(match (tag, items.len()) {
        ("root", 1) => NodeKey::Root,
        ("pts", 2) => NodeKey::Pts(as_num(&items[1], "pts")? as u32),
        ("cell", 3) => NodeKey::Fine(
            as_num(&items[1], "pts")? as u32,
            FineAddr::Cell(as_num(&items[2], "addr")?),
        ),
        ("range", 3) => NodeKey::Fine(
            as_num(&items[1], "pts")? as u32,
            FineAddr::Range(as_num(&items[2], "base")?),
        ),
        _ => return Err(format!("trace json: unknown node `{tag}`")),
    })
}

fn kind_from(v: &Value) -> PResult<EventKind> {
    let items = as_arr(v, "event kind")?;
    let tag = as_str(items.first().ok_or("trace json: empty kind")?, "kind tag")?;
    let num = |i: usize| as_num(&items[i], tag);
    Ok(match (tag, items.len()) {
        ("enter", 2) => EventKind::SectionEnter {
            section: num(1)? as u32,
        },
        ("exit", 2) => EventKind::SectionExit {
            section: num(1)? as u32,
        },
        ("acq", 3) | ("rel", 3) => {
            let node = node_from(&items[1])?;
            let mode = mode_from_tag(as_str(&items[2], "mode")?)
                .ok_or_else(|| "trace json: unknown mode".to_owned())?;
            if tag == "acq" {
                EventKind::LockAcquire { node, mode }
            } else {
                EventKind::LockRelease { node, mode }
            }
        }
        ("pc", 1) => EventKind::PlanComplete,
        ("rd", 2) => EventKind::Read { addr: num(1)? },
        ("wr", 2) => EventKind::Write { addr: num(1)? },
        ("al", 3) => EventKind::Alloc {
            base: num(1)?,
            len: num(2)?,
        },
        ("cmt", 3) => EventKind::StmCommit {
            reads: num(1)?,
            writes: num(2)?,
        },
        ("ab", 1) => EventKind::StmAbort,
        ("fb", 1) => EventKind::StmFallback,
        ("flt", 2) => EventKind::Fault {
            class: FaultClass::from_tag(as_str(&items[1], "fault class")?)
                .ok_or_else(|| "trace json: unknown fault class".to_owned())?,
        },
        ("qr", 4) => EventKind::Quarantine {
            section: num(1)? as u32,
            healed: match num(2)? {
                0 => false,
                1 => true,
                _ => return Err("trace json: qr healed flag must be 0 or 1".into()),
            },
            probation: num(3)? as u32,
        },
        ("wk", 5) => EventKind::WakeDecision {
            node: node_from(&items[1])?,
            mode: mode_from_tag(as_str(&items[2], "mode")?)
                .ok_or_else(|| "trace json: unknown mode".to_owned())?,
            depth: num(3)? as u32,
            woken: num(4)? as u32,
        },
        ("ri", 4) => EventKind::Reinfer {
            section: num(1)? as u32,
            candidate: num(2)? as u32,
            accepted: match num(3)? {
                0 => false,
                1 => true,
                _ => return Err("trace json: ri accepted flag must be 0 or 1".into()),
            },
        },
        _ => return Err(format!("trace json: unknown event kind `{tag}`")),
    })
}

/// Parses a trace from its canonical JSON encoding.
pub fn decode(s: &str) -> Result<Trace, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trace json: trailing content".into());
    }
    let Value::Obj(fields) = root else {
        return Err("trace json: top level must be an object".into());
    };
    let field = |name: &str| {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("trace json: missing `{name}`"))
    };
    let format = as_str(field("format")?, "format")?;
    if format != FORMAT {
        return Err(format!("trace json: unsupported format `{format}`"));
    }
    let mut t = Trace {
        dropped: as_num(field("dropped")?, "dropped")?,
        ..Trace::default()
    };
    for pair in as_arr(field("meta")?, "meta")? {
        let kv = as_arr(pair, "meta entry")?;
        if kv.len() != 2 {
            return Err("trace json: meta entries are [key,value]".into());
        }
        t.meta.push((
            as_str(&kv[0], "meta key")?.to_owned(),
            as_str(&kv[1], "meta value")?.to_owned(),
        ));
    }
    for rec in as_arr(field("allocs")?, "allocs")? {
        let a = as_arr(rec, "alloc record")?;
        if a.len() != 3 {
            return Err("trace json: alloc records are [base,len,class]".into());
        }
        t.allocs.push(AllocRecord {
            base: as_num(&a[0], "base")?,
            len: as_num(&a[1], "len")?,
            class: as_num(&a[2], "class")? as u32,
        });
    }
    for rec in as_arr(field("events")?, "events")? {
        let e = as_arr(rec, "event")?;
        if e.len() != 4 {
            return Err("trace json: events are [epoch,tid,clock,kind]".into());
        }
        t.events.push(Event {
            epoch: as_num(&e[0], "epoch")?,
            tid: as_num(&e[1], "tid")? as u32,
            clock: as_num(&e[2], "clock")?,
            kind: kind_from(&e[3])?,
        });
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips() {
        let kinds = [
            EventKind::SectionEnter { section: 3 },
            EventKind::SectionExit { section: 3 },
            EventKind::LockAcquire {
                node: NodeKey::Root,
                mode: Mode::Ix,
            },
            EventKind::LockAcquire {
                node: NodeKey::Pts(7),
                mode: Mode::Six,
            },
            EventKind::LockRelease {
                node: NodeKey::Fine(1, FineAddr::Cell(99)),
                mode: Mode::X,
            },
            EventKind::LockRelease {
                node: NodeKey::Fine(1, FineAddr::Range(64)),
                mode: Mode::S,
            },
            EventKind::PlanComplete,
            EventKind::Read { addr: 12 },
            EventKind::Write { addr: 13 },
            EventKind::Alloc { base: 100, len: 8 },
            EventKind::StmCommit {
                reads: 4,
                writes: 2,
            },
            EventKind::StmAbort,
            EventKind::StmFallback,
            EventKind::Fault {
                class: FaultClass::WakeupDelay,
            },
            EventKind::Quarantine {
                section: 5,
                healed: false,
                probation: 4,
            },
            EventKind::Quarantine {
                section: 5,
                healed: true,
                probation: 8,
            },
            EventKind::WakeDecision {
                node: NodeKey::Pts(2),
                mode: Mode::S,
                depth: 4,
                woken: 3,
            },
            EventKind::Reinfer {
                section: 5,
                candidate: 1,
                accepted: true,
            },
            EventKind::Reinfer {
                section: 5,
                candidate: 1,
                accepted: false,
            },
        ];
        let t = Trace {
            meta: vec![
                ("mode".into(), "Stm".into()),
                (
                    "source".into(),
                    "fn main() {\n  \"quoted\\path\"\t\u{1}\n}".into(),
                ),
            ],
            allocs: vec![AllocRecord {
                base: 1,
                len: 2,
                class: 3,
            }],
            events: kinds
                .iter()
                .enumerate()
                .map(|(i, &kind)| Event {
                    epoch: i as u64,
                    tid: (i % 3) as u32,
                    clock: 10 * i as u64,
                    kind,
                })
                .collect(),
            dropped: 0,
        };
        let json = encode(&t);
        let back = decode(&json).expect("decode");
        assert_eq!(t, back);
        assert_eq!(json, encode(&back), "canonical encoding is stable");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "[]",
            "{\"format\":\"nope\"}",
            "{\"format\":\"ali-trace-v1\",\"dropped\":0,\"meta\":[],\"allocs\":[],\"events\":[[0,0,0,[\"??\"]]]}",
            "{\"format\":\"ali-trace-v1\",\"dropped\":0,\"meta\":[],\"allocs\":[],\"events\":[[0,0,0,[\"qr\",1,2,4]]]}",
            "{\"format\":\"ali-trace-v1\",\"dropped\":0,\"meta\":[],\"allocs\":[],\"events\":[[0,0,0,[\"ri\",1,2,2]]]}",
            "{\"format\":\"ali-trace-v1\",\"dropped\":0,\"meta\":[],\"allocs\":[],\"events\":[]} trailing",
        ] {
            assert!(decode(bad).is_err(), "accepted: {bad}");
        }
    }
}
