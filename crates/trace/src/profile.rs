//! Per-section contention and hold-time profiles derived from a trace.
//!
//! For every outermost section execution the profiler splits the
//! virtual-clock interval at the *acquisition point* — the clock of the
//! last lock grant recorded before the body runs (for STM sections,
//! the section entry itself):
//!
//! * **wait** = acquisition point − section entry (time spent blocked
//!   on the lock plan — the contention cost the paper's Fig. 8/9
//!   experiments measure);
//! * **hold** = section exit − acquisition point (time the locks were
//!   held, bounding what other threads conflict against).
//!
//! Both are accumulated into log₂-bucketed [`Histogram`]s per static
//! section id.

use crate::event::EventKind;
use crate::Trace;
use std::collections::{BTreeMap, HashMap};

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    /// `buckets[i]` counts samples `v` with `⌊log₂(v+1)⌋ == i` (so
    /// bucket 0 is exactly the zero samples).
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Histogram {
    /// Adds one sample.
    pub fn add(&mut self, v: u64) {
        let idx = (64 - (v + 1).leading_zeros() - 1) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// One-line rendering: `n=… mean=… max=… [2^i:count …]`.
    pub fn render(&self) -> String {
        let mut s = format!("n={} mean={:.1} max={}", self.count, self.mean(), self.max);
        if self.count > 0 {
            s.push_str(" [");
            let mut first = true;
            for (i, &c) in self.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    s.push(' ');
                }
                first = false;
                s.push_str(&format!("2^{i}:{c}"));
            }
            s.push(']');
        }
        s
    }
}

/// Aggregated statistics for one static section id.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SectionProfile {
    pub section: u32,
    /// Outermost executions completed.
    pub entries: u64,
    /// STM attempts aborted inside this section.
    pub aborts: u64,
    /// Virtual ticks from section entry to the last lock grant.
    pub wait: Histogram,
    /// Virtual ticks the locks (or transaction) were held.
    pub hold: Histogram,
}

#[derive(Default)]
struct ThreadState {
    depth: u32,
    section: u32,
    enter_clock: u64,
    acq_clock: Option<u64>,
}

/// Derives per-section profiles from a merged trace, sorted by section
/// id.
pub fn profile(trace: &Trace) -> Vec<SectionProfile> {
    let mut sections: BTreeMap<u32, SectionProfile> = BTreeMap::new();
    let mut threads: HashMap<u32, ThreadState> = HashMap::new();
    for e in &trace.events {
        let st = threads.entry(e.tid).or_default();
        match e.kind {
            EventKind::SectionEnter { section } => {
                st.depth += 1;
                if st.depth == 1 {
                    st.section = section;
                    st.enter_clock = e.clock;
                    st.acq_clock = None;
                }
            }
            EventKind::LockAcquire { .. } if st.depth > 0 => {
                st.acq_clock = Some(e.clock);
            }
            EventKind::SectionExit { .. } => {
                if st.depth == 1 {
                    let p = sections
                        .entry(st.section)
                        .or_insert_with(|| SectionProfile {
                            section: st.section,
                            ..SectionProfile::default()
                        });
                    p.entries += 1;
                    let acq = st.acq_clock.unwrap_or(st.enter_clock);
                    p.wait.add(acq.saturating_sub(st.enter_clock));
                    p.hold.add(e.clock.saturating_sub(acq));
                }
                st.depth = st.depth.saturating_sub(1);
            }
            EventKind::StmAbort => {
                if st.depth > 0 {
                    sections
                        .entry(st.section)
                        .or_insert_with(|| SectionProfile {
                            section: st.section,
                            ..SectionProfile::default()
                        })
                        .aborts += 1;
                }
                st.depth = 0;
            }
            _ => {}
        }
    }
    sections.into_values().collect()
}

/// Renders profiles as an aligned text report (the `trace-dump`
/// `--profile` output).
pub fn render(profiles: &[SectionProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&format!(
            "section {:>3}  entries={:<6} aborts={:<6}\n  wait: {}\n  hold: {}\n",
            p.section,
            p.entries,
            p.aborts,
            p.wait.render(),
            p.hold.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use mglock::{Mode, NodeKey};

    fn ev(epoch: u64, tid: u32, clock: u64, kind: EventKind) -> Event {
        Event {
            epoch,
            tid,
            clock,
            kind,
        }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 7, 8, 100] {
            h.add(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets[0], 1); // v = 0
        assert_eq!(h.buckets[1], 2); // v ∈ {1, 2}
        assert_eq!(h.buckets[2], 1); // v = 3
        assert_eq!(h.buckets[3], 2); // v ∈ {7, 8}
        let r = h.render();
        assert!(r.starts_with("n=7"), "{r}");
    }

    #[test]
    fn wait_and_hold_split_at_last_acquire() {
        let t = Trace {
            events: vec![
                ev(0, 0, 100, EventKind::SectionEnter { section: 3 }),
                ev(
                    1,
                    0,
                    104,
                    EventKind::LockAcquire {
                        node: NodeKey::Root,
                        mode: Mode::Ix,
                    },
                ),
                ev(
                    2,
                    0,
                    110,
                    EventKind::LockAcquire {
                        node: NodeKey::Pts(1),
                        mode: Mode::X,
                    },
                ),
                ev(3, 0, 130, EventKind::SectionExit { section: 3 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].section, 3);
        assert_eq!(ps[0].entries, 1);
        assert_eq!(ps[0].wait.sum, 10);
        assert_eq!(ps[0].hold.sum, 20);
    }

    #[test]
    fn stm_aborts_are_attributed_to_the_open_section() {
        let t = Trace {
            events: vec![
                ev(0, 0, 10, EventKind::SectionEnter { section: 1 }),
                ev(1, 0, 15, EventKind::StmAbort),
                ev(2, 0, 16, EventKind::SectionEnter { section: 1 }),
                ev(
                    3,
                    0,
                    20,
                    EventKind::StmCommit {
                        reads: 1,
                        writes: 1,
                    },
                ),
                ev(4, 0, 20, EventKind::SectionExit { section: 1 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps[0].aborts, 1);
        assert_eq!(ps[0].entries, 1);
        // STM sections have no lock grants: wait 0, hold = exit − enter.
        assert_eq!(ps[0].wait.sum, 0);
        assert_eq!(ps[0].hold.sum, 4);
    }

    #[test]
    fn nested_sections_profile_only_the_outermost() {
        let t = Trace {
            events: vec![
                ev(0, 0, 0, EventKind::SectionEnter { section: 1 }),
                ev(1, 0, 2, EventKind::SectionEnter { section: 2 }),
                ev(2, 0, 4, EventKind::SectionExit { section: 2 }),
                ev(3, 0, 6, EventKind::SectionExit { section: 1 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].section, 1);
        assert_eq!(ps[0].entries, 1);
    }
}
