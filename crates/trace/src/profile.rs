//! Per-section contention and hold-time profiles derived from a trace.
//!
//! For every outermost section execution the profiler splits the
//! virtual-clock interval at the *acquisition point* — the clock of the
//! **first** [`EventKind::PlanComplete`] marker recorded after the
//! section entry (for STM sections, the section entry itself):
//!
//! * **wait** = acquisition point − section entry (time spent blocked
//!   on the lock plan — the contention cost the paper's Fig. 8/9
//!   experiments measure);
//! * **hold** = section exit − acquisition point (time the locks were
//!   held, bounding what other threads conflict against);
//! * **revalidations** = plan completions after the first one, i.e.
//!   acquire-time revalidation retries: the fine descriptors drifted
//!   while the session waited, the plan was released and re-acquired
//!   (DESIGN.md §5.2), and the worker re-ran the protocol *while
//!   already inside its hold interval*.
//!
//! The first-completion rule matters: a revalidation retry emits fresh
//! `LockAcquire` grants mid-section, so taking the *last* grant as the
//! acquisition point (as this module originally did) silently
//! reclassifies hold time as wait time on drift-heavy workloads — and
//! an adaptive policy fed those numbers would coarsen exactly the
//! sections that were already making progress. Traces recorded before
//! `PlanComplete` markers existed carry none; for those the profiler
//! falls back to the last grant, the best split the legacy vocabulary
//! can express.
//!
//! All three intervals are accumulated into log₂-bucketed
//! [`Histogram`]s per static section id.

use crate::event::EventKind;
use crate::Trace;
use std::collections::{BTreeMap, HashMap};

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    /// `buckets[i]` counts samples `v` with `⌊log₂(v+1)⌋ == i` (so
    /// bucket 0 is exactly the zero samples).
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Histogram {
    /// Adds one sample. Saturates rather than overflows: `u64::MAX`
    /// lands in the top bucket and `sum` clamps at `u64::MAX`.
    pub fn add(&mut self, v: u64) {
        let idx = (63 - v.saturating_add(1).leading_zeros().min(63)) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// One-line rendering: `n=… mean=… max=… [2^i:count …]`.
    pub fn render(&self) -> String {
        let mut s = format!("n={} mean={:.1} max={}", self.count, self.mean(), self.max);
        if self.count > 0 {
            s.push_str(" [");
            let mut first = true;
            for (i, &c) in self.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    s.push(' ');
                }
                first = false;
                s.push_str(&format!("2^{i}:{c}"));
            }
            s.push(']');
        }
        s
    }
}

/// Aggregated statistics for one static section id.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SectionProfile {
    pub section: u32,
    /// Outermost executions completed.
    pub entries: u64,
    /// STM attempts aborted inside this section.
    pub aborts: u64,
    /// Virtual ticks from section entry to the first plan completion.
    pub wait: Histogram,
    /// Virtual ticks the locks (or transaction) were held.
    pub hold: Histogram,
    /// Acquire-time revalidation retries per outermost execution
    /// (plan completions beyond the first).
    pub revalidations: Histogram,
}

/// The profiler's view of one open outermost section execution.
struct OpenSection {
    section: u32,
    enter_clock: u64,
    /// Clock of the first plan completion — the acquisition point.
    acq_clock: Option<u64>,
    /// Clock of the last lock grant: the legacy acquisition point for
    /// traces recorded before `PlanComplete` markers existed.
    last_grant: Option<u64>,
    /// Plan completions beyond the first.
    revalidations: u64,
}

#[derive(Default)]
struct ThreadState {
    depth: u32,
    /// Baseline for the open outermost execution. `None` while the
    /// thread is (or appears to be) outside any section, and after a
    /// desync is detected in a truncated trace — then the depth
    /// bookkeeping keeps running but no sample is recorded for the
    /// suspect execution.
    open: Option<OpenSection>,
    /// After an `StmAbort`: the outermost section the retry must
    /// re-enter. A *different* section id on the next outermost enter
    /// means the re-enter event was lost (truncated crash trace) and
    /// what we are seeing is a nested enter — profiling it from this
    /// state would fabricate a sample, so the baseline is skipped.
    retry_section: Option<u32>,
}

/// Derives per-section profiles from a merged trace, sorted by section
/// id.
pub fn profile(trace: &Trace) -> Vec<SectionProfile> {
    let mut sections: BTreeMap<u32, SectionProfile> = BTreeMap::new();
    let mut threads: HashMap<u32, ThreadState> = HashMap::new();
    for e in &trace.events {
        let st = threads.entry(e.tid).or_default();
        match e.kind {
            EventKind::SectionEnter { section } => {
                st.depth += 1;
                if st.depth == 1 {
                    let trusted = st.retry_section.is_none_or(|s| s == section);
                    st.open = trusted.then_some(OpenSection {
                        section,
                        enter_clock: e.clock,
                        acq_clock: None,
                        last_grant: None,
                        revalidations: 0,
                    });
                    st.retry_section = None;
                }
            }
            EventKind::PlanComplete => {
                if let Some(o) = st.open.as_mut() {
                    match o.acq_clock {
                        None => o.acq_clock = Some(e.clock),
                        Some(_) => o.revalidations += 1,
                    }
                }
            }
            EventKind::LockAcquire { .. } => {
                if let Some(o) = st.open.as_mut() {
                    o.last_grant = Some(e.clock);
                }
            }
            EventKind::SectionExit { section } => {
                if st.depth == 1 {
                    if let Some(o) = st.open.take() {
                        if o.section == section {
                            let p = sections.entry(o.section).or_insert_with(|| SectionProfile {
                                section: o.section,
                                ..SectionProfile::default()
                            });
                            p.entries += 1;
                            let acq = o.acq_clock.or(o.last_grant).unwrap_or(o.enter_clock);
                            p.wait.add(acq.saturating_sub(o.enter_clock));
                            p.hold.add(e.clock.saturating_sub(acq));
                            p.revalidations.add(o.revalidations);
                        }
                    }
                }
                st.depth = st.depth.saturating_sub(1);
            }
            EventKind::StmAbort => {
                if let Some(o) = &st.open {
                    sections
                        .entry(o.section)
                        .or_insert_with(|| SectionProfile {
                            section: o.section,
                            ..SectionProfile::default()
                        })
                        .aborts += 1;
                    st.retry_section = Some(o.section);
                }
                st.depth = 0;
                st.open = None;
            }
            _ => {}
        }
    }
    sections.into_values().collect()
}

/// Renders profiles as an aligned text report (the `trace-dump`
/// `--profile` output).
pub fn render(profiles: &[SectionProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&format!(
            "section {:>3}  entries={:<6} aborts={:<6}\n  wait:  {}\n  hold:  {}\n  reval: {}\n",
            p.section,
            p.entries,
            p.aborts,
            p.wait.render(),
            p.hold.render(),
            p.revalidations.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use mglock::{Mode, NodeKey};

    fn ev(epoch: u64, tid: u32, clock: u64, kind: EventKind) -> Event {
        Event {
            epoch,
            tid,
            clock,
            kind,
        }
    }

    fn acq(node: NodeKey, mode: Mode) -> EventKind {
        EventKind::LockAcquire { node, mode }
    }

    fn rel(node: NodeKey, mode: Mode) -> EventKind {
        EventKind::LockRelease { node, mode }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 7, 8, 100] {
            h.add(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets[0], 1); // v = 0
        assert_eq!(h.buckets[1], 2); // v ∈ {1, 2}
        assert_eq!(h.buckets[2], 1); // v = 3
        assert_eq!(h.buckets[3], 2); // v ∈ {7, 8}
        let r = h.render();
        assert!(r.starts_with("n=7"), "{r}");
    }

    #[test]
    fn histogram_saturates_at_the_boundary() {
        let mut h = Histogram::default();
        h.add(u64::MAX); // v + 1 would overflow; must not panic
        h.add(u64::MAX - 1);
        h.add(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.sum, u64::MAX, "sum clamps instead of wrapping");
        assert_eq!(h.buckets[63], 3, "both land in the top bucket");
    }

    #[test]
    fn wait_and_hold_split_at_first_plan_completion() {
        let t = Trace {
            events: vec![
                ev(0, 0, 100, EventKind::SectionEnter { section: 3 }),
                ev(1, 0, 104, acq(NodeKey::Root, Mode::Ix)),
                ev(2, 0, 110, acq(NodeKey::Pts(1), Mode::X)),
                ev(3, 0, 110, EventKind::PlanComplete),
                ev(4, 0, 130, EventKind::SectionExit { section: 3 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].section, 3);
        assert_eq!(ps[0].entries, 1);
        assert_eq!(ps[0].wait.sum, 10);
        assert_eq!(ps[0].hold.sum, 20);
        assert_eq!(ps[0].revalidations.sum, 0);
    }

    #[test]
    fn legacy_traces_without_markers_fall_back_to_the_last_grant() {
        let t = Trace {
            events: vec![
                ev(0, 0, 100, EventKind::SectionEnter { section: 3 }),
                ev(1, 0, 104, acq(NodeKey::Root, Mode::Ix)),
                ev(2, 0, 110, acq(NodeKey::Pts(1), Mode::X)),
                ev(3, 0, 130, EventKind::SectionExit { section: 3 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps[0].wait.sum, 10);
        assert_eq!(ps[0].hold.sum, 20);
    }

    #[test]
    fn revalidation_retries_land_in_hold_not_wait() {
        // The chaos-suite TH resize schedule in miniature: the plan
        // completes at clock 110, the hash-table descriptor drifts
        // (resize), the session releases and re-acquires, completing
        // again at 140. The last-grant rule would report wait = 35 and
        // hold = 60, reclassifying 30 held ticks as contention.
        let t = Trace {
            events: vec![
                ev(0, 0, 100, EventKind::SectionEnter { section: 5 }),
                ev(1, 0, 104, acq(NodeKey::Root, Mode::Ix)),
                ev(2, 0, 110, acq(NodeKey::Pts(2), Mode::X)),
                ev(3, 0, 110, EventKind::PlanComplete),
                // Drift detected: release, re-evaluate, re-acquire.
                ev(4, 0, 120, rel(NodeKey::Pts(2), Mode::X)),
                ev(5, 0, 120, rel(NodeKey::Root, Mode::Ix)),
                ev(6, 0, 128, acq(NodeKey::Root, Mode::Ix)),
                ev(7, 0, 135, acq(NodeKey::Pts(3), Mode::X)),
                ev(8, 0, 140, EventKind::PlanComplete),
                ev(9, 0, 200, EventKind::SectionExit { section: 5 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].entries, 1);
        assert_eq!(ps[0].wait.sum, 10, "wait ends at the FIRST completion");
        assert_eq!(ps[0].hold.sum, 90, "retry time stays in hold");
        assert_eq!(ps[0].revalidations.count, 1);
        assert_eq!(ps[0].revalidations.sum, 1, "one retry, counted apart");
    }

    #[test]
    fn stm_aborts_are_attributed_to_the_open_section() {
        let t = Trace {
            events: vec![
                ev(0, 0, 10, EventKind::SectionEnter { section: 1 }),
                ev(1, 0, 15, EventKind::StmAbort),
                ev(2, 0, 16, EventKind::SectionEnter { section: 1 }),
                ev(
                    3,
                    0,
                    20,
                    EventKind::StmCommit {
                        reads: 1,
                        writes: 1,
                    },
                ),
                ev(4, 0, 20, EventKind::SectionExit { section: 1 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps[0].aborts, 1);
        assert_eq!(ps[0].entries, 1);
        // STM sections have no lock grants: wait 0, hold = exit − enter.
        assert_eq!(ps[0].wait.sum, 0);
        assert_eq!(ps[0].hold.sum, 4);
    }

    #[test]
    fn nested_sections_profile_only_the_outermost() {
        let t = Trace {
            events: vec![
                ev(0, 0, 0, EventKind::SectionEnter { section: 1 }),
                ev(1, 0, 2, EventKind::SectionEnter { section: 2 }),
                ev(2, 0, 4, EventKind::SectionExit { section: 2 }),
                ev(3, 0, 6, EventKind::SectionExit { section: 1 }),
            ],
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].section, 1);
        assert_eq!(ps[0].entries, 1);
    }

    #[test]
    fn truncated_crash_trace_does_not_profile_from_stale_state() {
        // A nested STM attempt aborts; the retry's outer re-enter was
        // lost to buffer truncation, so the next event is the *nested*
        // re-enter. Profiling it as an outermost execution would
        // fabricate a sample for section 2 from stale depth
        // bookkeeping; the abort guard skips it, and the next complete
        // execution profiles normally.
        let t = Trace {
            events: vec![
                ev(0, 0, 10, EventKind::SectionEnter { section: 1 }),
                ev(1, 0, 12, EventKind::SectionEnter { section: 2 }),
                ev(2, 0, 15, EventKind::StmAbort),
                // enter(1) @16 dropped — the trace is truncated.
                ev(3, 0, 17, EventKind::SectionEnter { section: 2 }),
                ev(4, 0, 20, EventKind::SectionExit { section: 2 }),
                ev(5, 0, 25, EventKind::SectionExit { section: 1 }),
                ev(6, 0, 30, EventKind::SectionEnter { section: 1 }),
                ev(7, 0, 33, EventKind::PlanComplete),
                ev(8, 0, 40, EventKind::SectionExit { section: 1 }),
            ],
            dropped: 1,
            ..Trace::default()
        };
        let ps = profile(&t);
        assert_eq!(ps.len(), 1, "no fabricated profile for section 2: {ps:?}");
        assert_eq!(ps[0].section, 1);
        assert_eq!(ps[0].aborts, 1);
        assert_eq!(ps[0].entries, 1, "only the complete execution counts");
        assert_eq!(ps[0].wait.sum, 3);
        assert_eq!(ps[0].hold.sum, 7);
    }
}
