//! The structured event vocabulary of a runtime trace.
//!
//! One [`Event`] is recorded per observable runtime action: section
//! boundaries, lock-tree grants and releases (with their Fig. 6 mode),
//! shared heap accesses, STM lifecycle transitions, and injected
//! faults. Events carry the global merge epoch (total order), the
//! recording thread, and that thread's virtual clock at the time.

use mglock::{Mode, NodeKey};

/// Which fault-injection class fired (mirrors `interp::fault`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultClass {
    /// Mid-section panic (the worker unwound).
    Panic,
    /// Spurious transactional abort.
    SpuriousAbort,
    /// Pre-acquisition stall.
    Stall,
    /// Delayed lock-wait wakeup.
    WakeupDelay,
}

impl FaultClass {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            FaultClass::Panic => "panic",
            FaultClass::SpuriousAbort => "abort",
            FaultClass::Stall => "stall",
            FaultClass::WakeupDelay => "delay",
        }
    }

    pub(crate) fn from_tag(s: &str) -> Option<FaultClass> {
        Some(match s {
            "panic" => FaultClass::Panic,
            "abort" => FaultClass::SpuriousAbort,
            "stall" => FaultClass::Stall,
            "delay" => FaultClass::WakeupDelay,
            _ => return None,
        })
    }
}

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// An atomic section was entered (every nesting level records one).
    SectionEnter { section: u32 },
    /// An atomic section was left. In STM mode this is recorded only
    /// when the attempt survives (inner levels always; the outermost
    /// level after a successful commit) — an aborted attempt ends with
    /// [`EventKind::StmAbort`] instead.
    SectionExit { section: u32 },
    /// A lock-tree node was granted in `mode` (from `mglock`).
    LockAcquire { node: NodeKey, mode: Mode },
    /// A lock-tree node grant was released (including unwind releases
    /// from a panicking worker's session drop).
    LockRelease { node: NodeKey, mode: Mode },
    /// The thread's lock plan for the current outermost section is
    /// fully granted. The *first* marker after a `SectionEnter` is the
    /// section's acquisition point (wait ends, hold begins); later
    /// markers before the exit are acquire-time revalidation retries —
    /// the descriptors drifted while the session waited and the plan
    /// was released and re-acquired (DESIGN.md §5.2).
    PlanComplete,
    /// An in-section shared read of heap cell `addr`.
    Read { addr: u64 },
    /// An in-section shared write of heap cell `addr`.
    Write { addr: u64 },
    /// An in-section allocation: cells `[base, base+len)` are private
    /// to the allocating thread until the section publishes them
    /// (Lemma 2's reachability proviso) — the validator exempts them.
    Alloc { base: u64, len: u64 },
    /// The outermost STM section committed with the given read/write
    /// set sizes (from `tl2`).
    StmCommit { reads: u64, writes: u64 },
    /// The current STM attempt aborted and will retry; the thread's
    /// section depth resets to zero.
    StmAbort,
    /// The STM starvation fallback engaged: the next attempt runs
    /// irrevocably (from `tl2`).
    StmFallback,
    /// A fault-injection point fired.
    Fault { class: FaultClass },
    /// The sentinel's quarantine ladder transitioned for `section`:
    /// `healed == false` is a demotion (the section's next executions
    /// run under the trivially sound global scheme), `healed == true`
    /// a re-admission after its probation elapsed. `probation` is the
    /// number of consecutive clean executions required before (for a
    /// demotion) or served by (for a heal) this transition — it grows
    /// exponentially when a healed section re-offends (flap damping).
    Quarantine {
        section: u32,
        healed: bool,
        probation: u32,
    },
    /// A policy-steered lock release made a wake decision: `depth`
    /// threads were queued on `node`, of which the `woken` with the
    /// minimal policy rank form the preferred batch; `mode` is the
    /// request of the batch's first member. Recorded by the releasing
    /// thread (after its release events) only when a wake policy is
    /// configured — the legacy FIFO path emits nothing, keeping
    /// historical traces byte-identical.
    WakeDecision {
        node: NodeKey,
        mode: Mode,
        depth: u32,
        woken: u32,
    },
    /// The re-inference repair ledger transitioned for `section`:
    /// `accepted == true` means the section healed onto repair
    /// `candidate` (its next executions plan the repaired specs
    /// instead of the seed scheme), `accepted == false` means the
    /// active repair was revoked because it drew a violation itself
    /// (the section falls back to the ordinary quarantine ladder).
    /// Recorded by the worker immediately after the corresponding
    /// [`EventKind::Quarantine`] transition; runs without staged
    /// repairs emit nothing, keeping historical traces byte-identical.
    Reinfer {
        section: u32,
        candidate: u32,
        accepted: bool,
    },
}

/// One recorded event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Global merge order: a monotone counter stamped at record time.
    /// Under the virtual-time scheduler exactly one thread runs at a
    /// time, so epochs give a deterministic total order.
    pub epoch: u64,
    /// Recording thread.
    pub tid: u32,
    /// The thread's virtual clock when the event fired (0 in real-time
    /// runs, which have no virtual clock).
    pub clock: u64,
    /// What happened.
    pub kind: EventKind,
}
