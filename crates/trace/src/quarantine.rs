//! Reconstruction of the sentinel's quarantine ladder from a trace.
//!
//! The online sentinel (`crates/sentinel`) emits a `["qr", section,
//! healed, probation]` event on every ladder transition: a demotion
//! (`healed == 0`) when a section's first uncovered access demotes it
//! to the trivially sound global scheme, and a heal (`healed == 1`)
//! when its probation of consecutive clean executions elapses and the
//! original configuration is re-admitted. This module replays those
//! transitions from a merged trace, producing the per-section history
//! `trace-dump` prints and the corpus tests digest.
//!
//! Truncated traces get the same treatment as the profiler's
//! stale-open-section guard (DESIGN.md §5.4): a quarantine whose heal
//! never made it into the buffer is reported in [`QuarantineHistory::
//! open`] only when the trace is complete. Two truncations count:
//! the recorder dropped events (`dropped > 0`), and the run *crashed*
//! — a thread is still mid-section at trace end (same detection the
//! lockset validator uses), so the trace ends inside a quarantine or
//! inside its probation and the lost tail may hold the heal or a
//! dirty-execution reset. In both cases the half-open entries are
//! *discarded* (counted in [`QuarantineHistory::suppressed`]) instead
//! of being claimed as live state the run may never have been in. A
//! heal with no matching open demotion (possible only on malformed
//! input) is likewise skipped and counted, never fabricated into a
//! transition pair.

use crate::event::EventKind;
use crate::Trace;

/// One ladder transition, in trace order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QuarantineTransition {
    /// Global merge epoch of the transition event.
    pub epoch: u64,
    /// Thread whose execution drove the transition.
    pub tid: u32,
    /// The section whose configuration changed.
    pub section: u32,
    /// `false` = demoted to the global scheme; `true` = re-admitted.
    pub healed: bool,
    /// The probation length attached to the transition (executions to
    /// serve for a demotion, executions served for a heal).
    pub probation: u32,
}

impl std::fmt::Display for QuarantineTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {} tid {}: section {} {} (probation {})",
            self.epoch,
            self.tid,
            self.section,
            if self.healed { "healed" } else { "quarantined" },
            self.probation
        )
    }
}

/// The reconstructed ladder history of one trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QuarantineHistory {
    /// Every transition, in epoch order.
    pub transitions: Vec<QuarantineTransition>,
    /// Sections demoted and not healed by the end of a *complete*
    /// trace (still serving probation). Sorted, deduplicated.
    pub open: Vec<u32>,
    /// Half-open quarantines discarded because the trace is truncated
    /// — the recorder dropped events (`dropped > 0`) or the run
    /// crashed mid-section, ending the trace inside a quarantine or
    /// its probation: the heal may simply be missing from the buffer
    /// or the lost tail, so the guard refuses to report them as live
    /// state.
    pub suppressed: u64,
    /// Heals with no matching open demotion — malformed input, never
    /// produced by the sentinel; skipped rather than paired up.
    pub orphan_heals: u64,
}

impl QuarantineHistory {
    /// Sections that were demoted at least once, sorted, deduplicated.
    pub fn sections(&self) -> Vec<u32> {
        let mut s: Vec<u32> = self
            .transitions
            .iter()
            .filter(|t| !t.healed)
            .map(|t| t.section)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Demotions recorded.
    pub fn demotions(&self) -> u64 {
        self.transitions.iter().filter(|t| !t.healed).count() as u64
    }

    /// Heals recorded.
    pub fn heals(&self) -> u64 {
        self.transitions.iter().filter(|t| t.healed).count() as u64
    }
}

/// Replays the `["qr", …]` events of `trace` into a ladder history.
///
/// Unlike [`crate::validate`], truncated traces are not refused —
/// the transitions that made it into the buffer are still exact; only
/// the *open* set is unknowable, so it is emptied and counted in
/// [`QuarantineHistory::suppressed`] instead.
pub fn quarantine_history(trace: &Trace) -> QuarantineHistory {
    let mut h = QuarantineHistory::default();
    let mut open: Vec<u32> = Vec::new();
    // Per-thread section depth, to detect crash truncation: a thread
    // whose depth never returns to zero died mid-section (injected
    // panic, wedge), so the trace ends inside whatever quarantine or
    // probation was serving at that point.
    let mut depth: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            EventKind::SectionEnter { .. } => {
                *depth.entry(e.tid).or_insert(0) += 1;
            }
            EventKind::SectionExit { .. } => {
                let d = depth.entry(e.tid).or_insert(0);
                *d = d.saturating_sub(1);
            }
            // An aborted STM attempt abandons every open level at once.
            EventKind::StmAbort => {
                depth.insert(e.tid, 0);
            }
            EventKind::Quarantine {
                section,
                healed,
                probation,
            } => {
                if healed {
                    match open.iter().position(|&s| s == section) {
                        Some(i) => {
                            open.remove(i);
                        }
                        None => {
                            h.orphan_heals += 1;
                            continue;
                        }
                    }
                } else {
                    open.push(section);
                }
                h.transitions.push(QuarantineTransition {
                    epoch: e.epoch,
                    tid: e.tid,
                    section,
                    healed,
                    probation,
                });
            }
            _ => {}
        }
    }
    open.sort_unstable();
    open.dedup();
    let crashed = depth.values().any(|&d| d > 0);
    if trace.dropped > 0 || crashed {
        h.suppressed = open.len() as u64;
    } else {
        h.open = open;
    }
    h
}

/// Renders a history the way `trace-dump` prints it.
pub fn render(h: &QuarantineHistory) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "quarantine history: {} demotions, {} heals, {} still quarantined{}{}",
        h.demotions(),
        h.heals(),
        h.open.len(),
        if h.suppressed > 0 {
            format!(" ({} half-open dropped: truncated trace)", h.suppressed)
        } else {
            String::new()
        },
        if h.orphan_heals > 0 {
            format!(" ({} orphan heals skipped)", h.orphan_heals)
        } else {
            String::new()
        }
    );
    for t in &h.transitions {
        let _ = writeln!(out, "  {t}");
    }
    for s in &h.open {
        let _ = writeln!(out, "  section {s}: still serving probation at trace end");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn qr(epoch: u64, section: u32, healed: bool, probation: u32) -> Event {
        Event {
            epoch,
            tid: 0,
            clock: epoch,
            kind: EventKind::Quarantine {
                section,
                healed,
                probation,
            },
        }
    }

    fn trace_of(events: Vec<Event>, dropped: u64) -> Trace {
        Trace {
            meta: vec![("mode".into(), "MultiGrain".into())],
            allocs: Vec::new(),
            events,
            dropped,
        }
    }

    #[test]
    fn demote_heal_pairs_reconstruct() {
        let t = trace_of(
            vec![
                qr(0, 3, false, 4),
                qr(1, 3, true, 4),
                qr(2, 3, false, 8),
                qr(3, 5, false, 4),
            ],
            0,
        );
        let h = quarantine_history(&t);
        assert_eq!(h.transitions.len(), 4);
        assert_eq!(h.demotions(), 3);
        assert_eq!(h.heals(), 1);
        assert_eq!(h.sections(), vec![3, 5]);
        assert_eq!(h.open, vec![3, 5]);
        assert_eq!(h.suppressed, 0);
        assert_eq!(h.orphan_heals, 0);
        // Flap damping is visible in the record: the re-offense
        // carries the grown probation.
        assert_eq!(h.transitions[2].probation, 8);
    }

    #[test]
    fn truncated_traces_drop_half_open_quarantines() {
        let t = trace_of(vec![qr(0, 3, false, 4), qr(1, 7, false, 4)], 12);
        let h = quarantine_history(&t);
        // The transitions that made it into the buffer are exact…
        assert_eq!(h.demotions(), 2);
        // …but the half-open entries are suppressed, not claimed.
        assert!(h.open.is_empty());
        assert_eq!(h.suppressed, 2);
    }

    #[test]
    fn crash_inside_probation_suppresses_the_half_open_entry() {
        let se = |epoch: u64, tid: u32, enter: bool| Event {
            epoch,
            tid,
            clock: epoch,
            kind: if enter {
                EventKind::SectionEnter { section: 3 }
            } else {
                EventKind::SectionExit { section: 3 }
            },
        };
        // Section 3 is demoted, serves part of its probation (a clean
        // enter/exit pair), then the worker dies inside the next
        // execution: the trace ends inside probation with dropped == 0.
        let t = trace_of(
            vec![
                se(0, 1, true),
                qr(1, 3, false, 4),
                se(2, 1, false),
                se(3, 1, true),
                se(4, 1, false),
                se(5, 1, true), // never exited — crash
            ],
            0,
        );
        let h = quarantine_history(&t);
        assert_eq!(h.demotions(), 1);
        assert!(
            h.open.is_empty(),
            "a crashed run cannot prove its live quarantine state"
        );
        assert_eq!(h.suppressed, 1);
        // The same shape with the final execution completing stays
        // exact: the section is genuinely still serving.
        let complete = trace_of(
            vec![
                se(0, 1, true),
                qr(1, 3, false, 4),
                se(2, 1, false),
                se(3, 1, true),
                se(4, 1, false),
            ],
            0,
        );
        let h = quarantine_history(&complete);
        assert_eq!(h.open, vec![3]);
        assert_eq!(h.suppressed, 0);
    }

    #[test]
    fn stm_aborts_do_not_count_as_crashes() {
        let ev = |epoch: u64, kind: EventKind| Event {
            epoch,
            tid: 0,
            clock: epoch,
            kind,
        };
        // An aborted attempt resets the depth; the retry completes.
        let t = trace_of(
            vec![
                ev(0, EventKind::SectionEnter { section: 2 }),
                ev(1, EventKind::StmAbort),
                ev(2, EventKind::SectionEnter { section: 2 }),
                qr(3, 2, false, 4),
                ev(4, EventKind::SectionExit { section: 2 }),
            ],
            0,
        );
        let h = quarantine_history(&t);
        assert_eq!(h.open, vec![2], "abort + clean retry is not a crash");
        assert_eq!(h.suppressed, 0);
    }

    #[test]
    fn orphan_heals_are_skipped_not_fabricated() {
        let t = trace_of(vec![qr(0, 9, true, 4), qr(1, 2, false, 4)], 0);
        let h = quarantine_history(&t);
        assert_eq!(h.orphan_heals, 1);
        assert_eq!(h.heals(), 0, "the orphan must not appear as a transition");
        assert_eq!(h.open, vec![2]);
    }

    #[test]
    fn renders_summarize() {
        let t = trace_of(vec![qr(0, 1, false, 4), qr(1, 1, true, 4)], 0);
        let r = render(&quarantine_history(&t));
        assert!(r.contains("1 demotions, 1 heals, 0 still quarantined"));
        assert!(r.contains("section 1 quarantined"));
        assert!(r.contains("section 1 healed"));
    }
}
