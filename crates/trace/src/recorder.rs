//! Low-overhead event recording: one ring buffer per thread, a shared
//! epoch counter for the merge order, and observer adapters for the
//! `mglock` and `tl2` runtimes.
//!
//! Each worker registers a [`ThreadRecorder`] and appends to it without
//! touching any other thread's buffer; the only shared write per event
//! is one `fetch_add` on the epoch counter. [`Recorder::take`] merges
//! the per-thread buffers into a single epoch-ordered [`Trace`].

use crate::event::{Event, EventKind};
use crate::{AllocRecord, Trace};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Recorder construction options (kept `Copy` so it can ride inside
/// `interp::Options`).
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Maximum events buffered per thread. Events past the cap are
    /// counted in [`Trace::dropped`] and discarded; the lockset
    /// validator refuses truncated traces rather than report false
    /// violations from missing lock events.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1 << 20 }
    }
}

/// One thread's event sink. Appends are uncontended (the buffer mutex
/// is only ever taken by the owning thread and the final merge).
pub struct ThreadRecorder {
    tid: u32,
    capacity: usize,
    epoch: Arc<AtomicU64>,
    /// The owning worker's virtual clock, published before each batch
    /// of events so observer callbacks (which fire inside the lock and
    /// STM runtimes, without access to the worker) stamp correctly.
    clock: AtomicU64,
    buf: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl ThreadRecorder {
    /// Publishes the thread's current virtual clock for subsequent
    /// events.
    pub fn set_clock(&self, clock: u64) {
        self.clock.store(clock, Ordering::Relaxed);
    }

    /// Appends an event stamped with the next global epoch and the
    /// last published clock.
    pub fn record(&self, kind: EventKind) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock();
        if buf.len() < self.capacity {
            buf.push(Event {
                epoch,
                tid: self.tid,
                clock: self.clock.load(Ordering::Relaxed),
                kind,
            });
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Lock-runtime adapter: grants and releases observed by a session are
/// recorded to its thread's buffer with the node and Fig. 6 mode.
impl mglock::LockObserver for ThreadRecorder {
    fn lock_acquired(&self, node: mglock::NodeKey, mode: mglock::Mode) {
        self.record(EventKind::LockAcquire { node, mode });
    }

    fn lock_released(&self, node: mglock::NodeKey, mode: mglock::Mode) {
        self.record(EventKind::LockRelease { node, mode });
    }
}

/// The machine-wide recorder: owns every thread buffer and the epoch
/// counter.
pub struct Recorder {
    epoch: Arc<AtomicU64>,
    capacity: usize,
    threads: Mutex<RecThreads>,
}

#[derive(Default)]
struct RecThreads {
    /// Every recorder ever registered, in registration order (a tid
    /// re-registering — e.g. the init, worker, and check phases all
    /// running as thread 0 — keeps its earlier buffers here).
    all: Vec<Arc<ThreadRecorder>>,
    /// The live recorder per tid, for routing runtime-side events
    /// (`tl2` observer callbacks carry only a thread token).
    current: HashMap<u32, Arc<ThreadRecorder>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new(cfg: TraceConfig) -> Recorder {
        Recorder {
            epoch: Arc::new(AtomicU64::new(0)),
            capacity: cfg.capacity,
            threads: Mutex::new(RecThreads::default()),
        }
    }

    /// Registers (or re-registers) thread `tid`, returning its sink.
    pub fn register(&self, tid: u32) -> Arc<ThreadRecorder> {
        let t = Arc::new(ThreadRecorder {
            tid,
            capacity: self.capacity,
            epoch: Arc::clone(&self.epoch),
            clock: AtomicU64::new(0),
            buf: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        let mut g = self.threads.lock();
        g.all.push(Arc::clone(&t));
        g.current.insert(tid, Arc::clone(&t));
        t
    }

    /// Drains every thread buffer into one epoch-ordered [`Trace`].
    /// Subsequent events land in fresh (empty) buffers.
    pub fn take(&self, meta: Vec<(String, String)>, allocs: Vec<AllocRecord>) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0;
        let g = self.threads.lock();
        for t in &g.all {
            events.append(&mut t.buf.lock());
            dropped += t.dropped.swap(0, Ordering::Relaxed);
        }
        drop(g);
        events.sort_by_key(|e| e.epoch);
        Trace {
            meta,
            allocs,
            events,
            dropped,
        }
    }
}

/// STM adapter: `tl2` reports transaction lifecycle transitions with a
/// thread token, routed to that thread's buffer (stamped with its last
/// published clock).
impl tl2::StmObserver for Recorder {
    fn txn_commit(&self, token: u64, reads: u64, writes: u64) {
        self.to_thread(token, EventKind::StmCommit { reads, writes });
    }

    fn txn_abort(&self, token: u64) {
        self.to_thread(token, EventKind::StmAbort);
    }

    fn txn_fallback(&self, token: u64) {
        self.to_thread(token, EventKind::StmFallback);
    }
}

impl Recorder {
    fn to_thread(&self, token: u64, kind: EventKind) {
        let t = self.threads.lock().current.get(&(token as u32)).cloned();
        if let Some(t) = t {
            t.record(kind);
        }
    }
}
