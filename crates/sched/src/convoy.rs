//! Convoy detection over recorded per-section profiles.
//!
//! A *convoy* is a queue that never drains: waiters pile up behind a
//! long-hold (or frequently re-granted) lock faster than releases
//! retire them, so measured wait grows with queue depth × hold time
//! even though each individual hold is modest. Baseline (FIFO) traces
//! carry no `["wk", …]` wake decisions, so the detector estimates the
//! steady-state queue depth from the wait/hold histograms instead:
//! by Little's law a section whose entries each wait `W` ticks behind
//! holders occupying the lock `H` ticks at a time has, on average,
//! `W / H` predecessors queued ahead of it. The pressure score
//! `depth × H` (≈ mean wait) is what a wake policy can actually
//! recover — re-ordering a queue of depth < 1 buys nothing, however
//! long its waits.
//!
//! Policy-steered traces additionally record measured per-lock queue
//! depths ([`crate::queue_profiles`]); the estimator here is the
//! *trigger* side used on baseline recordings, feeding both the
//! `ali::sched` evaluation harness and the policy-aware adapt
//! candidates (`lockinfer::adapt`).

use trace::SectionProfile;

/// Thresholds steering convoy detection. Pure arithmetic on the
/// profile counters: a policy value fully determines the flag set for
/// a given profile vector.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ConvoyPolicy {
    /// Sections with fewer completed executions are ignored — too
    /// little evidence.
    pub min_entries: u64,
    /// Minimum estimated steady-state queue depth (`mean wait / mean
    /// hold`): below this there is no queue to re-order.
    pub min_depth: f64,
    /// Minimum pressure (`depth × mean hold`, in ticks) — queues on
    /// cheap locks are not worth steering.
    pub min_pressure: f64,
}

impl Default for ConvoyPolicy {
    fn default() -> ConvoyPolicy {
        ConvoyPolicy {
            min_entries: 2,
            min_depth: 1.5,
            min_pressure: 200.0,
        }
    }
}

/// One flagged section.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ConvoyFlag {
    pub section: u32,
    /// Estimated steady-state queue depth (`mean wait / mean hold`).
    pub depth: f64,
    /// Mean hold ticks.
    pub mean_hold: f64,
    /// `depth × mean_hold`: the per-entry wait a perfect policy could
    /// attack.
    pub pressure: f64,
}

/// Flags convoy-prone sections, in section-id order (profiles arrive
/// sorted from [`trace::profile`]).
pub fn detect(profiles: &[SectionProfile], policy: &ConvoyPolicy) -> Vec<ConvoyFlag> {
    let mut out = Vec::new();
    for p in profiles {
        if p.entries < policy.min_entries {
            continue;
        }
        let mean_hold = p.hold.mean();
        let depth = p.wait.mean() / mean_hold.max(1.0);
        let pressure = depth * mean_hold.max(1.0);
        if depth >= policy.min_depth && pressure >= policy.min_pressure {
            out.push(ConvoyFlag {
                section: p.section,
                depth,
                mean_hold,
                pressure,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Histogram;

    fn hist(samples: &[u64]) -> Histogram {
        let mut h = Histogram::default();
        for &s in samples {
            h.add(s);
        }
        h
    }

    fn prof(section: u32, wait: &[u64], hold: &[u64]) -> SectionProfile {
        SectionProfile {
            section,
            entries: wait.len() as u64,
            wait: hist(wait),
            hold: hist(hold),
            ..SectionProfile::default()
        }
    }

    #[test]
    fn deep_queues_on_expensive_locks_are_flagged() {
        // Mean wait 600 behind mean hold 100: depth 6, pressure 600.
        let ps = vec![prof(1, &[500, 700], &[90, 110])];
        let flags = detect(&ps, &ConvoyPolicy::default());
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].section, 1);
        assert!((flags[0].depth - 6.0).abs() < 1e-9);
        assert!((flags[0].pressure - 600.0).abs() < 1e-9);
    }

    #[test]
    fn shallow_or_cheap_queues_are_not() {
        // Depth 0.5: waiters drain faster than they arrive.
        let shallow = prof(1, &[50, 50], &[100, 100]);
        // Depth 10 but pressure 100: a convoy on a trivial lock.
        let cheap = prof(2, &[100, 100], &[10, 10]);
        // Plenty of pressure but a single entry: no evidence.
        let thin = SectionProfile {
            entries: 1,
            ..prof(3, &[10_000], &[100])
        };
        assert!(detect(&[shallow, cheap, thin], &ConvoyPolicy::default()).is_empty());
    }
}
