//! # sched — pluggable deterministic wake policies for the scheduler
//!
//! The inferred multigranular locks are only as good as the runtime
//! that arbitrates them: the virtual-time scheduler (`interp::sim`)
//! originally woke lock waiters in fixed `(clock, tid)` order, so
//! reader/writer convoys and long-hold blockers dominated measured
//! wait even when the lockset was optimal. This crate makes the wake
//! policy an explicit, analyzable component:
//!
//! * [`WakePolicy`] — a *pure* ranking function over recorded state:
//!   the blocked [`Waiter`] snapshots (who waits, on which lock-tree
//!   node, in which mode, for which static section) plus a frozen
//!   per-section expected-hold table derived from
//!   [`trace::profile`] histograms of a prior run. No clocks, no
//!   randomness, no thread-count dependence — identical release
//!   batches rank identically on any machine, at any parallelism,
//!   which is what keeps policy-steered runs replayable.
//! * Built-in policies: [`Fifo`] (the historical `(clock, tid)` order,
//!   extracted verbatim — every waiter ranks 0), [`ShortestExpectedHold`]
//!   (waiters whose section's hold histogram predicts the shortest
//!   occupancy go first), and [`ReaderBatch`] (all shared-mode waiters
//!   rank ahead of writers, so one grant wakes the whole read batch
//!   and breaks writer-preference convoys).
//! * [`convoy`] — flags sections whose estimated queue depth × hold
//!   time exceeds a threshold, and [`queue_profiles`] builds per-lock
//!   waiter-queue-depth histograms from recorded `["wk", …]` wake
//!   decisions.
//! * [`report`] — the machine-readable outcome of a replay-driven
//!   policy evaluation (`ali::sched`), mirroring
//!   `lockinfer::adapt::DecisionReport`.
//!
//! The scheduler integration contract: at every lock release the
//! scheduler collects the current waiter queue (ordered by thread id —
//! a deterministic order under the virtual-time scheduler), calls
//! [`rank_batch`], stores each waiter's rank, and breaks clock ties by
//! `(clock, rank, tid)` instead of `(clock, tid)`. Clocks are never
//! altered by the policy — only the acquisition order among waiters
//! promoted at the same release changes, which is exactly the degree
//! of freedom that affects measured wait. Under [`Fifo`] every rank is
//! 0, so `(clock, 0, tid)` reproduces the historical schedule — and
//! the historical traces — byte-identically.

pub mod convoy;
pub mod report;

use mglock::{Mode, NodeKey};
use std::collections::BTreeMap;
use trace::{EventKind, Histogram, SectionProfile, Trace};

pub use convoy::{detect, ConvoyFlag, ConvoyPolicy};
pub use report::{select, PolicyCost, PolicyOutcome, SchedReport, SkippedPolicy};

/// Snapshot of one blocked thread, recorded when it parks on a lock.
/// Everything a policy may consult; all fields come from recorded
/// state, never from wall-clock time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Waiter {
    /// Logical thread id.
    pub tid: u32,
    /// The thread's virtual clock when it began waiting.
    pub since: u64,
    /// Static section id the thread is trying to enter (u32::MAX when
    /// unknown — e.g. a wait outside any section).
    pub section: u32,
    /// The lock-tree node the acquisition cursor blocked on.
    pub node: NodeKey,
    /// The mode requested at that node.
    pub mode: Mode,
    /// Release grants that have elapsed since the thread parked,
    /// filled in by the scheduler at each release (callers snapshotting
    /// a fresh waiter pass 0). A deterministic age — it counts recorded
    /// scheduling events, never wall-clock time — so aging policies
    /// stay replayable.
    pub age: u64,
}

/// Which built-in policy to run. The tags are stable: they round-trip
/// through `run.sched_policy` trace metadata.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// Historical `(clock, tid)` order: every waiter ranks 0.
    Fifo,
    /// Waiters whose section's recorded hold histogram predicts the
    /// shortest occupancy are woken first.
    ShortestExpectedHold,
    /// All shared-mode (read-side) waiters rank ahead of writers.
    ReaderBatch,
}

impl PolicyKind {
    /// Every built-in policy, in evaluation order ([`Fifo`] first —
    /// it is the baseline).
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Fifo,
        PolicyKind::ShortestExpectedHold,
        PolicyKind::ReaderBatch,
    ];

    /// Stable machine-readable tag (trace metadata, reports).
    pub fn tag(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::ShortestExpectedHold => "seh",
            PolicyKind::ReaderBatch => "rbatch",
        }
    }

    pub fn from_tag(s: &str) -> Option<PolicyKind> {
        Some(match s {
            "fifo" => PolicyKind::Fifo,
            "seh" => PolicyKind::ShortestExpectedHold,
            "rbatch" => PolicyKind::ReaderBatch,
            _ => return None,
        })
    }
}

/// A wake policy plus the recorded state it closes over. Serializable
/// (to `run.sched_*` trace metadata) so a policy-steered run replays
/// bit-for-bit from its trace alone.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SchedConfig {
    pub policy: PolicyKind,
    /// Frozen per-section expected hold times `(section, ticks)`,
    /// sorted by section id — the mean of a prior run's hold
    /// histograms. Only [`PolicyKind::ShortestExpectedHold`] consults
    /// it, but it is carried (and stamped) for every policy so the
    /// metadata fully determines the ranking function.
    pub expected_hold: Vec<(u32, u64)>,
    /// Writer-starvation bound for [`PolicyKind::ReaderBatch`]: a
    /// waiter that has sat through at least this many release grants
    /// jumps into the preferred batch regardless of its mode. `0`
    /// disables aging (the pre-aging behavior); other policies carry
    /// the knob but ignore it.
    pub aging: u64,
}

impl SchedConfig {
    /// The baseline configuration: historical FIFO order, no profile.
    pub fn fifo() -> SchedConfig {
        SchedConfig {
            policy: PolicyKind::Fifo,
            expected_hold: Vec::new(),
            aging: 0,
        }
    }

    /// Builds the configuration for `policy` from a prior run's
    /// per-section profiles (the record → profile → re-run loop).
    /// [`PolicyKind::ReaderBatch`] gets the default aging bound so
    /// steered runs never starve writers unboundedly.
    pub fn from_profiles(policy: PolicyKind, profiles: &[SectionProfile]) -> SchedConfig {
        let mut expected_hold: Vec<(u32, u64)> = profiles
            .iter()
            .filter(|p| p.hold.count > 0)
            .map(|p| (p.section, p.hold.mean().round() as u64))
            .collect();
        expected_hold.sort_unstable();
        SchedConfig {
            policy,
            expected_hold,
            aging: match policy {
                PolicyKind::ReaderBatch => ReaderBatch::DEFAULT_AGING,
                _ => 0,
            },
        }
    }

    /// Instantiates the ranking function.
    pub fn build(&self) -> Box<dyn WakePolicy> {
        match self.policy {
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::ShortestExpectedHold => {
                Box::new(ShortestExpectedHold::new(&self.expected_hold))
            }
            PolicyKind::ReaderBatch => Box::new(ReaderBatch { aging: self.aging }),
        }
    }

    /// The expected-hold table as trace metadata: `"sec:hold,…"`
    /// (empty string when the table is empty).
    pub fn holds_string(&self) -> String {
        let mut s = String::new();
        for (i, (sec, hold)) in self.expected_hold.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{sec}:{hold}"));
        }
        s
    }

    /// Parses [`SchedConfig::holds_string`] output.
    pub fn parse_holds(s: &str) -> Option<Vec<(u32, u64)>> {
        if s.is_empty() {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        for part in s.split(',') {
            let (sec, hold) = part.split_once(':')?;
            out.push((sec.parse().ok()?, hold.parse().ok()?));
        }
        Some(out)
    }
}

/// A deterministic wake-ordering policy: a pure function from one
/// waiter (in the context of the whole release batch) to a rank.
/// Lower ranks wake first among clock ties; waiters that never blocked
/// implicitly rank 0, so a policy that wants its preferred waiters to
/// compete on equal terms with running threads returns 0 for them.
pub trait WakePolicy: Send + Sync {
    /// Stable policy name (matches [`PolicyKind::tag`]).
    fn name(&self) -> &'static str;

    /// Rank `waiter` within `queue` (the full batch being promoted,
    /// ordered by thread id). Must be a pure function of its
    /// arguments.
    fn rank(&self, waiter: &Waiter, queue: &[Waiter]) -> u64;
}

/// The historical `(clock, tid)` order, extracted verbatim: every
/// waiter ranks 0, so ties still break by thread id alone.
pub struct Fifo;

impl WakePolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn rank(&self, _waiter: &Waiter, _queue: &[Waiter]) -> u64 {
        0
    }
}

/// Wake the waiter whose section is expected to get out of the way
/// fastest (shortest-job-first over the recorded hold histograms).
/// Sections absent from the frozen table rank after every known one.
pub struct ShortestExpectedHold {
    holds: BTreeMap<u32, u64>,
    /// Rank for sections with no recorded hold: one past the largest
    /// known expected hold, so unknown work never jumps the queue.
    unknown: u64,
}

impl ShortestExpectedHold {
    pub fn new(expected_hold: &[(u32, u64)]) -> ShortestExpectedHold {
        let holds: BTreeMap<u32, u64> = expected_hold.iter().copied().collect();
        let unknown = holds.values().copied().max().unwrap_or(0).saturating_add(1);
        ShortestExpectedHold { holds, unknown }
    }
}

impl WakePolicy for ShortestExpectedHold {
    fn name(&self) -> &'static str {
        "seh"
    }

    fn rank(&self, waiter: &Waiter, _queue: &[Waiter]) -> u64 {
        self.holds
            .get(&waiter.section)
            .copied()
            .unwrap_or(self.unknown)
    }
}

/// Wake every shared-mode waiter ahead of the writers: the whole read
/// batch runs in parallel under compatible grants, so one release
/// drains it instead of letting an interleaved writer reconvoy the
/// readers one by one. A steady read stream would starve writers
/// forever, so `aging` bounds the wait: a writer that has sat through
/// `aging` release grants jumps the batch (0 = unbounded).
pub struct ReaderBatch {
    /// Grants a non-shared waiter may sit out before it is promoted
    /// into the preferred batch (0 disables aging).
    pub aging: u64,
}

impl ReaderBatch {
    /// Default writer-starvation bound used by
    /// [`SchedConfig::from_profiles`]: after sitting through this many
    /// release grants, a writer ranks with the read batch. Small
    /// enough that writers land within one reader drain, large enough
    /// that a momentary read burst still batches.
    pub const DEFAULT_AGING: u64 = 4;
}

impl WakePolicy for ReaderBatch {
    fn name(&self) -> &'static str {
        "rbatch"
    }

    fn rank(&self, waiter: &Waiter, _queue: &[Waiter]) -> u64 {
        // Read-side requests are those compatible with a shared
        // holder: S itself and the IS intention on the path to a
        // shared descendant. IX/SIX/X announce or perform writes —
        // they wait behind the batch until their age crosses the
        // starvation bound.
        if waiter.mode.compatible(Mode::S) || (self.aging > 0 && waiter.age >= self.aging) {
            0
        } else {
            1
        }
    }
}

/// One wake decision, mirroring the `["wk", …]` trace event: at a
/// release, `depth` waiters were queued on `node`, of which the
/// `woken` with the minimal rank form the preferred batch; `mode` is
/// the request of the batch's first (lowest-tid) member.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WakeGrant {
    pub node: NodeKey,
    pub mode: Mode,
    pub depth: u32,
    pub woken: u32,
}

/// Ranks a whole release batch. Returns the per-waiter ranks (aligned
/// with `queue`) and one [`WakeGrant`] per distinct blocked-on node,
/// in `NodeKey` order. Deterministic given `queue` order.
pub fn rank_batch(policy: &dyn WakePolicy, queue: &[Waiter]) -> (Vec<u64>, Vec<WakeGrant>) {
    let ranks: Vec<u64> = queue.iter().map(|w| policy.rank(w, queue)).collect();
    let mut per_node: BTreeMap<NodeKey, Vec<usize>> = BTreeMap::new();
    for (i, w) in queue.iter().enumerate() {
        per_node.entry(w.node).or_default().push(i);
    }
    let grants = per_node
        .into_iter()
        .map(|(node, idxs)| {
            let min_rank = idxs.iter().map(|&i| ranks[i]).min().unwrap_or(0);
            let preferred: Vec<usize> = idxs
                .iter()
                .copied()
                .filter(|&i| ranks[i] == min_rank)
                .collect();
            WakeGrant {
                node,
                mode: queue[preferred[0]].mode,
                depth: idxs.len() as u32,
                woken: preferred.len() as u32,
            }
        })
        .collect();
    (ranks, grants)
}

/// Per-lock waiter-queue-depth histograms, reconstructed from the
/// recorded `["wk", …]` wake decisions of a policy-steered trace.
/// Sorted by node key.
pub fn queue_profiles(trace: &Trace) -> Vec<(NodeKey, Histogram)> {
    let mut per_node: BTreeMap<NodeKey, Histogram> = BTreeMap::new();
    for e in &trace.events {
        if let EventKind::WakeDecision { node, depth, .. } = e.kind {
            per_node.entry(node).or_default().add(depth as u64);
        }
    }
    per_node.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(tid: u32, section: u32, node: NodeKey, mode: Mode) -> Waiter {
        Waiter {
            tid,
            since: 100 + tid as u64,
            section,
            node,
            mode,
            age: 0,
        }
    }

    #[test]
    fn policy_tags_round_trip() {
        for k in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(PolicyKind::from_tag("lifo"), None);
    }

    #[test]
    fn fifo_ranks_everyone_zero() {
        let q = vec![
            w(0, 1, NodeKey::Root, Mode::X),
            w(3, 2, NodeKey::Pts(4), Mode::S),
        ];
        let (ranks, grants) = rank_batch(&Fifo, &q);
        assert_eq!(ranks, vec![0, 0]);
        // One grant per distinct node; under FIFO the whole queue is
        // the preferred batch.
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|g| g.depth == 1 && g.woken == 1));
    }

    #[test]
    fn seh_ranks_by_frozen_hold_table() {
        let cfg = SchedConfig {
            policy: PolicyKind::ShortestExpectedHold,
            expected_hold: vec![(1, 40), (2, 7)],
            aging: 0,
        };
        let p = cfg.build();
        let q = vec![
            w(0, 1, NodeKey::Pts(0), Mode::X),
            w(1, 2, NodeKey::Pts(0), Mode::X),
            w(2, 9, NodeKey::Pts(0), Mode::X), // unprofiled section
        ];
        let (ranks, grants) = rank_batch(p.as_ref(), &q);
        assert_eq!(ranks, vec![40, 7, 41]);
        assert_eq!(
            grants,
            vec![WakeGrant {
                node: NodeKey::Pts(0),
                mode: Mode::X,
                depth: 3,
                woken: 1,
            }]
        );
    }

    #[test]
    fn seh_config_builds_from_profiles() {
        let mut hold = Histogram::default();
        hold.add(10);
        hold.add(20);
        let profiles = vec![SectionProfile {
            section: 3,
            entries: 2,
            hold,
            ..SectionProfile::default()
        }];
        let cfg = SchedConfig::from_profiles(PolicyKind::ShortestExpectedHold, &profiles);
        assert_eq!(cfg.expected_hold, vec![(3, 15)]);
    }

    #[test]
    fn reader_batch_prefers_shared_modes() {
        let q = vec![
            w(0, 1, NodeKey::Pts(0), Mode::X),
            w(1, 1, NodeKey::Pts(0), Mode::S),
            w(2, 1, NodeKey::Root, Mode::Is),
            w(3, 1, NodeKey::Pts(0), Mode::S),
        ];
        let (ranks, grants) = rank_batch(&ReaderBatch { aging: 0 }, &q);
        assert_eq!(ranks, vec![1, 0, 0, 0]);
        // Pts(0): three waiters, the two readers form the batch.
        let pts = grants.iter().find(|g| g.node == NodeKey::Pts(0)).unwrap();
        assert_eq!((pts.depth, pts.woken, pts.mode), (3, 2, Mode::S));
    }

    #[test]
    fn reader_batch_aging_bounds_writer_starvation() {
        let mut q = vec![
            w(0, 1, NodeKey::Pts(0), Mode::X),
            w(1, 1, NodeKey::Pts(0), Mode::S),
            w(2, 1, NodeKey::Pts(0), Mode::S),
        ];
        // Fresh writer: waits behind the read batch.
        let (ranks, _) = rank_batch(&ReaderBatch { aging: 3 }, &q);
        assert_eq!(ranks, vec![1, 0, 0]);
        // The writer has sat through three grants: it jumps the batch.
        q[0].age = 3;
        let (ranks, grants) = rank_batch(&ReaderBatch { aging: 3 }, &q);
        assert_eq!(ranks, vec![0, 0, 0]);
        assert_eq!((grants[0].depth, grants[0].woken), (3, 3));
        // Aging 0 keeps the unbounded pre-aging behavior.
        let (ranks, _) = rank_batch(&ReaderBatch { aging: 0 }, &q);
        assert_eq!(ranks, vec![1, 0, 0]);
        // from_profiles arms the default bound for ReaderBatch only.
        let cfg = SchedConfig::from_profiles(PolicyKind::ReaderBatch, &[]);
        assert_eq!(cfg.aging, ReaderBatch::DEFAULT_AGING);
        let cfg = SchedConfig::from_profiles(PolicyKind::Fifo, &[]);
        assert_eq!(cfg.aging, 0);
    }

    #[test]
    fn holds_metadata_round_trips() {
        let cfg = SchedConfig {
            policy: PolicyKind::ShortestExpectedHold,
            expected_hold: vec![(0, 12), (7, 3400)],
            aging: 0,
        };
        let s = cfg.holds_string();
        assert_eq!(s, "0:12,7:3400");
        assert_eq!(SchedConfig::parse_holds(&s), Some(cfg.expected_hold));
        assert_eq!(SchedConfig::parse_holds(""), Some(Vec::new()));
        assert_eq!(SchedConfig::parse_holds("1:2,junk"), None);
    }

    #[test]
    fn queue_profiles_aggregate_wake_decisions() {
        use trace::Event;
        let wk = |node, depth| Event {
            epoch: 0,
            tid: 0,
            clock: 0,
            kind: EventKind::WakeDecision {
                node,
                mode: Mode::X,
                depth,
                woken: 1,
            },
        };
        let t = Trace {
            events: vec![
                wk(NodeKey::Pts(1), 3),
                wk(NodeKey::Pts(1), 5),
                wk(NodeKey::Root, 1),
            ],
            ..Trace::default()
        };
        let qp = queue_profiles(&t);
        assert_eq!(qp.len(), 2);
        assert_eq!(qp[0].0, NodeKey::Root);
        assert_eq!(qp[1].0, NodeKey::Pts(1));
        assert_eq!(qp[1].1.count, 2);
        assert_eq!(qp[1].1.sum, 8);
    }
}
