//! The machine-readable outcome of one replay-driven policy
//! evaluation (the `ali::sched` harness): baseline cost under FIFO,
//! the cost of each alternative policy re-run on the identical
//! recorded schedule, the convoy evidence that motivated the
//! evaluation, and the selection — strict measured wait reduction,
//! mirroring `lockinfer::adapt::select`.

use crate::convoy::ConvoyFlag;
use crate::PolicyKind;
use trace::SectionProfile;

/// Total cost of one run, summed over every section profile of its
/// trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PolicyCost {
    /// Σ wait ticks across all outermost section executions.
    pub total_wait: u64,
    /// Σ hold ticks.
    pub total_hold: u64,
    /// Virtual makespan of the worker phase.
    pub makespan: u64,
}

impl PolicyCost {
    /// Sums the profile histograms of one trace.
    pub fn from_profiles(profiles: &[SectionProfile], makespan: u64) -> PolicyCost {
        let mut c = PolicyCost {
            makespan,
            ..PolicyCost::default()
        };
        for p in profiles {
            c.total_wait = c.total_wait.saturating_add(p.wait.sum);
            c.total_hold = c.total_hold.saturating_add(p.hold.sum);
        }
        c
    }
}

/// One evaluated policy: the kind plus its measured replay cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PolicyOutcome {
    pub policy: PolicyKind,
    pub cost: PolicyCost,
}

/// A policy whose candidate re-run produced an unusable recording
/// (e.g. the steered trace overflowed its ring): surfaced in the
/// report instead of silently profiling bogus events, and excluded
/// from selection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SkippedPolicy {
    pub policy: PolicyKind,
    pub reason: String,
}

/// Picks the winning policy: strictly lower total replayed wait than
/// the FIFO baseline, ties broken by lower makespan, then by
/// evaluation order. `None` when FIFO stands.
pub fn select(baseline: PolicyCost, outcomes: &[PolicyOutcome]) -> Option<usize> {
    outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.cost.total_wait < baseline.total_wait)
        .min_by_key(|(i, o)| (o.cost.total_wait, o.cost.makespan, *i))
        .map(|(i, _)| i)
}

/// The full evaluation record for one workload.
#[derive(Clone, PartialEq, Debug)]
pub struct SchedReport {
    /// Workload / run name.
    pub name: String,
    /// Execution mode of the recorded run.
    pub mode: String,
    /// Cost of the recorded FIFO baseline.
    pub baseline: PolicyCost,
    /// Every alternative policy evaluated, in [`PolicyKind::ALL`]
    /// order (minus the baseline).
    pub evaluated: Vec<PolicyOutcome>,
    /// Index into `evaluated` of the selected policy, if any.
    pub selected: Option<usize>,
    /// Convoy evidence from the baseline profiles.
    pub convoys: Vec<ConvoyFlag>,
    /// Policies whose candidate recordings were unusable, in
    /// [`PolicyKind::ALL`] order.
    pub skipped: Vec<SkippedPolicy>,
}

impl SchedReport {
    /// The selected outcome, if any policy beat the baseline.
    pub fn winner(&self) -> Option<&PolicyOutcome> {
        self.selected.map(|i| &self.evaluated[i])
    }

    /// Canonical JSON encoding (hand-rolled — the build environment
    /// has no serde; fixed key order, no whitespace). Floats print
    /// with one decimal so the encoding is stable across platforms.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn push_cost(out: &mut String, c: PolicyCost) {
            let _ = write!(
                out,
                "{{\"wait\":{},\"hold\":{},\"makespan\":{}}}",
                c.total_wait, c.total_hold, c.makespan
            );
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"mode\":\"{}\",\"baseline\":",
            self.name, self.mode
        );
        push_cost(&mut out, self.baseline);
        out.push_str(",\"policies\":[");
        for (i, o) in self.evaluated.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"policy\":\"{}\",\"cost\":", o.policy.tag());
            push_cost(&mut out, o.cost);
            out.push('}');
        }
        out.push_str("],\"convoys\":[");
        for (i, c) in self.convoys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"section\":{},\"depth\":{:.1},\"hold\":{:.1},\"pressure\":{:.1}}}",
                c.section, c.depth, c.mean_hold, c.pressure
            );
        }
        out.push_str("],\"skipped\":[");
        for (i, s) in self.skipped.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"policy\":\"{}\",\"note\":\"{}\"}}",
                s.policy.tag(),
                s.reason
            );
        }
        out.push_str("],\"selected\":");
        match self.selected {
            Some(i) => {
                let _ = write!(out, "{i}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_requires_strict_wait_improvement() {
        let b = PolicyCost {
            total_wait: 100,
            makespan: 50,
            ..PolicyCost::default()
        };
        let o = |policy, total_wait, makespan| PolicyOutcome {
            policy,
            cost: PolicyCost {
                total_wait,
                makespan,
                ..PolicyCost::default()
            },
        };
        let worse = o(PolicyKind::ShortestExpectedHold, 120, 50);
        let tie = o(PolicyKind::ReaderBatch, 100, 10);
        assert_eq!(select(b, &[worse, tie]), None);
        let better = o(PolicyKind::ShortestExpectedHold, 80, 60);
        let best = o(PolicyKind::ReaderBatch, 80, 55);
        assert_eq!(select(b, &[worse, better, best]), Some(2));
        assert_eq!(select(b, &[best, better]), Some(0));
    }

    #[test]
    fn report_json_is_canonical() {
        let r = SchedReport {
            name: "list".into(),
            mode: "MultiGrain".into(),
            baseline: PolicyCost {
                total_wait: 900,
                total_hold: 300,
                makespan: 1200,
            },
            evaluated: vec![PolicyOutcome {
                policy: PolicyKind::ShortestExpectedHold,
                cost: PolicyCost {
                    total_wait: 700,
                    total_hold: 300,
                    makespan: 1100,
                },
            }],
            selected: Some(0),
            convoys: vec![ConvoyFlag {
                section: 2,
                depth: 6.0,
                mean_hold: 100.0,
                pressure: 600.0,
            }],
            skipped: vec![SkippedPolicy {
                policy: PolicyKind::ReaderBatch,
                reason: "trace dropped 12 events".into(),
            }],
        };
        let j = r.to_json();
        assert_eq!(
            j,
            "{\"name\":\"list\",\"mode\":\"MultiGrain\",\
             \"baseline\":{\"wait\":900,\"hold\":300,\"makespan\":1200},\
             \"policies\":[{\"policy\":\"seh\",\
             \"cost\":{\"wait\":700,\"hold\":300,\"makespan\":1100}}],\
             \"convoys\":[{\"section\":2,\"depth\":6.0,\"hold\":100.0,\"pressure\":600.0}],\
             \"skipped\":[{\"policy\":\"rbatch\",\"note\":\"trace dropped 12 events\"}],\
             \"selected\":0}"
        );
        assert_eq!(r.winner().unwrap().policy, PolicyKind::ShortestExpectedHold);
    }
}
