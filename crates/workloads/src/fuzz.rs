//! Random *runnable* programs for differential and soundness testing.
//!
//! Unlike [`crate::spec_like`] (analysis-only stress programs), these
//! programs are generated under a discipline that makes them safe to
//! execute: every pointer variable is non-null by construction (struct
//! pointer fields are initialized right after allocation), loops are
//! bounded, and arithmetic avoids division. Atomic sections are
//! sprinkled over the statement stream.
//!
//! Used by the integration suite to check, over many random programs:
//!
//! * the transformed program passes the Validate-mode Theorem-1 checker
//!   for every `k`;
//! * Global, MultiGrain, Stm, and Validate execution all compute the
//!   same result (single-threaded differential equivalence).

use crate::RunSpec;
use std::fmt::Write as _;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const N_STRUCTS: usize = 3;
const FIELDS: usize = 2;

struct Gen {
    rng: Rng,
    out: String,
    /// Non-null pointer variables in scope, with their struct type.
    ptrs: Vec<(String, usize)>,
    /// Integer variables in scope.
    ints: Vec<String>,
    n_locals: usize,
    depth: usize,
    in_atomic: bool,
}

impl Gen {
    fn pad(&self) -> String {
        "    ".repeat(self.depth)
    }

    fn fresh(&mut self) -> String {
        self.n_locals += 1;
        format!("v{}", self.n_locals)
    }

    /// Allocates a struct and fully initializes its pointer fields so
    /// every later field read yields a non-null pointer.
    fn alloc_stmt(&mut self) -> (String, usize) {
        let ty = self.rng.below(N_STRUCTS);
        let v = self.fresh();
        let pad = self.pad();
        let _ = writeln!(self.out, "{pad}let {v} = new s{ty};");
        for f in 0..FIELDS {
            let target = if self.ptrs.is_empty() || self.rng.below(3) == 0 {
                v.clone()
            } else {
                self.pick_ptr_of((ty + 1) % N_STRUCTS)
                    .unwrap_or_else(|| v.clone())
            };
            let _ = writeln!(self.out, "{pad}{v}->s{ty}_f{f} = {target};");
        }
        self.ptrs.push((v.clone(), ty));
        (v, ty)
    }

    fn pick_ptr(&mut self) -> (String, usize) {
        let i = self.rng.below(self.ptrs.len());
        self.ptrs[i].clone()
    }

    fn pick_ptr_of(&mut self, ty: usize) -> Option<String> {
        let matching: Vec<&(String, usize)> = self.ptrs.iter().filter(|(_, t)| *t == ty).collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching[self.rng.below(matching.len())].0.clone())
        }
    }

    fn pick_int(&mut self) -> String {
        if self.ints.is_empty() {
            return format!("{}", self.rng.below(100));
        }
        let i = self.rng.below(self.ints.len());
        self.ints[i].clone()
    }

    fn stmt(&mut self) {
        let pad = self.pad();
        match self.rng.below(12) {
            0 | 1 => {
                self.alloc_stmt();
            }
            2 | 3 => {
                // Follow a field: the discipline guarantees non-null.
                let (x, ty) = self.pick_ptr();
                let f = self.rng.below(FIELDS);
                let v = self.fresh();
                let _ = writeln!(self.out, "{pad}let {v} = {x}->s{ty}_f{f};");
                // The field holds a pointer whose type we tracked at
                // initialization time — but stores may have retargeted
                // it within the same class; the class-compatible type is
                // (ty + 1) % N (stores keep the typed discipline).
                self.ptrs.push((v, (ty + 1) % N_STRUCTS));
            }
            4 | 5 => {
                // Retarget a field, keeping the typed discipline.
                let (x, ty) = self.pick_ptr();
                let f = self.rng.below(FIELDS);
                let want = (ty + 1) % N_STRUCTS;
                if let Some(y) = self.pick_ptr_of(want) {
                    let _ = writeln!(self.out, "{pad}{x}->s{ty}_f{f} = {y};");
                } else {
                    let (y, _) = self.alloc_into(want);
                    let pad = self.pad();
                    let _ = writeln!(self.out, "{pad}{x}->s{ty}_f{f} = {y};");
                }
            }
            6 => {
                // Integer work over the shared scratch array.
                let v = self.fresh();
                let i = self.pick_int();
                let _ = writeln!(self.out, "{pad}let {v} = scratch[({i}) % 16] + 1;");
                let j = self.pick_int();
                let _ = writeln!(self.out, "{pad}scratch[({j}) % 16] = {v};");
                self.ints.push(v);
            }
            7 if self.depth < 3 => {
                let a = self.pick_int();
                let b = self.pick_int();
                let _ = writeln!(self.out, "{pad}if (({a}) % 3 < ({b}) % 3) {{");
                let n = 1 + self.rng.below(3);
                self.nest(n);
                let _ = writeln!(self.out, "{pad}}} else {{");
                let n = 1 + self.rng.below(2);
                self.nest(n);
                let _ = writeln!(self.out, "{pad}}}");
            }
            8 if self.depth < 3 => {
                let c = self.fresh();
                let bound = 1 + self.rng.below(4);
                let _ = writeln!(self.out, "{pad}let {c} = 0;");
                let _ = writeln!(self.out, "{pad}while ({c} < {bound}) {{");
                let inner_pad = "    ".repeat(self.depth + 1);
                let _ = writeln!(self.out, "{inner_pad}{c} = {c} + 1;");
                let n = 1 + self.rng.below(2);
                self.nest(n);
                let _ = writeln!(self.out, "{pad}}}");
            }
            9 if !self.in_atomic && self.depth < 3 => {
                // An atomic section over a nested statement block.
                let _ = writeln!(self.out, "{pad}atomic {{");
                self.in_atomic = true;
                let n = 2 + self.rng.below(4);
                self.nest(n);
                self.in_atomic = false;
                let _ = writeln!(self.out, "{pad}}}");
            }
            10 => {
                // Publish a pointer through a global (class mixing).
                let g = self.rng.below(N_STRUCTS);
                if let Some(x) = self.pick_ptr_of(g) {
                    let _ = writeln!(self.out, "{pad}g{g} = {x};");
                    let v = self.fresh();
                    let pad = self.pad();
                    let _ = writeln!(self.out, "{pad}let {v} = g{g};");
                    self.ptrs.push((v, g));
                }
            }
            _ => {
                let v = self.fresh();
                let a = self.pick_int();
                let _ = writeln!(self.out, "{pad}let {v} = ({a}) * 3 + 1;");
                self.ints.push(v);
            }
        }
    }

    fn alloc_into(&mut self, ty: usize) -> (String, usize) {
        let v = self.fresh();
        let pad = self.pad();
        let _ = writeln!(self.out, "{pad}let {v} = new s{ty};");
        for f in 0..FIELDS {
            let _ = writeln!(self.out, "{pad}{v}->s{ty}_f{f} = {v};");
        }
        self.ptrs.push((v.clone(), ty));
        (v, ty)
    }

    fn nest(&mut self, n: usize) {
        self.depth += 1;
        let ptrs = self.ptrs.len();
        let ints = self.ints.len();
        for _ in 0..n {
            self.stmt();
        }
        self.ptrs.truncate(ptrs);
        self.ints.truncate(ints);
        self.depth -= 1;
    }
}

/// Generates a runnable random program whose `main` returns a checksum
/// of the shared scratch array — identical across execution modes for
/// single-threaded runs.
pub fn runnable(seed: u64, stmts: usize) -> RunSpec {
    let mut g = Gen {
        rng: Rng(seed ^ 0xFA57_F00D),
        out: String::new(),
        ptrs: Vec::new(),
        ints: Vec::new(),
        n_locals: 0,
        depth: 0,
        in_atomic: false,
    };
    for s in 0..N_STRUCTS {
        let fields: Vec<String> = (0..FIELDS).map(|f| format!("s{s}_f{f};")).collect();
        let _ = writeln!(g.out, "struct s{s} {{ {} }}", fields.join(" "));
    }
    let globals: Vec<String> = (0..N_STRUCTS).map(|i| format!("g{i}")).collect();
    let _ = writeln!(g.out, "global {}, scratch;", globals.join(", "));
    let _ = writeln!(g.out, "fn main() {{");
    g.depth = 1;
    let _ = writeln!(g.out, "    scratch = new(16);");
    // Seed the pools so every template has material.
    g.alloc_stmt();
    g.alloc_stmt();
    for i in 0..N_STRUCTS {
        let x = g.pick_ptr_of(i).map(|p| p.to_string());
        if let Some(x) = x {
            let _ = writeln!(g.out, "    g{i} = {x};");
        } else {
            let (v, _) = g.alloc_into(i);
            let _ = writeln!(g.out, "    g{i} = {v};");
        }
    }
    for _ in 0..stmts {
        g.stmt();
    }
    // Checksum.
    let _ = writeln!(g.out, "    let sum = 0;");
    let _ = writeln!(g.out, "    let i = 0;");
    let _ = writeln!(
        g.out,
        "    while (i < 16) {{ sum = sum + scratch[i] * (i + 1); i = i + 1; }}"
    );
    let _ = writeln!(g.out, "    return sum;");
    let _ = writeln!(g.out, "}}");
    RunSpec {
        name: format!("fuzz-{seed}"),
        source: g.out,
        init: ("main", vec![]),
        worker: ("main", vec![]),
        check: None,
        heap_cells: 1 << 20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..30 {
            let spec = runnable(seed, 40);
            lir::compile(&spec.source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", spec.source));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(runnable(5, 30).source, runnable(5, 30).source);
        assert_ne!(runnable(5, 30).source, runnable(6, 30).source);
    }
}
