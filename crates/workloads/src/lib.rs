//! # workloads — the evaluation programs of §6.1
//!
//! Mini-language sources for every program in the paper's evaluation:
//!
//! * [`micro`] — the data-structure micro-benchmarks (`list`,
//!   `hashtable`, `rbtree`, `hashtable-2`, `TH`) with the paper's
//!   put/get/remove harness, nop dilution, and *low*/*high* contention
//!   mixes;
//! * [`stamp`] — STAMP-like kernels (`genome`, `vacation`, `kmeans`,
//!   `bayes`, `labyrinth`) preserving each benchmark's concurrency
//!   shape (see DESIGN.md for the substitution argument);
//! * [`spec_like`] — a synthetic generator producing SPECint-sized
//!   programs for the analysis-scalability half of Table 1;
//! * [`scale`] — layered call-graph programs scaling depth, width, and
//!   section count independently, for the `analysis-bench` throughput
//!   benchmark;
//! * [`fuzz`] — runnable random programs for the differential and
//!   Theorem-1 soundness property tests.
//!
//! A [`RunSpec`] bundles a source with its init/worker/check entry
//! points; the `bench` crate's harness compiles, transforms, and runs
//! it under each execution mode.

pub mod fuzz;
pub mod micro;
pub mod scale;
pub mod spec_like;
pub mod stamp;

/// Contention setting of the micro-benchmark harness (§6.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Contention {
    /// Gets four times more common than puts.
    Low,
    /// Puts four times more often (four out of five operations).
    High,
}

impl Contention {
    /// The paper's table suffix (`-low` / `-high`).
    pub fn suffix(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::High => "high",
        }
    }
}

/// A runnable benchmark program.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Display name, matching the paper's tables where applicable.
    pub name: String,
    /// Mini-language source text.
    pub source: String,
    /// Single-threaded setup entry `(function, args)`.
    pub init: (&'static str, Vec<i64>),
    /// Per-thread timed entry `(function, args)`.
    pub worker: (&'static str, Vec<i64>),
    /// Post-run invariant checker (asserts internally), if any.
    pub check: Option<&'static str>,
    /// Heap size the program needs.
    pub heap_cells: usize,
}

impl RunSpec {
    /// Thousands of source lines (the paper's size metric).
    pub fn kloc(&self) -> f64 {
        self.source.lines().count() as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockscheme::SchemeConfig;

    fn compiles_and_analyzes(spec: &RunSpec) {
        let program = lir::compile(&spec.source)
            .unwrap_or_else(|e| panic!("{} fails to compile: {e}", spec.name));
        assert!(program.n_sections > 0, "{} has atomic sections", spec.name);
        let pt = pointsto::PointsTo::analyze(&program);
        for k in [0, 3] {
            let cfg = SchemeConfig::full(k, program.elem_field_opt());
            let analysis = lockinfer::analyze_program(&program, &pt, cfg);
            assert_eq!(analysis.sections.len(), program.n_sections as usize);
            for sec in &analysis.sections {
                assert!(
                    !sec.locks.is_empty(),
                    "{} section #{} at k={k} has locks",
                    spec.name,
                    sec.id.0
                );
            }
        }
    }

    #[test]
    fn micro_benchmarks_compile_and_analyze() {
        for c in [Contention::Low, Contention::High] {
            for spec in micro::all(c, 100, 10) {
                compiles_and_analyzes(&spec);
            }
        }
    }

    #[test]
    fn stamp_kernels_compile_and_analyze() {
        for spec in stamp::all(100, 10) {
            compiles_and_analyzes(&spec);
        }
    }

    #[test]
    fn hashtable2_put_gets_a_fine_lock_and_rbtree_does_not() {
        let spec = micro::hashtable2(Contention::High, 10, 0);
        let program = lir::compile(&spec.source).unwrap();
        let pt = pointsto::PointsTo::analyze(&program);
        let cfg = SchemeConfig::full(9, program.elem_field_opt());
        let analysis = lockinfer::analyze_program(&program, &pt, cfg);
        let counts = analysis.lock_counts();
        assert!(
            counts.fine_rw > 0,
            "hashtable-2 put has a fine rw lock: {counts}"
        );

        let spec = micro::rbtree(Contention::High, 10, 0);
        let program = lir::compile(&spec.source).unwrap();
        let pt = pointsto::PointsTo::analyze(&program);
        let cfg = SchemeConfig::full(9, program.elem_field_opt());
        let analysis = lockinfer::analyze_program(&program, &pt, cfg);
        // rbtree gets no fine locks on tree *nodes* — its only fine
        // locks are bare variable cells (the root pointer, knobs).
        for sec in &analysis.sections {
            for l in sec.locks.iter().filter(|l| l.is_fine()) {
                assert!(
                    l.path.as_ref().unwrap().ops.is_empty(),
                    "unexpected structural fine lock {l} in rbtree"
                );
            }
        }
        assert!(
            counts.coarse_ro > 0,
            "rbtree gets read-only coarse locks: {counts}"
        );
    }

    #[test]
    fn rbtree_reader_sections_are_read_only() {
        let spec = micro::rbtree(Contention::Low, 10, 0);
        let program = lir::compile(&spec.source).unwrap();
        let pt = pointsto::PointsTo::analyze(&program);
        let cfg = SchemeConfig::full(9, program.elem_field_opt());
        let analysis = lockinfer::analyze_program(&program, &pt, cfg);
        // tree_get's section takes only ro locks.
        let get_fn = program.function_named("tree_get").unwrap();
        let sec = analysis.sections.iter().find(|s| s.func == get_fn).unwrap();
        assert!(
            sec.locks.iter().all(|l| l.eff == lir::Eff::Ro),
            "{:?}",
            sec.locks
        );
    }

    #[test]
    fn th_structures_live_in_disjoint_classes() {
        let spec = micro::th(Contention::Low, 10, 0);
        let program = lir::compile(&spec.source).unwrap();
        let pt = pointsto::PointsTo::analyze(&program);
        let cfg = SchemeConfig::full(0, program.elem_field_opt());
        let analysis = lockinfer::analyze_program(&program, &pt, cfg);
        let tree_put = program.function_named("tree_put").unwrap();
        let ht_put = program.function_named("ht_put").unwrap();
        let tree_sec = analysis
            .sections
            .iter()
            .find(|s| s.func == tree_put)
            .unwrap();
        let ht_sec = analysis.sections.iter().find(|s| s.func == ht_put).unwrap();
        let tree_classes: Vec<_> = tree_sec.locks.iter().filter_map(|l| l.pts).collect();
        let ht_classes: Vec<_> = ht_sec.locks.iter().filter_map(|l| l.pts).collect();
        assert!(
            tree_classes.iter().all(|c| !ht_classes.contains(c)),
            "tree locks {tree_classes:?} vs hashtable locks {ht_classes:?} overlap"
        );
    }

    #[test]
    fn generator_hits_size_targets() {
        for (name, kloc) in [("a", 5.0), ("b", 12.0)] {
            let spec = spec_like::generate(name, kloc, 42);
            let got = spec.kloc();
            assert!(
                (got - kloc).abs() / kloc < 0.15,
                "{name}: wanted ~{kloc} KLOC, got {got}"
            );
            let program = lir::compile(&spec.source).unwrap();
            assert_eq!(program.n_sections, 1, "main wrapped in one atomic section");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = spec_like::generate("x", 3.0, 7).source;
        let b = spec_like::generate("x", 3.0, 7).source;
        assert_eq!(a, b);
        let c = spec_like::generate("x", 3.0, 8).source;
        assert_ne!(a, c);
    }

    #[test]
    fn scale_programs_compile_analyze_and_are_deterministic() {
        let (name, p) = &scale::tiers()[0];
        let spec = scale::generate(name, *p);
        assert_eq!(spec.source, scale::generate(name, *p).source);
        let program = lir::compile(&spec.source).unwrap();
        assert_eq!(
            program.n_sections as usize, p.sections,
            "one atomic section per driver"
        );
        let pt = pointsto::PointsTo::analyze(&program);
        let cfg = SchemeConfig::full(3, program.elem_field_opt());
        let analysis = lockinfer::analyze_program(&program, &pt, cfg);
        assert_eq!(analysis.sections.len(), p.sections);
        assert!(
            analysis.sections.iter().all(|s| !s.locks.is_empty()),
            "every scale section gets locks"
        );
        assert!(
            analysis.stats.summary_functions > 0,
            "shared callees produce cached summaries: {:?}",
            analysis.stats
        );
    }
}
