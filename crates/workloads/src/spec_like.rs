//! Synthetic SPECint-like program generation for the analysis
//! scalability experiment (Table 1, top block).
//!
//! SPECint2000 sources are licensed and written in C; what the paper
//! measures on them is *analysis time versus program size*, with `main`
//! wrapped in one big atomic section. The generator below emits
//! mini-language programs of matching size with the same structural
//! ingredients the analysis cost depends on: pointer-heavy statements,
//! struct fields, heap allocation, conditionals, loops, and a deep
//! acyclic call graph rooted at `main`.

use crate::RunSpec;
use std::fmt::Write as _;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const N_STRUCTS: usize = 4;
const FIELDS_PER_STRUCT: usize = 3;
const N_GLOBALS: usize = 8;

/// Generates a program of roughly `target_kloc` thousand source lines.
///
/// The result is meant for the *compiler*, not the interpreter: its
/// `worker` entry is `main` (which terminates — all loops are bounded —
/// but computes nothing meaningful).
pub fn generate(name: &str, target_kloc: f64, seed: u64) -> RunSpec {
    let mut rng = Rng(seed ^ 0xC0FF_EE00);
    let mut src = String::new();
    for s in 0..N_STRUCTS {
        let fields: Vec<String> = (0..FIELDS_PER_STRUCT)
            .map(|f| format!("s{s}_f{f};"))
            .collect();
        let _ = writeln!(src, "struct s{s} {{ {} }}", fields.join(" "));
    }
    let globals: Vec<String> = (0..N_GLOBALS).map(|g| format!("g{g}")).collect();
    let _ = writeln!(src, "global {};", globals.join(", "));

    let target_lines = (target_kloc * 1000.0) as usize;
    let mut fns: Vec<String> = Vec::new();
    let mut gen = FnGen { rng: &mut rng };
    while src.lines().count() + 40 < target_lines {
        let id = fns.len();
        let body = gen.function(id, &fns);
        src.push_str(&body);
        fns.push(format!("fn_{id}"));
    }

    // main: everything under one atomic section, as the paper does for
    // the SPEC programs.
    let _ = writeln!(src, "fn main() {{");
    let _ = writeln!(src, "    let a = new s0;");
    let _ = writeln!(src, "    let b = new s1;");
    let _ = writeln!(src, "    atomic {{");
    let calls = fns.len().min(24);
    for i in 0..calls {
        let f = &fns[gen.rng.below(fns.len())];
        let _ = writeln!(src, "        let r{i} = {f}(a, b);");
    }
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "    return 0;");
    let _ = writeln!(src, "}}");

    RunSpec {
        name: name.to_owned(),
        source: src,
        init: ("main", vec![]),
        worker: ("main", vec![]),
        check: None,
        heap_cells: 1 << 22,
    }
}

struct FnGen<'a> {
    rng: &'a mut Rng,
}

/// A pool variable with the struct type it holds (the generator keeps a
/// C-like typed discipline: field `s{t}_f{j}` of a type-`t` object holds
/// a type-`(t+1) % N` pointer, so points-to classes stay separated the
/// way typed C keeps them).
type TypedVar = (String, usize);

impl FnGen<'_> {
    fn function(&mut self, id: usize, earlier: &[String]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fn fn_{id}(p0, p1) {{");
        // Parameters carry rotating types so call chains stay typed.
        let mut vars: Vec<TypedVar> = vec![
            ("p0".into(), id % N_STRUCTS),
            ("p1".into(), (id + 1) % N_STRUCTS),
        ];
        let mut n_locals = 0usize;
        let stmts = 14 + self.rng.below(18);
        for _ in 0..stmts {
            self.stmt(&mut out, 1, &mut vars, &mut n_locals, earlier);
        }
        let ret = vars[self.rng.below(vars.len())].0.clone();
        let _ = writeln!(out, "    return {ret};");
        let _ = writeln!(out, "}}");
        out
    }

    fn fresh(&mut self, vars: &mut Vec<TypedVar>, n_locals: &mut usize, ty: usize) -> String {
        let v = format!("v{n}", n = *n_locals);
        *n_locals += 1;
        vars.push((v.clone(), ty));
        v
    }

    fn pick<'v>(&mut self, vars: &'v [TypedVar]) -> &'v TypedVar {
        &vars[self.rng.below(vars.len())]
    }

    fn pick_of<'v>(&mut self, vars: &'v [TypedVar], ty: usize) -> Option<&'v TypedVar> {
        let matching: Vec<&TypedVar> = vars.iter().filter(|(_, t)| *t == ty).collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching[self.rng.below(matching.len())])
        }
    }

    fn stmt(
        &mut self,
        out: &mut String,
        depth: usize,
        vars: &mut Vec<TypedVar>,
        n_locals: &mut usize,
        earlier: &[String],
    ) {
        let pad = "    ".repeat(depth);
        match self.rng.below(10) {
            0 => {
                let ty = self.rng.below(N_STRUCTS);
                let v = self.fresh(vars, n_locals, ty);
                let _ = writeln!(out, "{pad}let {v} = new s{ty};");
            }
            1 | 2 => {
                let (x, ty) = self.pick(vars).clone();
                let f = self.rng.below(FIELDS_PER_STRUCT);
                let v = self.fresh(vars, n_locals, (ty + 1) % N_STRUCTS);
                let _ = writeln!(out, "{pad}let {v} = {x}->s{ty}_f{f};");
            }
            3 | 4 => {
                let (x, ty) = self.pick(vars).clone();
                let f = self.rng.below(FIELDS_PER_STRUCT);
                let want = (ty + 1) % N_STRUCTS;
                let y = match self.pick_of(vars, want) {
                    Some((y, _)) => y.clone(),
                    None => {
                        let y = self.fresh(vars, n_locals, want);
                        let _ = writeln!(out, "{pad}let {y} = new s{want};");
                        y
                    }
                };
                let _ = writeln!(out, "{pad}{x}->s{ty}_f{f} = {y};");
            }
            5 => {
                // Globals are typed by their index.
                let g = self.rng.below(N_GLOBALS);
                let gty = g % N_STRUCTS;
                if self.rng.below(2) == 0 {
                    match self.pick_of(vars, gty) {
                        Some((x, _)) => {
                            let x = x.clone();
                            let _ = writeln!(out, "{pad}g{g} = {x};");
                        }
                        None => {
                            let _ = writeln!(out, "{pad}g{g} = new s{gty};");
                        }
                    }
                } else {
                    let v = self.fresh(vars, n_locals, gty);
                    let _ = writeln!(out, "{pad}let {v} = g{g};");
                }
            }
            6 if depth < 3 => {
                let (x, _) = self.pick(vars).clone();
                let (y, _) = self.pick(vars).clone();
                let _ = writeln!(out, "{pad}if ({x} == {y}) {{");
                let scope = vars.len();
                for _ in 0..1 + self.rng.below(3) {
                    self.stmt(out, depth + 1, vars, n_locals, earlier);
                }
                vars.truncate(scope);
                let _ = writeln!(out, "{pad}}} else {{");
                for _ in 0..1 + self.rng.below(2) {
                    self.stmt(out, depth + 1, vars, n_locals, earlier);
                }
                vars.truncate(scope);
                let _ = writeln!(out, "{pad}}}");
            }
            7 if depth < 3 => {
                let c = self.fresh(vars, n_locals, usize::MAX % N_STRUCTS);
                let bound = 2 + self.rng.below(6);
                let _ = writeln!(out, "{pad}let {c} = 0;");
                let _ = writeln!(out, "{pad}while ({c} < {bound}) {{");
                let _ = writeln!(out, "{pad}    {c} = {c} + 1;");
                let scope = vars.len();
                for _ in 0..1 + self.rng.below(2) {
                    self.stmt(out, depth + 1, vars, n_locals, earlier);
                }
                vars.truncate(scope);
                let _ = writeln!(out, "{pad}}}");
            }
            8 if !earlier.is_empty() => {
                // Callee fn_j expects types (j, j+1); pass (or make)
                // matching arguments so flow stays typed.
                let j = self.rng.below(earlier.len());
                let callee = earlier[j].clone();
                let arg = |want: usize,
                           out: &mut String,
                           slf: &mut Self,
                           vars: &mut Vec<TypedVar>,
                           n_locals: &mut usize| {
                    match slf.pick_of(vars, want) {
                        Some((a, _)) => a.clone(),
                        None => {
                            let a = slf.fresh(vars, n_locals, want);
                            let _ = writeln!(out, "{pad}let {a} = new s{want};");
                            a
                        }
                    }
                };
                let a = arg(j % N_STRUCTS, out, self, vars, n_locals);
                let b = arg((j + 1) % N_STRUCTS, out, self, vars, n_locals);
                let v = self.fresh(vars, n_locals, j % N_STRUCTS);
                let _ = writeln!(out, "{pad}let {v} = {callee}({a}, {b});");
            }
            _ => {
                let (x, ty) = self.pick(vars).clone();
                let v = self.fresh(vars, n_locals, ty);
                let _ = writeln!(out, "{pad}let {v} = {x};");
            }
        }
    }
}

/// The seven SPEC-like programs of Table 1, at the paper's sizes.
pub fn table1_programs() -> Vec<(&'static str, f64)> {
    vec![
        ("syn-gzip", 10.3),
        ("syn-parser", 14.2),
        ("syn-vpr", 20.4),
        ("syn-crafty", 21.2),
        ("syn-twolf", 23.1),
        ("syn-gap", 71.4),
        ("syn-vortex", 71.5),
    ]
}
