//! Synthetic programs for the *analysis throughput* benchmark
//! (`analysis-bench`).
//!
//! Unlike [`crate::spec_like`] — which targets a source-line budget with
//! one big atomic section — this generator scales the three dimensions
//! the optimized dataflow engine is built around, independently:
//!
//! * **call-graph depth**: layered acyclic call graph, every function in
//!   layer `i` calls several functions in layer `i+1`, so summary
//!   queries chain `depth` levels down;
//! * **call-graph width**: functions per layer; callees are *shared*
//!   between callers (and between atomic sections), which is exactly
//!   what the cross-section summary cache exploits;
//! * **section count**: many independent atomic sections whose scopes
//!   overlap on the same callee tree — the per-section unit of the
//!   parallel solving phase.
//!
//! The output is for the compiler + analysis only (its `main` is the
//! nominal entry; nothing is meant to be interpreted under load).

use crate::RunSpec;
use std::fmt::Write as _;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const N_STRUCTS: usize = 3;
const FIELDS_PER_STRUCT: usize = 3;
const N_GLOBALS: usize = 6;

/// Shape of one synthetic program.
#[derive(Clone, Copy, Debug)]
pub struct ScaleParams {
    /// Call-graph layers below the sections.
    pub depth: usize,
    /// Functions per layer.
    pub width: usize,
    /// Number of atomic sections (each in its own driver function).
    pub sections: usize,
    /// Straight-line statements per generated function.
    pub stmts_per_fn: usize,
    /// Generator seed.
    pub seed: u64,
}

/// The benchmark's size tiers, smallest first. The last entry is the
/// "largest synthetic tier" quoted in `BENCH_analysis.json`.
pub fn tiers() -> Vec<(&'static str, ScaleParams)> {
    vec![
        (
            "scale-small",
            ScaleParams {
                depth: 3,
                width: 4,
                sections: 4,
                stmts_per_fn: 10,
                seed: 11,
            },
        ),
        (
            "scale-medium",
            ScaleParams {
                depth: 5,
                width: 8,
                sections: 16,
                stmts_per_fn: 14,
                seed: 12,
            },
        ),
        (
            "scale-large",
            ScaleParams {
                depth: 7,
                width: 12,
                sections: 48,
                stmts_per_fn: 16,
                seed: 13,
            },
        ),
    ]
}

/// Generates one layered-call-graph program.
pub fn generate(name: &str, p: ScaleParams) -> RunSpec {
    let mut rng = Rng(p.seed ^ 0x5CA1_AB1E);
    let mut src = String::new();
    for s in 0..N_STRUCTS {
        let fields: Vec<String> = (0..FIELDS_PER_STRUCT)
            .map(|f| format!("s{s}_f{f};"))
            .collect();
        let _ = writeln!(src, "struct s{s} {{ {} }}", fields.join(" "));
    }
    let globals: Vec<String> = (0..N_GLOBALS).map(|g| format!("g{g}")).collect();
    let _ = writeln!(src, "global {};", globals.join(", "));

    // Layers are emitted bottom-up so callees precede callers
    // lexically; `layer_fns[d]` holds the names of layer d (d = 0 is
    // the layer the sections call).
    let mut layer_fns: Vec<Vec<String>> = vec![Vec::new(); p.depth];
    for d in (0..p.depth).rev() {
        for w in 0..p.width {
            let fname = format!("fn_d{d}_w{w}");
            let callees: &[String] = if d + 1 < p.depth {
                &layer_fns[d + 1]
            } else {
                &[]
            };
            let body = emit_function(&mut rng, &fname, d, w, p.stmts_per_fn, callees);
            src.push_str(&body);
            layer_fns[d].push(fname);
        }
    }

    // Drivers: one atomic section each, over 2–3 shared layer-0 roots.
    for s in 0..p.sections {
        let _ = writeln!(src, "fn sec_{s}(q0, q1) {{");
        let _ = writeln!(src, "    atomic {{");
        let _ = writeln!(src, "        let t = q0->s0_f0;");
        let _ = writeln!(src, "        q1->s1_f1 = t;");
        let roots = 2 + rng.below(2);
        for c in 0..roots {
            let f = &layer_fns[0][rng.below(layer_fns[0].len())];
            let _ = writeln!(src, "        let r{c} = {f}(q0, q1);");
        }
        let g = rng.below(N_GLOBALS);
        let _ = writeln!(src, "        g{g} = q0;");
        let _ = writeln!(src, "    }}");
        let _ = writeln!(src, "    return q0;");
        let _ = writeln!(src, "}}");
    }

    let _ = writeln!(src, "fn main() {{");
    let _ = writeln!(src, "    let a = new s0;");
    let _ = writeln!(src, "    let b = new s1;");
    for s in 0..p.sections {
        let _ = writeln!(src, "    let m{s} = sec_{s}(a, b);");
    }
    let _ = writeln!(src, "    return 0;");
    let _ = writeln!(src, "}}");

    RunSpec {
        name: name.to_owned(),
        source: src,
        init: ("main", vec![]),
        worker: ("main", vec![]),
        check: None,
        heap_cells: 1 << 20,
    }
}

/// A null-safe twin of [`generate`] for *runtime* smoke tests (the
/// sentinel-overhead gate): the same layered call graph and pointer
/// traffic, but every dereferenced pointer is a parameter, a fresh
/// allocation, or a global initialized by `setup` — loaded fields are
/// treated as opaque — so the program interprets without faults.
/// `generate`'s output may read a field before any store and is
/// compile/analysis-only.
///
/// Workers share state through the six globals: sections publish their
/// roots into them and dereference what other threads published, so the
/// inferred locks are genuinely contended.
pub fn smoke(name: &str, p: ScaleParams, iters: i64) -> RunSpec {
    let mut rng = Rng(p.seed ^ 0x0DD_BA11);
    let mut src = String::new();
    for s in 0..N_STRUCTS {
        let fields: Vec<String> = (0..FIELDS_PER_STRUCT)
            .map(|f| format!("s{s}_f{f};"))
            .collect();
        let _ = writeln!(src, "struct s{s} {{ {} }}", fields.join(" "));
    }
    let globals: Vec<String> = (0..N_GLOBALS).map(|g| format!("g{g}")).collect();
    let _ = writeln!(src, "global {};", globals.join(", "));

    // (name, p0 type, p1 type) per layer, bottom-up as in `generate`.
    let mut layer_fns: Vec<Vec<(String, usize, usize)>> = vec![Vec::new(); p.depth];
    for d in (0..p.depth).rev() {
        for w in 0..p.width {
            let fname = format!("fn_d{d}_w{w}");
            let (t0, t1) = ((d + w) % N_STRUCTS, (d + w + 1) % N_STRUCTS);
            let callees: &[(String, usize, usize)] = if d + 1 < p.depth {
                &layer_fns[d + 1]
            } else {
                &[]
            };
            src.push_str(&emit_smoke_function(
                &mut rng,
                &fname,
                t0,
                t1,
                p.stmts_per_fn,
                callees,
            ));
            layer_fns[d].push((fname, t0, t1));
        }
    }

    for s in 0..p.sections {
        let _ = writeln!(src, "fn sec_{s}(q0, q1) {{");
        let _ = writeln!(src, "    atomic {{");
        let _ = writeln!(src, "        let t = q0->s0_f0;");
        let _ = writeln!(src, "        q1->s1_f1 = t;");
        let roots = 2 + rng.below(2);
        for c in 0..roots {
            let (f, ta, tb) = layer_fns[0][rng.below(layer_fns[0].len())].clone();
            // q0 is s0, q1 is s1; globals g0..g5 cycle s0 s1 s2 s0 s1
            // s2 and are non-null after `setup`, so every type has a
            // safe argument without allocating.
            let arg = |t: usize| match t {
                0 => "q0".to_owned(),
                1 => "q1".to_owned(),
                t => format!("g{t}"),
            };
            let _ = writeln!(src, "        let r{c} = {f}({}, {});", arg(ta), arg(tb));
        }
        // Publish a root for other threads to chase; keep the global's
        // struct type (g0 and g3 hold s0).
        let g = [0, 3][rng.below(2)];
        let _ = writeln!(src, "        g{g} = q0;");
        let _ = writeln!(src, "    }}");
        let _ = writeln!(src, "    return q0;");
        let _ = writeln!(src, "}}");
    }

    let _ = writeln!(src, "fn setup() {{");
    for g in 0..N_GLOBALS {
        let _ = writeln!(src, "    g{g} = new s{};", g % N_STRUCTS);
    }
    let _ = writeln!(src, "    return 0;");
    let _ = writeln!(src, "}}");

    let _ = writeln!(src, "fn work(iters) {{");
    let _ = writeln!(src, "    let a = new s0;");
    let _ = writeln!(src, "    let b = new s1;");
    let _ = writeln!(src, "    let i = 0;");
    let _ = writeln!(src, "    while (i < iters) {{");
    for s in 0..p.sections {
        let _ = writeln!(src, "        let m{s} = sec_{s}(a, b);");
    }
    let _ = writeln!(src, "        i = i + 1;");
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "    return 0;");
    let _ = writeln!(src, "}}");

    RunSpec {
        name: name.to_owned(),
        source: src,
        init: ("setup", vec![]),
        worker: ("work", vec![iters]),
        check: None,
        // Smoke functions allocate on every call and never free.
        heap_cells: 1 << 22,
    }
}

/// One null-safe function: dereferences only pool variables that are
/// provably non-null (params, allocations, initialized globals); field
/// loads land in throwaway locals that are stored but never deref'd.
fn emit_smoke_function(
    rng: &mut Rng,
    fname: &str,
    t0: usize,
    t1: usize,
    stmts: usize,
    callees: &[(String, usize, usize)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn {fname}(p0, p1) {{");
    let mut safe: Vec<(String, usize)> = vec![("p0".into(), t0), ("p1".into(), t1)];
    let mut n = 0usize;
    // Finds (or allocates) a non-null variable of struct type `want`.
    macro_rules! pick_safe {
        ($want:expr) => {{
            let want = $want;
            let hits: Vec<&String> = safe
                .iter()
                .filter(|(_, t)| *t == want)
                .map(|(x, _)| x)
                .collect();
            if hits.is_empty() {
                let v = format!("v{n}");
                n += 1;
                let _ = writeln!(out, "    let {v} = new s{want};");
                safe.push((v.clone(), want));
                v
            } else {
                hits[rng.below(hits.len())].clone()
            }
        }};
    }
    for _ in 0..stmts {
        match rng.below(8) {
            0 => {
                let ty = rng.below(N_STRUCTS);
                let v = format!("v{n}");
                n += 1;
                let _ = writeln!(out, "    let {v} = new s{ty};");
                safe.push((v, ty));
            }
            1 | 2 => {
                let (x, ty) = safe[rng.below(safe.len())].clone();
                let f = rng.below(FIELDS_PER_STRUCT);
                let v = format!("v{n}");
                n += 1;
                // Loaded fields may be null — keep them out of `safe`.
                let _ = writeln!(out, "    let {v} = {x}->s{ty}_f{f};");
            }
            3 | 4 => {
                let (x, ty) = safe[rng.below(safe.len())].clone();
                let f = rng.below(FIELDS_PER_STRUCT);
                let y = pick_safe!((ty + 1) % N_STRUCTS);
                let _ = writeln!(out, "    {x}->s{ty}_f{f} = {y};");
            }
            5 => {
                let g = rng.below(N_GLOBALS);
                let y = pick_safe!(g % N_STRUCTS);
                let _ = writeln!(out, "    g{g} = {y};");
            }
            6 => {
                let g = rng.below(N_GLOBALS);
                let v = format!("v{n}");
                n += 1;
                let _ = writeln!(out, "    let {v} = g{g};");
                // Globals hold their setup type forever (case 5 and the
                // sections preserve it), so the load is deref-safe.
                safe.push((v, g % N_STRUCTS));
            }
            _ => {
                let (x, ty) = safe[rng.below(safe.len())].clone();
                let v = format!("v{n}");
                n += 1;
                let _ = writeln!(out, "    let {v} = {x};");
                safe.push((v, ty));
            }
        }
    }
    for _ in 0..2.min(callees.len()) {
        let (callee, ta, tb) = callees[rng.below(callees.len())].clone();
        let a = pick_safe!(ta);
        let b = pick_safe!(tb);
        let v = format!("v{n}");
        n += 1;
        let _ = writeln!(out, "    let {v} = {callee}({a}, {b});");
        // Smoke functions return their p0, so the result has the
        // callee's p0 type and is non-null.
        safe.push((v, ta));
    }
    let _ = writeln!(out, "    return p0;");
    let _ = writeln!(out, "}}");
    out
}

/// One function of the layered graph: pointer-heavy straight-line code
/// over its two pointer parameters, global traffic, and (below the last
/// layer) a couple of next-layer calls.
fn emit_function(
    rng: &mut Rng,
    fname: &str,
    d: usize,
    w: usize,
    stmts: usize,
    callees: &[String],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn {fname}(p0, p1) {{");
    let t0 = (d + w) % N_STRUCTS;
    let t1 = (d + w + 1) % N_STRUCTS;
    // Tracked pool: (name, struct type) — same typed discipline as
    // spec_like, so points-to classes stay separated.
    let mut vars: Vec<(String, usize)> = vec![("p0".into(), t0), ("p1".into(), t1)];
    let mut n = 0usize;
    for _ in 0..stmts {
        match rng.below(8) {
            0 => {
                let ty = rng.below(N_STRUCTS);
                let v = format!("v{n}");
                n += 1;
                let _ = writeln!(out, "    let {v} = new s{ty};");
                vars.push((v, ty));
            }
            1..=3 => {
                let (x, ty) = vars[rng.below(vars.len())].clone();
                let f = rng.below(FIELDS_PER_STRUCT);
                let v = format!("v{n}");
                n += 1;
                let _ = writeln!(out, "    let {v} = {x}->s{ty}_f{f};");
                vars.push((v, (ty + 1) % N_STRUCTS));
            }
            4 | 5 => {
                let (x, ty) = vars[rng.below(vars.len())].clone();
                let want = (ty + 1) % N_STRUCTS;
                let f = rng.below(FIELDS_PER_STRUCT);
                let y = match vars.iter().find(|(_, t)| *t == want) {
                    Some((y, _)) => y.clone(),
                    None => {
                        let y = format!("v{n}");
                        n += 1;
                        let _ = writeln!(out, "    let {y} = new s{want};");
                        vars.push((y.clone(), want));
                        y
                    }
                };
                let _ = writeln!(out, "    {x}->s{ty}_f{f} = {y};");
            }
            6 => {
                let g = rng.below(N_GLOBALS);
                let gty = g % N_STRUCTS;
                if rng.below(2) == 0 {
                    match vars.iter().find(|(_, t)| *t == gty) {
                        Some((x, _)) => {
                            let x = x.clone();
                            let _ = writeln!(out, "    g{g} = {x};");
                        }
                        None => {
                            let _ = writeln!(out, "    g{g} = new s{gty};");
                        }
                    }
                } else {
                    let v = format!("v{n}");
                    n += 1;
                    let _ = writeln!(out, "    let {v} = g{g};");
                    vars.push((v, gty));
                }
            }
            _ => {
                let (x, ty) = vars[rng.below(vars.len())].clone();
                let v = format!("v{n}");
                n += 1;
                let _ = writeln!(out, "    let {v} = {x};");
                vars.push((v, ty));
            }
        }
    }
    // Fan out to the next layer: two shared callees per function.
    for _ in 0..2.min(callees.len()) {
        let callee = &callees[rng.below(callees.len())];
        let v = format!("v{n}");
        n += 1;
        let _ = writeln!(out, "    let {v} = {callee}(p1, p0);");
        vars.push((v, t1));
    }
    let ret = vars[rng.below(vars.len())].0.clone();
    let _ = writeln!(out, "    return {ret};");
    let _ = writeln!(out, "}}");
    out
}
