//! The data-structure micro-benchmarks of §6.1: `list`, `hashtable`,
//! `rbtree` (the implementations distributed with STAMP), `hashtable-2`
//! (head-insert, never resizes), and `TH` (rbtree + hashtable combined).
//!
//! Every operation is wrapped in an atomic section diluted with a nop
//! loop, exactly as in the paper's harness. The shared harness performs
//! put/get/remove with the *low* (gets 4×) or *high* (puts 4×) mixes.

use crate::{Contention, RunSpec};

/// The shared harness appended to each micro-benchmark: `worker` draws
/// operations according to the weights; `init` sets the nop knob and
/// prefills.
fn harness(put: &str, get: &str, remove: &str) -> String {
    format!(
        r#"
fn worker(ops, putw, getw, totw, keyspace) {{
    let i = 0;
    while (i < ops) {{
        let r = rand(totw);
        let k = rand(keyspace);
        if (r < putw) {{
            {put}(k, k + 1);
        }} else {{
            if (r < putw + getw) {{
                let v = {get}(k);
            }} else {{
                {remove}(k);
            }}
        }}
        i = i + 1;
    }}
    return 0;
}}
"#
    )
}

/// Weights `(put, get, total)` for a contention setting; the remainder
/// of the budget is removes.
pub fn weights(c: Contention) -> (i64, i64, i64) {
    match c {
        // Gets four times more common than all mutations combined.
        Contention::Low => (1, 8, 10),
        // Puts four times more often: four out of five operations.
        Contention::High => (8, 1, 10),
    }
}

/// Builds the standard micro RunSpec around a source + op names.
fn spec(name: &str, source: String, c: Contention, ops: i64, nopk: i64, keyspace: i64) -> RunSpec {
    let (putw, getw, totw) = weights(c);
    RunSpec {
        name: format!("{name}-{}", c.suffix()),
        source,
        init: ("init", vec![nopk, keyspace / 2, keyspace]),
        worker: ("worker", vec![ops, putw, getw, totw, keyspace]),
        check: Some("check"),
        heap_cells: 1 << 22,
    }
}

/// Sorted singly-linked list (STAMP's `list`).
pub fn list(c: Contention, ops: i64, nopk: i64) -> RunSpec {
    let src = format!(
        r#"
struct lnode {{ lnext; lkey; lval; }}
global lhead, LNOPS;

fn init(nopk, prefill, keyspace) {{
    LNOPS = nopk;
    lhead = null;
    let i = 0;
    while (i < prefill) {{
        put(rand(keyspace), i);
        i = i + 1;
    }}
    return 0;
}}

fn put(k, v) {{
    atomic {{
        nops(LNOPS);
        let prev = null;
        let cur = lhead;
        while (cur != null && cur->lkey < k) {{
            prev = cur;
            cur = cur->lnext;
        }}
        if (cur != null && cur->lkey == k) {{
            cur->lval = v;
        }} else {{
            let n = new lnode;
            n->lkey = k;
            n->lval = v;
            n->lnext = cur;
            if (prev == null) {{ lhead = n; }} else {{ prev->lnext = n; }}
        }}
    }}
    return 0;
}}

fn get(k) {{
    let res = 0 - 1;
    atomic {{
        nops(LNOPS);
        let cur = lhead;
        while (cur != null && cur->lkey < k) {{ cur = cur->lnext; }}
        if (cur != null && cur->lkey == k) {{ res = cur->lval; }}
    }}
    return res;
}}

fn remove(k) {{
    atomic {{
        nops(LNOPS);
        let prev = null;
        let cur = lhead;
        while (cur != null && cur->lkey < k) {{
            prev = cur;
            cur = cur->lnext;
        }}
        if (cur != null && cur->lkey == k) {{
            if (prev == null) {{ lhead = cur->lnext; }} else {{ prev->lnext = cur->lnext; }}
        }}
    }}
    return 0;
}}

fn check() {{
    // Sortedness and acyclicity (bounded walk).
    let cur = lhead;
    let steps = 0;
    while (cur != null) {{
        if (cur->lnext != null) {{ assert(cur->lkey < cur->lnext->lkey); }}
        cur = cur->lnext;
        steps = steps + 1;
        assert(steps < 100000);
    }}
    return steps;
}}
{harness}
"#,
        harness = harness("put", "get", "remove")
    );
    spec("list", src, c, ops, nopk, 256)
}

/// Chained hashtable whose put may trigger a full resize + rehash
/// (STAMP's `hashtable`) — so a put can touch the entire table.
pub fn hashtable(c: Contention, ops: i64, nopk: i64) -> RunSpec {
    let src = format!(
        r#"
struct hentry {{ hnext; hkey; hval; }}
global htab, hnb, hcount, HNOPS;

fn init(nopk, prefill, keyspace) {{
    HNOPS = nopk;
    hnb = 16;
    hcount = 0;
    htab = new(hnb);
    let i = 0;
    while (i < prefill) {{
        put(rand(keyspace), i);
        i = i + 1;
    }}
    return 0;
}}

fn rehash() {{
    let nn = hnb * 2;
    let nt = new(nn);
    let i = 0;
    while (i < hnb) {{
        let cur = htab[i];
        while (cur != null) {{
            let nxt = cur->hnext;
            let b = cur->hkey % nn;
            cur->hnext = nt[b];
            nt[b] = cur;
            cur = nxt;
        }}
        i = i + 1;
    }}
    htab = nt;
    hnb = nn;
    return 0;
}}

fn put(k, v) {{
    atomic {{
        nops(HNOPS);
        let b = k % hnb;
        let cur = htab[b];
        let found = 0;
        while (cur != null && found == 0) {{
            if (cur->hkey == k) {{
                cur->hval = v;
                found = 1;
            }}
            if (found == 0) {{ cur = cur->hnext; }}
        }}
        if (found == 0) {{
            let e = new hentry;
            e->hkey = k;
            e->hval = v;
            e->hnext = htab[b];
            htab[b] = e;
            hcount = hcount + 1;
            if (hcount > hnb * 2) {{ rehash(); }}
        }}
    }}
    return 0;
}}

fn get(k) {{
    let res = 0 - 1;
    atomic {{
        nops(HNOPS);
        let b = k % hnb;
        let cur = htab[b];
        let going = 1;
        while (cur != null && going == 1) {{
            if (cur->hkey == k) {{ res = cur->hval; going = 0; }}
            if (going == 1) {{ cur = cur->hnext; }}
        }}
    }}
    return res;
}}

fn remove(k) {{
    atomic {{
        nops(HNOPS);
        let b = k % hnb;
        let prev = null;
        let cur = htab[b];
        let going = 1;
        while (cur != null && going == 1) {{
            if (cur->hkey == k) {{
                if (prev == null) {{ htab[b] = cur->hnext; }} else {{ prev->hnext = cur->hnext; }}
                hcount = hcount - 1;
                going = 0;
            }}
            if (going == 1) {{ prev = cur; cur = cur->hnext; }}
        }}
    }}
    return 0;
}}

fn check() {{
    // Every entry hashes to its bucket; count matches.
    let n = 0;
    let i = 0;
    while (i < hnb) {{
        let cur = htab[i];
        while (cur != null) {{
            assert(cur->hkey % hnb == i);
            n = n + 1;
            cur = cur->hnext;
            assert(n < 4000000);
        }}
        i = i + 1;
    }}
    assert(n == hcount);
    return n;
}}
{harness}
"#,
        harness = harness("put", "get", "remove")
    );
    // A large keyspace and small prefill keep the table growing under
    // the put-heavy mix, so resizes (which touch the whole table) recur
    // during the measured phase — the behaviour behind the paper's
    // hashtable-high STM collapse.
    let mut s = spec("hashtable", src, c, ops, nopk, 16384);
    s.init = ("init", vec![nopk, 2048, 16384]);
    s
}

/// Head-insert hashtable that never resizes (`hashtable-2`): a put
/// updates exactly one bucket cell, which the inference protects with a
/// single fine-grain lock — the paper's headline fine-grain win. The
/// bucket index is computed before the section so the lock expression
/// is evaluable at the entry.
pub fn hashtable2(c: Contention, ops: i64, nopk: i64) -> RunSpec {
    let src = format!(
        r#"
struct bentry {{ bnext; bkey; bval; }}
global btab, BNB, BNOPS;

fn init(nopk, prefill, keyspace) {{
    BNOPS = nopk;
    BNB = 64;
    btab = new(64);
    let i = 0;
    while (i < prefill) {{
        put(rand(keyspace), i);
        i = i + 1;
    }}
    return 0;
}}

fn put(k, v) {{
    let b = k % BNB;
    atomic {{
        nops(BNOPS);
        let e = new bentry;
        e->bkey = k;
        e->bval = v;
        e->bnext = btab[b];
        btab[b] = e;
    }}
    return 0;
}}

fn get(k) {{
    let b = k % BNB;
    let res = 0 - 1;
    atomic {{
        nops(BNOPS);
        let cur = btab[b];
        let going = 1;
        while (cur != null && going == 1) {{
            if (cur->bkey == k) {{ res = cur->bval; going = 0; }}
            if (going == 1) {{ cur = cur->bnext; }}
        }}
    }}
    return res;
}}

fn remove(k) {{
    let b = k % BNB;
    atomic {{
        nops(BNOPS);
        let prev = null;
        let cur = btab[b];
        let going = 1;
        while (cur != null && going == 1) {{
            if (cur->bkey == k) {{
                if (prev == null) {{ btab[b] = cur->bnext; }} else {{ prev->bnext = cur->bnext; }}
                going = 0;
            }}
            if (going == 1) {{ prev = cur; cur = cur->bnext; }}
        }}
    }}
    return 0;
}}

fn check() {{
    let n = 0;
    let i = 0;
    while (i < BNB) {{
        let cur = btab[i];
        while (cur != null) {{
            assert(cur->bkey % BNB == i);
            n = n + 1;
            cur = cur->bnext;
            assert(n < 2000000);
        }}
        i = i + 1;
    }}
    return n;
}}
{harness}
"#,
        harness = harness("put", "get", "remove")
    );
    spec("hashtable-2", src, c, ops, nopk, 256)
}

/// The red-black tree source, with every name prefixed so `TH` can
/// embed it next to the hashtable without field-offset collisions.
fn rbtree_source() -> &'static str {
    r#"
struct tnode { left; right; parent; red; tkey; tval; }
global troot, TNOPS;

fn rotate_left(x) {
    let y = x->right;
    x->right = y->left;
    if (y->left != null) { y->left->parent = x; }
    y->parent = x->parent;
    if (x->parent == null) {
        troot = y;
    } else {
        if (x == x->parent->left) { x->parent->left = y; } else { x->parent->right = y; }
    }
    y->left = x;
    x->parent = y;
    return 0;
}

fn rotate_right(x) {
    let y = x->left;
    x->left = y->right;
    if (y->right != null) { y->right->parent = x; }
    y->parent = x->parent;
    if (x->parent == null) {
        troot = y;
    } else {
        if (x == x->parent->right) { x->parent->right = y; } else { x->parent->left = y; }
    }
    y->right = x;
    x->parent = y;
    return 0;
}

fn insert_fixup(z) {
    while (z->parent != null && z->parent->red == 1 && z->parent->parent != null) {
        let p = z->parent;
        let g = p->parent;
        if (p == g->left) {
            let u = g->right;
            if (u != null && u->red == 1) {
                p->red = 0;
                u->red = 0;
                g->red = 1;
                z = g;
            } else {
                if (z == p->right) {
                    z = p;
                    rotate_left(z);
                }
                z->parent->red = 0;
                z->parent->parent->red = 1;
                rotate_right(z->parent->parent);
            }
        } else {
            let u = g->left;
            if (u != null && u->red == 1) {
                p->red = 0;
                u->red = 0;
                g->red = 1;
                z = g;
            } else {
                if (z == p->left) {
                    z = p;
                    rotate_right(z);
                }
                z->parent->red = 0;
                z->parent->parent->red = 1;
                rotate_left(z->parent->parent);
            }
        }
    }
    troot->red = 0;
    return 0;
}

fn tree_put(k, v) {
    atomic {
        nops(TNOPS);
        let y = null;
        let x = troot;
        let found = 0;
        while (x != null && found == 0) {
            y = x;
            if (k == x->tkey) {
                x->tval = v;
                found = 1;
            } else {
                if (k < x->tkey) { x = x->left; } else { x = x->right; }
            }
        }
        if (found == 0) {
            let z = new tnode;
            z->tkey = k;
            z->tval = v;
            z->red = 1;
            z->parent = y;
            if (y == null) {
                troot = z;
            } else {
                if (k < y->tkey) { y->left = z; } else { y->right = z; }
            }
            insert_fixup(z);
        }
    }
    return 0;
}

fn tree_get(k) {
    let res = 0 - 1;
    atomic {
        nops(TNOPS);
        let x = troot;
        let going = 1;
        while (x != null && going == 1) {
            if (k == x->tkey) {
                res = x->tval;
                going = 0;
            } else {
                if (k < x->tkey) { x = x->left; } else { x = x->right; }
            }
        }
    }
    return res;
}

fn tree_remove(k) {
    // Tombstone removal: mark the value absent. Keeps the structural
    // invariants (and the concurrency shape: a write that traverses).
    atomic {
        nops(TNOPS);
        let x = troot;
        let going = 1;
        while (x != null && going == 1) {
            if (k == x->tkey) {
                x->tval = 0 - 1;
                going = 0;
            } else {
                if (k < x->tkey) { x = x->left; } else { x = x->right; }
            }
        }
    }
    return 0;
}

fn black_height(x) {
    if (x == null) { return 1; }
    let lh = black_height(x->left);
    let rh = black_height(x->right);
    assert(lh == rh);
    if (x->red == 1) {
        if (x->left != null) { assert(x->left->red == 0); }
        if (x->right != null) { assert(x->right->red == 0); }
        return lh;
    }
    return lh + 1;
}

fn check_order(x, lo, hi) {
    if (x == null) { return 0; }
    assert(lo < x->tkey);
    assert(x->tkey < hi);
    check_order(x->left, lo, x->tkey);
    check_order(x->right, x->tkey, hi);
    return 0;
}

fn tree_check() {
    if (troot != null) {
        assert(troot->red == 0);
        black_height(troot);
        check_order(troot, 0 - 1000000, 1000000);
    }
    return 0;
}
"#
}

/// Red-black tree (STAMP's `rbtree`): gets are pure readers, so the
/// effect scheme lets coarse read locks share — the paper's 2× win of
/// coarse locks over a global lock in the low setting.
pub fn rbtree(c: Contention, ops: i64, nopk: i64) -> RunSpec {
    let src = format!(
        r#"
{tree}
fn init(nopk, prefill, keyspace) {{
    TNOPS = nopk;
    troot = null;
    let i = 0;
    while (i < prefill) {{
        tree_put(rand(keyspace), i);
        i = i + 1;
    }}
    return 0;
}}

fn check() {{
    tree_check();
    return 0;
}}
{harness}
"#,
        tree = rbtree_source(),
        harness = harness("tree_put", "tree_get", "tree_remove")
    );
    spec("rbtree", src, c, ops, nopk, 256)
}

/// `TH`: rbtree and hashtable side by side; each operation picks one of
/// the two structures at random. Disjoint points-to classes mean the
/// coarse locks of the two structures never conflict — the paper's
/// best case for multi-grain locks over a global lock.
pub fn th(c: Contention, ops: i64, nopk: i64) -> RunSpec {
    let (putw, getw, totw) = weights(c);
    let src = format!(
        r#"
{tree}
struct hentry {{ hnext; hkey; hval; }}
global htab, hnb, hcount, HNOPS;

fn ht_rehash() {{
    let nn = hnb * 2;
    let nt = new(nn);
    let i = 0;
    while (i < hnb) {{
        let cur = htab[i];
        while (cur != null) {{
            let nxt = cur->hnext;
            let b = cur->hkey % nn;
            cur->hnext = nt[b];
            nt[b] = cur;
            cur = nxt;
        }}
        i = i + 1;
    }}
    htab = nt;
    hnb = nn;
    return 0;
}}

fn ht_put(k, v) {{
    atomic {{
        nops(HNOPS);
        let b = k % hnb;
        let cur = htab[b];
        let found = 0;
        while (cur != null && found == 0) {{
            if (cur->hkey == k) {{ cur->hval = v; found = 1; }}
            if (found == 0) {{ cur = cur->hnext; }}
        }}
        if (found == 0) {{
            let e = new hentry;
            e->hkey = k;
            e->hval = v;
            e->hnext = htab[b];
            htab[b] = e;
            hcount = hcount + 1;
            if (hcount > hnb * 2) {{ ht_rehash(); }}
        }}
    }}
    return 0;
}}

fn ht_get(k) {{
    let res = 0 - 1;
    atomic {{
        nops(HNOPS);
        let b = k % hnb;
        let cur = htab[b];
        let going = 1;
        while (cur != null && going == 1) {{
            if (cur->hkey == k) {{ res = cur->hval; going = 0; }}
            if (going == 1) {{ cur = cur->hnext; }}
        }}
    }}
    return res;
}}

fn ht_remove(k) {{
    atomic {{
        nops(HNOPS);
        let b = k % hnb;
        let prev = null;
        let cur = htab[b];
        let going = 1;
        while (cur != null && going == 1) {{
            if (cur->hkey == k) {{
                if (prev == null) {{ htab[b] = cur->hnext; }} else {{ prev->hnext = cur->hnext; }}
                hcount = hcount - 1;
                going = 0;
            }}
            if (going == 1) {{ prev = cur; cur = cur->hnext; }}
        }}
    }}
    return 0;
}}

fn init(nopk, prefill, keyspace) {{
    TNOPS = nopk;
    HNOPS = nopk;
    troot = null;
    hnb = 16;
    hcount = 0;
    htab = new(hnb);
    let i = 0;
    while (i < prefill) {{
        tree_put(rand(keyspace), i);
        ht_put(rand(keyspace), i);
        i = i + 1;
    }}
    return 0;
}}

fn check() {{
    tree_check();
    let n = 0;
    let i = 0;
    while (i < hnb) {{
        let cur = htab[i];
        while (cur != null) {{
            assert(cur->hkey % hnb == i);
            n = n + 1;
            cur = cur->hnext;
            assert(n < 4000000);
        }}
        i = i + 1;
    }}
    assert(n == hcount);
    return n;
}}

fn worker(ops, putw, getw, totw, keyspace) {{
    let i = 0;
    while (i < ops) {{
        let which = rand(2);
        let r = rand(totw);
        let k = rand(keyspace);
        if (which == 0) {{
            if (r < putw) {{ tree_put(k, k + 1); }}
            else {{
                if (r < putw + getw) {{ let v = tree_get(k); }}
                else {{ tree_remove(k); }}
            }}
        }} else {{
            if (r < putw) {{ ht_put(k, k + 1); }}
            else {{
                if (r < putw + getw) {{ let v = ht_get(k); }}
                else {{ ht_remove(k); }}
            }}
        }}
        i = i + 1;
    }}
    return 0;
}}
"#,
        tree = rbtree_source(),
    );
    RunSpec {
        name: format!("TH-{}", c.suffix()),
        source: src,
        init: ("init", vec![nopk, 128, 8192]),
        worker: ("worker", vec![ops, putw, getw, totw, 8192]),
        check: Some("check"),
        heap_cells: 1 << 22,
    }
}

/// All five micro-benchmarks at one contention setting.
pub fn all(c: Contention, ops: i64, nopk: i64) -> Vec<RunSpec> {
    vec![
        hashtable(c, ops, nopk),
        rbtree(c, ops, nopk),
        list(c, ops, nopk),
        hashtable2(c, ops, nopk),
        th(c, ops, nopk),
    ]
}
