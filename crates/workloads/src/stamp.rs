//! STAMP-like kernels (§6.1).
//!
//! The paper evaluates on STAMP v0.9.6. Full STAMP is tens of thousands
//! of lines of domain C code; what Table 2 and Figure 8 measure,
//! however, is the *concurrency shape* of each program — section
//! length, read/write mix, and structural conflict rate — which the
//! paper itself dilutes with nop loops. Each kernel below preserves that
//! shape (see DESIGN.md for the per-benchmark argument):
//!
//! * `genome` — deduplication into a shared chained hashtable plus a
//!   shared uniqueness counter: write-heavy, structurally conflicting;
//!   pessimistic locks ≈ global lock, STM pays for aborts, fine locks
//!   pay pure overhead.
//! * `vacation` — reservation transactions reading many random slots of
//!   several tables and writing a few: long sections with overlapping
//!   read/write sets; STM aborts pathologically.
//! * `kmeans` — nearest-centroid assignment outside the section, shared
//!   accumulator update inside: short conflicting writes.
//! * `bayes` — long learner sections scanning a row of a shared
//!   adjacency matrix and occasionally writing: locks ≈ global.
//! * `labyrinth` — grid routing: sections read a large region and write
//!   a short, mostly thread-disjoint path; the one STAMP program where
//!   the STM wins.

use crate::RunSpec;

/// `genome`-shaped kernel.
pub fn genome(ops: i64, nopk: i64) -> RunSpec {
    let source = r#"
struct gentry { gnext; gkey; }
global gtab, GNB, GNOPS, unique, stats;

fn init(nopk, nbuckets, nthreads) {
    GNOPS = nopk;
    GNB = nbuckets;
    gtab = new(nbuckets);
    unique = 0;
    stats = new(nthreads);
    return 0;
}

fn insert_segment(k) {
    atomic {
        nops(GNOPS);
        // Dedup bookkeeping is read up front and written at the end:
        // every overlapping insertion conflicts, which is what keeps
        // genome's transactions from scaling (paper: TL2 is ~1.8x
        // slower than a global lock here).
        let u = unique;
        let b = k % GNB;
        let cur = gtab[b];
        let found = 0;
        while (cur != null && found == 0) {
            if (cur->gkey == k) { found = 1; }
            if (found == 0) { cur = cur->gnext; }
        }
        if (found == 0) {
            let e = new gentry;
            e->gkey = k;
            e->gnext = gtab[b];
            gtab[b] = e;
            unique = u + 1;
        }
    }
    return 0;
}

fn bump_stat(t) {
    // A per-thread statistics slot: the inference protects it with a
    // single fine-grain lock (the index is a pre-section value), which
    // is pure protocol overhead versus the coarse configuration —
    // reproducing genome's Fine+Coarse > Coarse cost.
    atomic {
        stats[t] = stats[t] + 1;
    }
    return 0;
}

fn worker(ops, keyspace) {
    let t = tid();
    let i = 0;
    while (i < ops) {
        insert_segment(rand(keyspace));
        bump_stat(t);
        i = i + 1;
    }
    return 0;
}

fn check() {
    let n = 0;
    let i = 0;
    while (i < GNB) {
        let cur = gtab[i];
        while (cur != null) {
            assert(cur->gkey % GNB == i);
            n = n + 1;
            cur = cur->gnext;
            assert(n < 1000000);
        }
        i = i + 1;
    }
    assert(n == unique);
    return n;
}
"#
    .to_owned();
    RunSpec {
        name: "genome".into(),
        source,
        // A wide segment space keeps insertions mostly-new (as in the
        // dedup phase of the real genome), so the shared uniqueness
        // bookkeeping stays contended for the whole run.
        init: ("init", vec![nopk, 4096, 16]),
        worker: ("worker", vec![ops, 262144]),
        check: Some("check"),
        heap_cells: 1 << 22,
    }
}

/// `vacation`-shaped kernel.
pub fn vacation(ops: i64, nopk: i64) -> RunSpec {
    let source = r#"
global cars, flights, rooms, customers, S, VNOPS, done;

fn init(nopk, slots) {
    VNOPS = nopk;
    S = slots;
    cars = new(slots);
    flights = new(slots);
    rooms = new(slots);
    customers = new(slots);
    let i = 0;
    while (i < slots) {
        cars[i] = 100;
        flights[i] = 100;
        rooms[i] = 100;
        i = i + 1;
    }
    done = 0;
    return 0;
}

fn reserve() {
    atomic {
        nops(VNOPS);
        // The reservation manager's shared bookkeeping is read first
        // and written last — the transaction stays vulnerable to every
        // concurrent commit for its whole duration, which is what makes
        // vacation's rollback rate (and the paper's 263s STM column)
        // so catastrophic.
        let d = done;
        // Query phase: scan many random slots across the tables (the
        // long read set that makes rollbacks so costly).
        let i = 0;
        let sum = 0;
        while (i < 10) {
            sum = sum + cars[rand(S)];
            sum = sum + flights[rand(S)];
            sum = sum + rooms[rand(S)];
            i = i + 1;
        }
        // Update phase.
        let a = rand(S);
        let b = rand(S);
        if (cars[a] > 0) { cars[a] = cars[a] - 1; }
        if (rooms[b] > 0) { rooms[b] = rooms[b] - 1; }
        customers[rand(S)] = sum;
        done = d + 1;
    }
    return 0;
}

fn worker(ops) {
    let i = 0;
    while (i < ops) {
        reserve();
        i = i + 1;
    }
    return 0;
}

fn check() {
    // Every reservation decremented at most two slots; totals stay in
    // range and the completion counter is exact (checked by the
    // harness against ops × threads).
    let i = 0;
    while (i < S) {
        assert(cars[i] >= 0);
        assert(rooms[i] >= 0);
        i = i + 1;
    }
    return done;
}
"#
    .to_owned();
    RunSpec {
        name: "vacation".into(),
        source,
        init: ("init", vec![nopk, 64]),
        worker: ("worker", vec![ops]),
        check: Some("check"),
        heap_cells: 1 << 20,
    }
}

/// `kmeans`-shaped kernel.
pub fn kmeans(ops: i64, nopk: i64) -> RunSpec {
    let source = r#"
global points, acc, ccount, NP, K, D, KNOPS, total;

fn init(nopk, npoints, k, d) {
    KNOPS = nopk;
    NP = npoints;
    K = k;
    D = d;
    points = new(npoints * d);
    acc = new(k * d);
    ccount = new(k);
    let i = 0;
    while (i < npoints * d) {
        points[i] = rand(1000);
        i = i + 1;
    }
    total = 0;
    return 0;
}

fn nearest(p) {
    // Pure read phase (outside any section, as in STAMP's kmeans:
    // assignment reads, update writes).
    let best = 0;
    let bestd = 0 - 1;
    let c = 0;
    while (c < K) {
        let dist = 0;
        let j = 0;
        while (j < D) {
            let dv = points[p * D + j] - acc[c * D + j];
            dist = dist + dv * dv;
            j = j + 1;
        }
        if (bestd < 0 || dist < bestd) {
            bestd = dist;
            best = c;
        }
        c = c + 1;
    }
    return best;
}

fn update(p, c) {
    atomic {
        nops(KNOPS);
        let j = 0;
        while (j < D) {
            acc[c * D + j] = acc[c * D + j] + points[p * D + j];
            j = j + 1;
        }
        ccount[c] = ccount[c] + 1;
        total = total + 1;
    }
    return 0;
}

fn worker(ops) {
    let i = 0;
    while (i < ops) {
        let p = rand(NP);
        let c = nearest(p);
        update(p, c);
        i = i + 1;
    }
    return 0;
}

fn check() {
    let s = 0;
    let c = 0;
    while (c < K) {
        s = s + ccount[c];
        c = c + 1;
    }
    assert(s == total);
    return total;
}
"#
    .to_owned();
    RunSpec {
        name: "kmeans".into(),
        source,
        init: ("init", vec![nopk, 256, 8, 4]),
        worker: ("worker", vec![ops]),
        check: Some("check"),
        heap_cells: 1 << 20,
    }
}

/// `bayes`-shaped kernel.
pub fn bayes(ops: i64, nopk: i64) -> RunSpec {
    let source = r#"
global adj, N, BNOPS, learned;

fn init(nopk, n) {
    BNOPS = nopk;
    N = n;
    adj = new(n * n);
    learned = 0;
    return 0;
}

fn learn_step(from) {
    atomic {
        nops(BNOPS);
        // Score the whole row (a long read), then occasionally flip an
        // edge (a write): the long learner sections of bayes.
        let j = 0;
        let s = 0;
        while (j < N) {
            s = s + adj[from * N + j];
            j = j + 1;
        }
        if (rand(4) == 0) {
            adj[from * N + rand(N)] = s % 97 + 1;
        }
        learned = learned + 1;
    }
    return 0;
}

fn worker(ops) {
    let i = 0;
    while (i < ops) {
        learn_step(rand(N));
        i = i + 1;
    }
    return 0;
}

fn check() {
    return learned;
}
"#
    .to_owned();
    RunSpec {
        name: "bayes".into(),
        source,
        init: ("init", vec![nopk, 48]),
        worker: ("worker", vec![ops]),
        check: Some("check"),
        heap_cells: 1 << 20,
    }
}

/// `labyrinth`-shaped kernel.
pub fn labyrinth(ops: i64, nopk: i64) -> RunSpec {
    let source = r#"
global grid, STRIPE, SLACK, LNOPS;

fn init(nopk, stripe, slack, nthreads) {
    LNOPS = nopk;
    STRIPE = stripe;
    SLACK = slack;
    grid = new(stripe * nthreads + slack + 256);
    return 0;
}

fn route(base) {
    atomic {
        nops(LNOPS);
        // Copy-in: read a large region of the grid.
        let j = 0;
        let s = 0;
        while (j < 128) {
            s = s + grid[base + j];
            j = j + 1;
        }
        // Write the chosen path: few cells, mostly thread-disjoint.
        let j2 = 0;
        while (j2 < 16) {
            grid[base + j2 * 8] = s + j2 + 1;
            j2 = j2 + 1;
        }
    }
    return 0;
}

fn worker(ops) {
    let t = tid();
    let i = 0;
    let routed = 0;
    while (i < ops) {
        // Mostly private stripes with a small overlapping slack region:
        // conflicts are possible but rare, the regime where optimism
        // wins.
        let base = t * STRIPE + rand(SLACK);
        route(base);
        routed = routed + 1;
        i = i + 1;
    }
    return routed;
}

fn check() {
    return 0;
}
"#
    .to_owned();
    RunSpec {
        name: "labyrinth".into(),
        source,
        init: ("init", vec![nopk, 512, 64, 16]),
        worker: ("worker", vec![ops]),
        check: Some("check"),
        heap_cells: 1 << 20,
    }
}

/// All five kernels with the low-contention parameter set the paper
/// uses for Table 2.
pub fn all(ops: i64, nopk: i64) -> Vec<RunSpec> {
    vec![
        genome(ops, nopk),
        vacation(ops, nopk),
        kmeans(ops, nopk),
        bayes(ops, nopk),
        labyrinth(ops, nopk),
    ]
}
