//! End-to-end tests of the lock inference on the paper's own examples
//! and on targeted interprocedural scenarios.

use lir::{Eff, PathOp, Program, VarId};
use lockinfer::dataflow::{analyze_program_with_library, SectionResult};
use lockinfer::library::{ExternalSummary, LibrarySpec};
use lockinfer::{analyze_program, compile_with_locks};
use lockscheme::{AbsLock, SchemeConfig};
use pointsto::PointsTo;

fn var(p: &Program, name: &str) -> VarId {
    VarId(
        p.vars
            .iter()
            .position(|vi| p.interner.resolve(vi.name) == name)
            .unwrap_or_else(|| panic!("no var {name}")) as u32,
    )
}

fn field(p: &Program, name: &str) -> lir::FieldId {
    lir::FieldId(
        p.fields
            .iter()
            .position(|fi| p.interner.resolve(fi.name) == name)
            .unwrap() as u32,
    )
}

/// Renders a section's locks for readable assertions.
fn lock_strings(p: &Program, sec: &SectionResult) -> Vec<String> {
    let mut v: Vec<String> = sec
        .locks
        .iter()
        .map(|l| p.render_lock(&l.to_spec()))
        .collect();
    v.sort();
    v
}

const MOVE_SRC: &str = r#"
    struct elem { next; data; }
    struct list { head; }
    fn move_(from, to) {
        atomic {
            let x = to->head;
            let y = from->head;
            from->head = null;
            if (x == null) {
                to->head = y;
            } else {
                while (x->next != null) { x = x->next; }
                x->next = y;
            }
        }
    }
    fn main() {
        let l1 = new list;
        let l2 = new list;
        l1->head = new elem;
        l2->head = new elem;
        move_(l1, l2);
        move_(l2, l1);
    }
"#;

/// Figure 1(c): fine locks on `&(to->head)` and `&(from->head)`, plus a
/// coarse lock `E` over the list elements (the unbounded traversal).
#[test]
fn figure1_move_example() {
    let (p, analysis, _) = compile_with_locks(MOVE_SRC, 3).unwrap();
    assert_eq!(analysis.sections.len(), 1);
    let sec = &analysis.sections[0];
    let rendered = lock_strings(&p, sec);

    let head = field(&p, "head");
    let (to, from) = (var(&p, "to"), var(&p, "from"));
    let fine_to = lir::PathExpr {
        base: to,
        ops: vec![PathOp::Deref, PathOp::Field(head)],
    };
    let fine_from = lir::PathExpr {
        base: from,
        ops: vec![PathOp::Deref, PathOp::Field(head)],
    };
    let has_fine = |path: &lir::PathExpr, eff: Eff| {
        sec.locks
            .iter()
            .any(|l| l.path.as_ref() == Some(path) && l.eff == eff)
    };
    assert!(
        has_fine(&fine_to, Eff::Rw),
        "fine rw lock on to->head; got {rendered:?}"
    );
    assert!(
        has_fine(&fine_from, Eff::Rw),
        "fine rw lock on from->head; got {rendered:?}"
    );
    let n_coarse = sec.locks.iter().filter(|l| !l.is_fine()).count();
    assert_eq!(
        n_coarse, 1,
        "exactly one coarse lock (the elements); got {rendered:?}"
    );
    assert!(
        sec.locks.iter().all(|l| !l.is_global()),
        "no global lock needed; got {rendered:?}"
    );
    // The coarse lock covers the element class (where x->next lives),
    // which is distinct from the lists' class.
    let pt = PointsTo::analyze(&p);
    let elem_class = pt
        .class_of_path(&lir::PathExpr {
            base: to,
            ops: vec![PathOp::Deref, PathOp::Field(head), PathOp::Deref],
        })
        .unwrap();
    let coarse = sec.locks.iter().find(|l| !l.is_fine()).unwrap();
    assert_eq!(coarse.pts, Some(elem_class));
}

/// Figure 2: to protect `*z = null` at the section entry the analysis
/// must lock both `y->data` (value) and `w` — because `x` may alias `y`.
#[test]
fn figure2_alias_tracing() {
    let src = r#"
        struct s { data; }
        fn main(x, y, w, c) {
            if (c == null) { x = y; }
            atomic {
                x->data = w;
                let z = y->data;
                *z = null;
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let data = field(&p, "data");
    let (x, y, w) = (var(&p, "x"), var(&p, "y"), var(&p, "w"));
    let has = |base: VarId, ops: Vec<PathOp>, eff: Eff| {
        sec.locks.iter().any(|l| {
            l.path.as_ref()
                == Some(&lir::PathExpr {
                    base,
                    ops: ops.clone(),
                })
                && l.eff == eff
        })
    };
    // *(*ȳ + data): the cell z points to, traced to the entry.
    assert!(
        has(
            y,
            vec![PathOp::Deref, PathOp::Field(data), PathOp::Deref],
            Eff::Rw
        ),
        "lock on value of y->data: {:?}",
        lock_strings(&p, sec)
    );
    // *w̄: the aliased case where x->data was overwritten by w.
    assert!(
        has(w, vec![PathOp::Deref], Eff::Rw),
        "lock on *w: {:?}",
        lock_strings(&p, sec)
    );
    // x->data cell itself is written.
    assert!(
        has(x, vec![PathOp::Deref, PathOp::Field(data)], Eff::Rw),
        "lock on x->data cell: {:?}",
        lock_strings(&p, sec)
    );
}

/// Reads inside a section produce read-only locks; writes read-write.
#[test]
fn effects_are_tracked() {
    let src = r#"
        struct s { f; }
        fn main(a, b) {
            atomic { let x = a->f; }
            atomic { b->f = null; }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let read_sec = &analysis.sections[0];
    let write_sec = &analysis.sections[1];
    assert!(
        read_sec.locks.iter().all(|l| l.eff == Eff::Ro),
        "pure reader takes only ro locks: {:?}",
        lock_strings(&p, read_sec)
    );
    assert!(
        write_sec.locks.iter().any(|l| l.eff == Eff::Rw),
        "writer takes an rw lock: {:?}",
        lock_strings(&p, write_sec)
    );
}

/// k = 0 yields only coarse locks (Figure 7's first column).
#[test]
fn k0_is_all_coarse() {
    let (_, analysis, _) = compile_with_locks(MOVE_SRC, 0).unwrap();
    let counts = analysis.lock_counts();
    assert_eq!(counts.fine_ro + counts.fine_rw, 0);
    assert!(counts.total() > 0);
}

/// Section-local allocations shed their locks once k is large enough to
/// trace them to the allocation site (the paper's k = 3 dip).
#[test]
fn section_local_allocations_need_no_locks() {
    let src = r#"
        struct s { f; }
        fn main() {
            atomic {
                let n = new s;
                n->f = null;
                let t = n->f;
            }
        }
    "#;
    let (_, analysis, _) = compile_with_locks(src, 9).unwrap();
    assert!(
        analysis.sections[0].locks.is_empty(),
        "nothing escapes, nothing shared: {:?}",
        analysis.sections[0].locks
    );
    // With k = 0 the same section still takes a coarse lock: the
    // allocation-site class is locked conservatively.
    let (_, analysis0, _) = compile_with_locks(src, 0).unwrap();
    assert!(!analysis0.sections[0].locks.is_empty());
}

/// Accesses in called functions are protected at the caller's section
/// entry via function summaries (map/unmap).
#[test]
fn interprocedural_summaries() {
    let src = r#"
        struct list { head; }
        fn set_head(l, v) { l->head = v; }
        fn main(a) {
            atomic { set_head(a, null); }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let head = field(&p, "head");
    let a = var(&p, "a");
    let want = lir::PathExpr {
        base: a,
        ops: vec![PathOp::Deref, PathOp::Field(head)],
    };
    assert!(
        sec.locks
            .iter()
            .any(|l| l.path.as_ref() == Some(&want) && l.eff == Eff::Rw),
        "callee's store surfaces as a->head at the caller: {:?}",
        lock_strings(&p, sec)
    );
}

/// A two-level call chain: the access is two frames down.
#[test]
fn nested_call_chain() {
    let src = r#"
        struct list { head; }
        fn inner(q) { q->head = null; }
        fn outer(r) { inner(r); }
        fn main(a) { atomic { outer(a); } }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let head = field(&p, "head");
    let a = var(&p, "a");
    let want = lir::PathExpr {
        base: a,
        ops: vec![PathOp::Deref, PathOp::Field(head)],
    };
    assert!(
        sec.locks.iter().any(|l| l.path.as_ref() == Some(&want)),
        "two-level summary: {:?}",
        lock_strings(&p, sec)
    );
}

/// Recursive functions terminate and fall back to coarse locks for the
/// unbounded part.
#[test]
fn recursion_terminates_with_coarse_locks() {
    let src = r#"
        struct node { next; }
        fn last(n) {
            let t = n->next;
            if (t == null) { return n; }
            return last(t);
        }
        fn main(a) {
            atomic { let l = last(a); }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 3).unwrap();
    let sec = &analysis.sections[0];
    assert!(
        sec.locks.iter().any(|l| !l.is_fine()),
        "unbounded traversal needs a coarse lock: {:?}",
        lock_strings(&p, sec)
    );
}

/// Return values are traced through `ret_f` back into the caller.
#[test]
fn return_value_mapping() {
    let src = r#"
        struct list { head; }
        fn get(l) { return l->head; }
        fn main(a) {
            atomic {
                let h = get(a);
                *h = null;
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let head = field(&p, "head");
    let a = var(&p, "a");
    // *h at entry = *(value of a->head) = a̅ deref, field head, deref.
    let want = lir::PathExpr {
        base: a,
        ops: vec![PathOp::Deref, PathOp::Field(head), PathOp::Deref],
    };
    assert!(
        sec.locks
            .iter()
            .any(|l| l.path.as_ref() == Some(&want) && l.eff == Eff::Rw),
        "callee return traced: {:?}",
        lock_strings(&p, sec)
    );
}

/// Globals read/written inside sections get variable-address locks;
/// thread-local temps do not.
#[test]
fn globals_are_locked_locals_are_not() {
    let src = r#"
        global g;
        fn main() {
            atomic { let t = g; g = t; }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let g = var(&p, "g");
    assert!(
        sec.locks
            .iter()
            .any(|l| l.path.as_ref() == Some(&lir::PathExpr::var(g)) && l.eff == Eff::Rw),
        "global cell locked rw: {:?}",
        lock_strings(&p, sec)
    );
    assert_eq!(
        sec.locks.len(),
        1,
        "no locks for the local t: {:?}",
        lock_strings(&p, sec)
    );
}

/// Merge keeps maximal locks only: a coarse lock subsumes fine locks of
/// the same class at the same effect.
#[test]
fn redundant_fine_locks_are_pruned() {
    let src = r#"
        struct node { next; }
        fn main(a) {
            atomic {
                let x = a->next;      // fine candidate
                while (x != null) { x = x->next; }   // forces coarse on the class
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 2).unwrap();
    let sec = &analysis.sections[0];
    // Since the traversal produces a coarse rw... actually ro lock on
    // the node class, any fine ro lock of that class must be pruned.
    let coarse_classes: Vec<_> = sec
        .locks
        .iter()
        .filter(|l| !l.is_fine())
        .map(|l| (l.pts, l.eff))
        .collect();
    for l in sec.locks.iter().filter(|l| l.is_fine()) {
        assert!(
            !coarse_classes
                .iter()
                .any(|(c, e)| *c == l.pts && l.eff.leq(*e)),
            "fine lock {} subsumed by a coarse lock in {:?}",
            l,
            lock_strings(&p, sec)
        );
    }
}

/// Nested atomic sections are analyzed independently; the outer one
/// covers the inner accesses too.
#[test]
fn nested_sections() {
    let src = r#"
        global g, h;
        fn main() {
            atomic {
                g = null;
                atomic { h = null; }
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    assert_eq!(analysis.sections.len(), 2);
    let outer = &analysis.sections[0];
    let inner = &analysis.sections[1];
    let (g, h) = (var(&p, "g"), var(&p, "h"));
    let mentions = |sec: &SectionResult, v: VarId| {
        sec.locks
            .iter()
            .any(|l| l.path.as_ref() == Some(&lir::PathExpr::var(v)))
    };
    assert!(
        mentions(outer, g) && mentions(outer, h),
        "outer protects both"
    );
    assert!(
        mentions(inner, h) && !mentions(inner, g),
        "inner protects only h"
    );
}

/// The transformation replaces markers and keeps everything else.
#[test]
fn transform_replaces_markers() {
    let (p, analysis, transformed) = compile_with_locks(MOVE_SRC, 3).unwrap();
    let text = transformed.to_string();
    assert!(text.contains("acquireAll #0"));
    assert!(text.contains("releaseAll #0"));
    assert!(!text.contains("enter_atomic"));
    assert!(!text.contains("exit_atomic"));
    // Same instruction count, same functions.
    assert_eq!(p.instr_count(), transformed.instr_count());
    let _ = analysis;
}

/// Pre-compiled library support: the spec's coarse locks stand in for
/// the opaque function's accesses, and fine locks crossing the call are
/// demoted when the spec says the callee modifies their cells.
#[test]
fn library_specifications() {
    let src = r#"
        struct list { head; }
        fn opaque(l) { l->head = null; }
        fn main(a) {
            atomic {
                opaque(a);
                let x = a->head;
                *x = null;
            }
        }
    "#;
    let p = lir::compile(src).unwrap();
    let pt = PointsTo::analyze(&p);
    let cfg = SchemeConfig::full(9, p.elem_field_opt());
    let opaque_fn = p.function_named("opaque").unwrap();

    // Treat `opaque` as pre-compiled: it may touch and modify the list
    // class.
    let a = var(&p, "a");
    let head = field(&p, "head");
    let list_class = pt
        .class_of_path(&lir::PathExpr {
            base: a,
            ops: vec![PathOp::Deref],
        })
        .unwrap();
    let mut lib = LibrarySpec::new();
    lib.insert(
        opaque_fn,
        ExternalSummary {
            locks: vec![AbsLock::coarse(list_class, Eff::Rw)],
            modifies: vec![list_class],
        },
    );
    let analysis = analyze_program_with_library(&p, &pt, cfg, &lib);
    let sec = &analysis.sections[0];
    // The spec's coarse lock is present.
    assert!(
        sec.locks
            .iter()
            .any(|l| !l.is_fine() && l.pts == Some(list_class) && l.eff == Eff::Rw),
        "spec lock present: {:?}",
        lock_strings(&p, sec)
    );
    // The lock for *x (whose expression reads a->head, which the opaque
    // callee may modify) must have been demoted to a coarse lock — no
    // fine lock mentioning head survives below the call.
    let fine_through_head = sec.locks.iter().any(|l| {
        l.path
            .as_ref()
            .is_some_and(|p2| p2.ops.contains(&PathOp::Field(head)) && p2.ops.len() > 2)
    });
    assert!(
        !fine_through_head,
        "fine locks across the opaque call were demoted: {:?}",
        lock_strings(&p, sec)
    );
    // Compare: with the real body analyzed, the same program still
    // infers sound locks (sanity).
    let full = analyze_program(&p, &pt, cfg);
    assert!(!full.sections[0].locks.is_empty());
}

/// Increasing k refines never-coarser lock sets: the count of coarse
/// locks is non-increasing in k for these programs.
#[test]
fn k_sweep_monotonicity_on_examples() {
    for src in [MOVE_SRC] {
        let mut prev_coarse = usize::MAX;
        for k in 0..6 {
            let (_, analysis, _) = compile_with_locks(src, k).unwrap();
            let c = analysis.lock_counts();
            let coarse = c.coarse_ro + c.coarse_rw;
            assert!(
                coarse <= prev_coarse,
                "coarse count increased from {prev_coarse} to {coarse} at k={k}"
            );
            prev_coarse = coarse;
        }
    }
}

/// A section in a helper function: its locks are expressed in the
/// helper's own parameters and evaluated per invocation.
#[test]
fn section_inside_callee_uses_callee_params() {
    let src = r#"
        struct list { head; }
        fn clear(l) {
            atomic { l->head = null; }
        }
        fn main(a, b) { clear(a); clear(b); }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let clear_fn = p.function_named("clear").unwrap();
    let sec = analysis
        .sections
        .iter()
        .find(|s| s.func == clear_fn)
        .unwrap();
    let l = var(&p, "l");
    let head = field(&p, "head");
    let want = lir::PathExpr {
        base: l,
        ops: vec![PathOp::Deref, PathOp::Field(head)],
    };
    assert!(
        sec.locks
            .iter()
            .any(|k| k.path.as_ref() == Some(&want) && k.eff == Eff::Rw),
        "{:?}",
        lock_strings(&p, sec)
    );
}

/// Both branches of a diamond contribute locks; the merge keeps both.
#[test]
fn diamond_merges_branch_locks() {
    let src = r#"
        struct s { f; g; }
        fn main(a, b, c) {
            atomic {
                if (c == null) { a->f = null; } else { b->g = null; }
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let (a, b) = (var(&p, "a"), var(&p, "b"));
    let (f, g) = (field(&p, "f"), field(&p, "g"));
    let has = |base, fld| {
        sec.locks.iter().any(|l| {
            l.path.as_ref()
                == Some(&lir::PathExpr {
                    base,
                    ops: vec![PathOp::Deref, PathOp::Field(fld)],
                })
        })
    };
    assert!(has(a, f) && has(b, g), "{:?}", lock_strings(&p, sec));
}

/// Calling the same helper twice inside one section reuses its summary
/// and protects both receivers.
#[test]
fn summary_reused_across_call_sites() {
    let src = r#"
        struct list { head; }
        fn set_head(l, v) { l->head = v; }
        fn main(a, b) {
            atomic {
                set_head(a, null);
                set_head(b, null);
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let head = field(&p, "head");
    for name in ["a", "b"] {
        let base = var(&p, name);
        let want = lir::PathExpr {
            base,
            ops: vec![PathOp::Deref, PathOp::Field(head)],
        };
        assert!(
            sec.locks.iter().any(|l| l.path.as_ref() == Some(&want)),
            "missing lock for {name}: {:?}",
            lock_strings(&p, sec)
        );
    }
}

/// Aliased actuals (f(x, x)) are handled by the unmap substitution.
#[test]
fn aliased_actual_arguments() {
    let src = r#"
        struct s { f; g; }
        fn touch(p, q) { p->f = null; let t = q->g; }
        fn main(x) {
            atomic { touch(x, x); }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let x = var(&p, "x");
    let (f, g) = (field(&p, "f"), field(&p, "g"));
    let has = |fld, eff| {
        sec.locks.iter().any(|l| {
            l.path.as_ref()
                == Some(&lir::PathExpr {
                    base: x,
                    ops: vec![PathOp::Deref, PathOp::Field(fld)],
                })
                && l.eff == eff
        })
    };
    assert!(has(f, Eff::Rw), "{:?}", lock_strings(&p, sec));
    assert!(has(g, Eff::Ro), "{:?}", lock_strings(&p, sec));
}

/// Loops with break inside a section still converge to a sound set.
#[test]
fn loops_and_breaks_inside_sections() {
    let src = r#"
        struct node { next; val; }
        global head;
        fn main(limit) {
            atomic {
                let cur = head;
                let n = 0;
                while (cur != null) {
                    n = n + 1;
                    if (n > limit) { break; }
                    cur = cur->next;
                }
                head = cur;
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 3).unwrap();
    let sec = &analysis.sections[0];
    let head_var = var(&p, "head");
    assert!(
        sec.locks
            .iter()
            .any(|l| l.path.as_ref() == Some(&lir::PathExpr::var(head_var)) && l.eff == Eff::Rw),
        "{:?}",
        lock_strings(&p, sec)
    );
    assert!(
        sec.locks.iter().any(|l| !l.is_fine()),
        "traversal needs the node class"
    );
}

/// Effect canonicalization of summaries: a read-only call and a
/// writing call through the same helper keep their distinct effects.
#[test]
fn summary_effects_are_per_call() {
    let src = r#"
        struct s { f; }
        fn read_f(p) { return p->f; }
        fn main(a, b) {
            atomic {
                let r = read_f(a);
                b->f = r;
            }
        }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = &analysis.sections[0];
    let (a, b) = (var(&p, "a"), var(&p, "b"));
    let f = field(&p, "f");
    let eff_of = |base| {
        sec.locks
            .iter()
            .find(|l| {
                l.path.as_ref()
                    == Some(&lir::PathExpr {
                        base,
                        ops: vec![PathOp::Deref, PathOp::Field(f)],
                    })
            })
            .map(|l| l.eff)
    };
    assert_eq!(eff_of(a), Some(Eff::Ro), "{:?}", lock_strings(&p, sec));
    assert_eq!(eff_of(b), Some(Eff::Rw), "{:?}", lock_strings(&p, sec));
}

/// The hashtable-2 shape: a put that touches one bucket cell gets a
/// fine lock on that cell at k ≥ 1 (the paper's headline fine-grain
/// win).
#[test]
fn hashtable2_put_is_fine_grained() {
    let src = r#"
        struct entry { next; key; val; }
        global table;
        fn init() { table = new(16); }
        fn put(k, v) {
            atomic {
                let b = k % 16;
                let e = new entry;
                e->key = k;
                e->val = v;
                e->next = table[b];
                table[b] = e;
            }
        }
        fn main() { init(); put(1, 2); }
    "#;
    let (p, analysis, _) = compile_with_locks(src, 9).unwrap();
    let sec = analysis
        .sections
        .iter()
        .find(|s| !s.locks.is_empty())
        .unwrap();
    let rendered = lock_strings(&p, sec);
    // The bucket cell table[b] is written: a fine lock ending in the
    // dynamic [] offset, rw.
    let elem = p.elem_field_opt().unwrap();
    assert!(
        sec.locks.iter().any(|l| l
            .path
            .as_ref()
            .is_some_and(|pa| pa.ops.last() == Some(&PathOp::Field(elem)))
            && l.eff == Eff::Rw),
        "fine rw lock on the bucket family: {rendered:?}"
    );
    // The new entry's fields need no locks (section-local allocation).
    let entry_writes = sec.locks.iter().filter(|l| l.eff == Eff::Rw).count();
    assert!(
        entry_writes <= 3,
        "entry field stores shed locks: {rendered:?}"
    );
}
