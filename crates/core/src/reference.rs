//! The retained *naive reference solver*.
//!
//! This is the dataflow engine as it existed before the throughput
//! rewrite of [`crate::dataflow`]: per-section `Vec<LockId>` state with
//! linear membership/subsumption scans, a `(ctx, point, lock)`-triple
//! LIFO worklist, engine-local lock interning, and **no** sharing of
//! function summaries across sections — every section re-derives the
//! summaries of every callee it reaches.
//!
//! It exists for two reasons:
//!
//! * **correctness oracle** — the differential property test
//!   (`tests/differential.rs`) asserts the optimized engine computes
//!   exactly the same per-section lock sets on random programs;
//! * **perf baseline** — `analysis-bench` times it against the
//!   optimized engine to produce the before/after numbers in
//!   `BENCH_analysis.json`.
//!
//! Its transfer semantics (including the width-bound widening of
//! §3.3) are identical to the optimized engine's; only the data plane
//! differs. Keep it simple, not fast.

use crate::dataflow::{compute_modsets, ModSet, SectionResult, WIDTH_LIMIT};
use crate::library::LibrarySpec;
use crate::transfer::{TransferCtx, Transferred};
use lir::cfg::{atomic_regions, predecessors, AtomicRegion};
use lir::{Eff, FnId, Instr, Program, Rvalue, VarId, VarKind};
use lockscheme::abslock::prune_redundant;
use lockscheme::{AbsLock, ConfigMap, SchemeConfig};
use pointsto::PointsTo;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Runs the naive per-section inference for every atomic section of
/// `program`, with the same result shape as the optimized
/// [`crate::dataflow::analyze_program`].
pub fn analyze_program_reference(
    program: &Program,
    pt: &PointsTo,
    config: SchemeConfig,
    lib: &LibrarySpec,
) -> Vec<SectionResult> {
    analyze_program_reference_with_configs(program, pt, &ConfigMap::uniform(config), lib)
}

/// Per-section-config variant of [`analyze_program_reference`]: each
/// section is solved under `configs.for_section(id)`, mirroring
/// [`crate::dataflow::analyze_program_with_configs`]. Each `RefEngine`
/// already carries its own config, so the oracle stays the naive,
/// obviously-correct baseline the differential tests compare against.
pub fn analyze_program_reference_with_configs(
    program: &Program,
    pt: &PointsTo,
    configs: &ConfigMap,
    lib: &LibrarySpec,
) -> Vec<SectionResult> {
    let modsets = compute_modsets(program, pt, lib);
    let mut sections = Vec::new();
    for func in &program.functions {
        for region in atomic_regions(&func.body) {
            let config = configs.for_section(region.id.0);
            let locks = RefEngine::new(program, pt, config, func.id, region, lib, &modsets).run();
            sections.push(SectionResult {
                id: region.id,
                func: func.id,
                enter: region.enter,
                exit: region.exit,
                locks,
            });
        }
    }
    sections.sort_by_key(|s| s.id);
    sections
}

/// Engine-local interned lock index.
type LockId = u32;
/// Engine-local interned context index.
type CtxId = u32;
/// A call site awaiting summary results.
type Site = (CtxId, u32);

/// Analysis context: which instance of the dataflow a fact belongs to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Ctx {
    /// The atomic region itself, in the section's function.
    Root,
    /// The query-independent pass over a callee collecting its own
    /// accesses.
    Gen(FnId),
    /// A summary computation: push this exit lock (always `rw`-
    /// canonical) through the callee.
    Query(FnId, LockId),
}

struct RefEngine<'a> {
    program: &'a Program,
    pt: &'a PointsTo,
    config: SchemeConfig,
    tctx: TransferCtx<'a>,
    lib: &'a LibrarySpec,
    root_fn: FnId,
    region: AtomicRegion,
    modsets: &'a [ModSet],
    bodies: HashMap<FnId, Rc<Vec<Instr>>>,
    preds: HashMap<FnId, Rc<Vec<Vec<u32>>>>,
    // Interners.
    lockdb: Vec<AbsLock>,
    lock_ids: HashMap<AbsLock, LockId>,
    ctxdb: Vec<Ctx>,
    ctx_ids: HashMap<Ctx, CtxId>,
    // Dataflow state.
    state: HashMap<(CtxId, u32), Vec<LockId>>,
    worklist: Vec<(CtxId, u32, LockId)>,
    gen_entry: HashMap<FnId, Vec<LockId>>,
    query_entry: HashMap<(FnId, LockId), Vec<LockId>>,
    gen_dependents: HashMap<FnId, Vec<Site>>,
    query_dependents: HashMap<(FnId, LockId), Vec<(Site, Eff)>>,
    started_queries: HashSet<(FnId, LockId)>,
    result: Vec<AbsLock>,
}

impl<'a> RefEngine<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        program: &'a Program,
        pt: &'a PointsTo,
        config: SchemeConfig,
        root_fn: FnId,
        region: AtomicRegion,
        lib: &'a LibrarySpec,
        modsets: &'a [ModSet],
    ) -> Self {
        let tctx = TransferCtx {
            program,
            pt,
            elem: config.elem_field,
        };
        RefEngine {
            program,
            pt,
            config,
            tctx,
            lib,
            root_fn,
            region,
            modsets,
            bodies: HashMap::new(),
            preds: HashMap::new(),
            lockdb: Vec::new(),
            lock_ids: HashMap::new(),
            ctxdb: Vec::new(),
            ctx_ids: HashMap::new(),
            state: HashMap::new(),
            worklist: Vec::new(),
            gen_entry: HashMap::new(),
            query_entry: HashMap::new(),
            gen_dependents: HashMap::new(),
            query_dependents: HashMap::new(),
            started_queries: HashSet::new(),
            result: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<AbsLock> {
        self.seed();
        while let Some((ctx, idx, lock)) = self.worklist.pop() {
            self.process(ctx, idx, lock);
        }
        let mut result = std::mem::take(&mut self.result);
        prune_redundant(&mut result);
        result
    }

    fn intern_lock(&mut self, lock: AbsLock) -> LockId {
        if let Some(&id) = self.lock_ids.get(&lock) {
            return id;
        }
        let id = self.lockdb.len() as LockId;
        self.lockdb.push(lock.clone());
        self.lock_ids.insert(lock, id);
        id
    }

    fn intern_ctx(&mut self, ctx: Ctx) -> CtxId {
        if let Some(&id) = self.ctx_ids.get(&ctx) {
            return id;
        }
        let id = self.ctxdb.len() as CtxId;
        self.ctxdb.push(ctx.clone());
        self.ctx_ids.insert(ctx, id);
        id
    }

    fn ctx_fn(&self, ctx: CtxId) -> FnId {
        match &self.ctxdb[ctx as usize] {
            Ctx::Root => self.root_fn,
            Ctx::Gen(f) | Ctx::Query(f, _) => *f,
        }
    }

    /// Seeds `G`-set facts for the root region and every reachable
    /// callee, registers gen-dependence of call sites, and precomputes
    /// predecessor tables.
    fn seed(&mut self) {
        let scope = self.scope();
        for f in &scope {
            let body = &self.program.func(*f).body;
            self.preds.insert(*f, Rc::new(predecessors(body)));
            self.bodies.insert(*f, Rc::new(body.clone()));
        }
        let root_ctx = self.intern_ctx(Ctx::Root);
        let root_body = Rc::clone(&self.bodies[&self.root_fn]);
        for idx in (self.region.enter + 1)..self.region.exit {
            self.seed_instr(root_ctx, idx, &root_body[idx as usize]);
        }
        for f in scope.iter().skip(1) {
            let gen_ctx = self.intern_ctx(Ctx::Gen(*f));
            let body = Rc::clone(&self.bodies[f]);
            for (idx, ins) in body.iter().enumerate() {
                self.seed_instr(gen_ctx, idx as u32, ins);
            }
        }
    }

    fn seed_instr(&mut self, ctx: CtxId, idx: u32, ins: &Instr) {
        for (path, eff) in self.tctx.gen_locks(ins) {
            let lock = AbsLock {
                path: Some(path),
                pts: None,
                eff,
            };
            // G locks live at the point *before* the statement.
            self.add_fact(ctx, idx, lock);
        }
        if let Instr::Assign(_, Rvalue::Call(callee, _)) = ins {
            let lib = self.lib;
            if let Some(summary) = lib.get(*callee) {
                // Opaque callee: its specification's coarse locks stand
                // in for its accesses.
                for l in &summary.locks {
                    self.add_fact(ctx, idx, l.clone());
                }
            } else {
                self.register_gen_dep(*callee, (ctx, idx));
            }
        }
    }

    /// Functions whose bodies take part in this section's analysis:
    /// everything transitively callable from the region, stopping at
    /// opaque library functions.
    fn scope(&self) -> Vec<FnId> {
        let mut seen = vec![false; self.program.functions.len()];
        let mut stack = Vec::new();
        let root_body = &self.program.func(self.root_fn).body;
        let visit = |f: FnId, seen: &mut Vec<bool>, stack: &mut Vec<FnId>| {
            if !seen[f.0 as usize] && !self.lib.is_external(f) {
                seen[f.0 as usize] = true;
                stack.push(f);
            }
        };
        for ins in &root_body[self.region.enter as usize..=self.region.exit as usize] {
            if let Instr::Assign(_, Rvalue::Call(f, _)) = ins {
                visit(*f, &mut seen, &mut stack);
            }
        }
        let mut out = vec![self.root_fn];
        while let Some(f) = stack.pop() {
            out.push(f);
            for ins in &self.program.func(f).body {
                if let Instr::Assign(_, Rvalue::Call(g, _)) = ins {
                    visit(*g, &mut seen, &mut stack);
                }
            }
        }
        out
    }

    fn add_fact(&mut self, ctx: CtxId, idx: u32, lock: AbsLock) {
        let Some(lock) = self.config.normalize(lock, self.pt) else {
            return;
        };
        // Flow-insensitive locks — coarse locks and bare variable locks
        // `x̄` — are invariant under every transfer function: they jump
        // straight to the context's terminal.
        let flow_insensitive = match &lock.path {
            None => true,
            Some(p) => p.ops.is_empty(),
        };
        if flow_insensitive {
            self.record_terminal(ctx, lock);
            return;
        }
        let id = self.intern_lock(lock);
        self.add_fact_id(ctx, idx, id);
    }

    fn add_fact_id(&mut self, ctx: CtxId, idx: u32, id: LockId) {
        let lockdb = &self.lockdb;
        let lock = &lockdb[id as usize];
        let set = self.state.entry((ctx, idx)).or_default();
        if set
            .iter()
            .any(|&l| l == id || lock.leq(&lockdb[l as usize]))
        {
            return;
        }
        // Widening: past the width bound, fall back to the coarse
        // points-to lock (sent straight to the terminal).
        if set.len() >= WIDTH_LIMIT {
            if let Some(pts) = lock.pts {
                let eff = lock.eff;
                let coarse = AbsLock {
                    path: None,
                    pts: Some(pts),
                    eff,
                };
                self.record_terminal(ctx, coarse);
            }
            return;
        }
        set.retain(|&l| !lockdb[l as usize].leq(lock));
        set.push(id);
        self.worklist.push((ctx, idx, id));
    }

    fn process(&mut self, ctx: CtxId, idx: u32, lock_id: LockId) {
        let func = self.ctx_fn(ctx);
        if idx == 0 {
            let lock = self.lockdb[lock_id as usize].clone();
            self.record_terminal(ctx, lock);
            return;
        }
        let preds = Rc::clone(&self.preds[&func]);
        let body = Rc::clone(&self.bodies[&func]);
        let is_root = matches!(self.ctxdb[ctx as usize], Ctx::Root);
        for &q in &preds[idx as usize] {
            let ins = &body[q as usize];
            // Stop at (and record) the section's own entry.
            if is_root && q == self.region.enter {
                debug_assert!(matches!(ins, Instr::EnterAtomic(s) if *s == self.region.id));
                let lock = self.lockdb[lock_id as usize].clone();
                self.record_result(lock);
                continue;
            }
            let lock = self.lockdb[lock_id as usize].clone();
            match self.tctx.transfer_lock(ins, &lock) {
                Transferred::Through(locks) => {
                    for l in locks {
                        self.add_fact(ctx, q, l);
                    }
                }
                Transferred::Call { callee, dest } => {
                    if self.lib.is_external(callee) {
                        self.external_call(ctx, q, callee, dest, &lock);
                    } else {
                        self.route_through_call(ctx, q, callee, dest, &lock);
                    }
                }
            }
        }
    }

    /// A fact reached its context's terminal — the section entry for
    /// Root (either by propagation or via the flow-insensitive
    /// shortcut), the function entry for summaries: update the summary
    /// and replay it at every dependent call site.
    fn record_terminal(&mut self, ctx: CtxId, lock: AbsLock) {
        match self.ctxdb[ctx as usize].clone() {
            Ctx::Root => self.record_result(lock),
            Ctx::Gen(f) => {
                let id = self.intern_lock(lock);
                if add_summary_lock(&self.lockdb, self.gen_entry.entry(f).or_default(), id) {
                    let deps = self.gen_dependents.get(&f).cloned().unwrap_or_default();
                    for site in deps {
                        self.inject_unmapped(site, f, id, None);
                    }
                }
            }
            Ctx::Query(f, q) => {
                let id = self.intern_lock(lock);
                let key = (f, q);
                if add_summary_lock(&self.lockdb, self.query_entry.entry(key).or_default(), id) {
                    let deps = self.query_dependents.get(&key).cloned().unwrap_or_default();
                    for (site, eff) in deps {
                        self.inject_unmapped(site, f, id, Some(eff));
                    }
                }
            }
        }
    }

    /// Handles a fine lock flowing backward over `dest = callee(args)`:
    /// map it into the callee, start/reuse the (rw-canonical) summary
    /// query, register the dependency.
    fn route_through_call(
        &mut self,
        ctx: CtxId,
        call_idx: u32,
        callee: FnId,
        dest: VarId,
        lock: &AbsLock,
    ) {
        let ret = self.program.func(callee).ret;
        // Map: analyze `dest = ret_f` backward (a Copy transfer).
        let mapped = match self
            .tctx
            .transfer_lock(&Instr::Assign(dest, Rvalue::Copy(ret)), lock)
        {
            Transferred::Through(locks) => locks,
            Transferred::Call { .. } => unreachable!("copy is not a call"),
        };
        for m in mapped {
            let Some(m) = self.config.normalize(m, self.pt) else {
                continue;
            };
            // Demoted locks and locks untouched by the callee (mod-ref
            // filtering) bypass the summary machinery.
            let needs_summary = match &m.path {
                None => false,
                Some(p) if p.ops.is_empty() => false,
                Some(p) => {
                    crate::dataflow::must_route(self.program, self.pt, self.modsets, callee, p)
                }
            };
            if !needs_summary {
                self.add_fact(ctx, call_idx, m);
                continue;
            }
            // Canonicalize the query to rw: transfer functions never
            // change effects, so a ro query would compute the same
            // entries modulo the effect tag.
            let want_eff = m.eff;
            let canonical = AbsLock { eff: Eff::Rw, ..m };
            let mid = self.intern_lock(canonical.clone());
            let key = (callee, mid);
            let site = (ctx, call_idx);
            let deps = self.query_dependents.entry(key).or_default();
            if !deps.contains(&(site, want_eff)) {
                deps.push((site, want_eff));
                // Replay already-computed summary entries.
                let existing = self.query_entry.get(&key).cloned().unwrap_or_default();
                for le in existing {
                    self.inject_unmapped(site, callee, le, Some(want_eff));
                }
            }
            if self.started_queries.insert(key) {
                let exit = self.program.func(callee).body.len() as u32;
                let qctx = self.intern_ctx(Ctx::Query(callee, mid));
                self.add_fact(qctx, exit, canonical);
            }
        }
    }

    /// Handles a fine lock flowing backward over a call to an *opaque*
    /// (pre-compiled) function: locks rooted at the call's destination
    /// cannot be traced into the callee and are demoted to their coarse
    /// points-to lock; other locks are demoted only if the callee's
    /// specification says it may modify a cell their expression reads.
    fn external_call(
        &mut self,
        ctx: CtxId,
        call_idx: u32,
        callee: FnId,
        dest: VarId,
        lock: &AbsLock,
    ) {
        let path = lock
            .path
            .as_ref()
            .expect("external_call only sees fine locks");
        if path.base == dest {
            if let Some(c) = self.pt.class_of_path(path) {
                self.add_fact(
                    ctx,
                    call_idx,
                    AbsLock {
                        path: None,
                        pts: Some(c),
                        eff: lock.eff,
                    },
                );
            }
            return;
        }
        let l = self.lib.transfer_across(callee, lock, self.pt);
        self.add_fact(ctx, call_idx, l);
    }

    /// Registers a call site as a receiver of the callee's own-access
    /// (Gen) locks, replaying any already known.
    fn register_gen_dep(&mut self, callee: FnId, site: Site) {
        let deps = self.gen_dependents.entry(callee).or_default();
        if deps.contains(&site) {
            return;
        }
        deps.push(site);
        let existing = self.gen_entry.get(&callee).cloned().unwrap_or_default();
        for le in existing {
            self.inject_unmapped(site, callee, le, None);
        }
    }

    /// Unmap: push a callee-entry lock backward through the virtual
    /// prologue `p_0 = a_0; …; p_n = a_n` of a specific call site and
    /// inject the results before the call. `eff_override` rewrites the
    /// effect of rw-canonical query results back to what the dependent
    /// requested. Locks still rooted at a callee-owned variable after
    /// unmapping denote locations that do not exist before the call and
    /// are dropped; callee-owned symbolic indices demote to the `[]`
    /// offset.
    fn inject_unmapped(
        &mut self,
        site: Site,
        callee: FnId,
        entry_lock: LockId,
        eff_override: Option<Eff>,
    ) {
        let (ctx, call_idx) = site;
        let func = self.ctx_fn(ctx);
        let body = Rc::clone(&self.bodies[&func]);
        let Instr::Assign(_, Rvalue::Call(f, args)) = &body[call_idx as usize] else {
            unreachable!("dependent site is a call instruction");
        };
        debug_assert_eq!(*f, callee);
        let params = self.program.func(callee).params.clone();
        let mut entry = self.lockdb[entry_lock as usize].clone();
        if let Some(eff) = eff_override {
            entry.eff = eff;
        }
        let mut locks = vec![entry];
        for (p, a) in params.iter().zip(args).rev() {
            let assign = Instr::Assign(*p, Rvalue::Copy(*a));
            let mut next = Vec::new();
            for l in &locks {
                match self.tctx.transfer_lock(&assign, l) {
                    Transferred::Through(ls) => next.extend(ls),
                    Transferred::Call { .. } => unreachable!("copy is not a call"),
                }
            }
            locks = next;
        }
        let site_fn = func;
        for mut l in locks {
            if let Some(p) = &mut l.path {
                for op in &mut p.ops {
                    if let lir::PathOp::Index(z) = op {
                        let info = self.program.var(*z);
                        if info.owner == Some(callee)
                            && callee != site_fn
                            && info.kind != VarKind::Global
                        {
                            *op = lir::PathOp::Field(
                                self.config
                                    .elem_field
                                    .expect("dyn indices imply a [] field"),
                            );
                        }
                    }
                }
            }
            let owned_by_callee = match &l.path {
                Some(p) => {
                    let info = self.program.var(p.base);
                    // At a recursive call site caller and callee frames
                    // share variable ids; keep the lock then.
                    info.owner == Some(callee) && callee != site_fn && info.kind != VarKind::Global
                }
                None => false,
            };
            if !owned_by_callee {
                self.add_fact(ctx, call_idx, l);
            }
        }
    }

    fn record_result(&mut self, lock: AbsLock) {
        if !self.result.contains(&lock) {
            self.result.push(lock);
        }
    }
}

/// Subsumption insert for summary-entry sets; returns whether the lock
/// was new (not already covered).
fn add_summary_lock(lockdb: &[AbsLock], set: &mut Vec<LockId>, id: LockId) -> bool {
    let lock = &lockdb[id as usize];
    if set
        .iter()
        .any(|&l| l == id || lock.leq(&lockdb[l as usize]))
    {
        return false;
    }
    set.retain(|&l| !lockdb[l as usize].leq(lock));
    set.push(id);
    true
}
