//! Growable dense bitsets over the interned lock universe.
//!
//! Dataflow state lives at `(context, program point)` granularity; each
//! point holds an antichain of lock ids. Lock ids are dense (minted by
//! the global interner in discovery order), so a flat `Vec<u64>` gives
//! O(1) membership, insertion, and removal with no hashing — the
//! operations the engine performs per propagated fact. Sets grow lazily
//! to the highest id actually stored at that point, not to the whole
//! universe, so per-point memory tracks the (width-bounded) antichain.

/// A growable bitset keyed by `u32` ids, with a cached population
/// count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: u32,
}

impl BitSet {
    /// An empty set.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// Number of ids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no id is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let w = (id / 64) as usize;
        w < self.words.len() && self.words[w] & (1u64 << (id % 64)) != 0
    }

    /// Inserts `id`; returns `true` when it was newly set.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let w = (id / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (id % 64);
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += newly as u32;
        newly
    }

    /// Removes `id`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, id: u32) -> bool {
        let w = (id / 64) as usize;
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << (id % 64);
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.len -= was as u32;
        was
    }

    /// Iterates set ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(w as u32 * 64 + b)
            })
        })
    }

    /// Moves all ids out, leaving the set empty but with its capacity
    /// retained (the drain order is ascending id).
    pub fn drain_into(&mut self, out: &mut Vec<u32>) {
        for (w, word) in self.words.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                out.push(w as u32 * 64 + b);
            }
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = BitSet::new();
        assert!(s.is_empty() && !s.contains(0) && !s.contains(1000));
        assert!(s.insert(5));
        assert!(!s.insert(5), "double insert reports not-new");
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && s.contains(64) && s.contains(1000));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.remove(7), "absent id, beyond and within capacity");
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 1000]);
    }

    #[test]
    fn drain_empties_and_preserves_order() {
        let mut s = BitSet::new();
        for id in [130, 2, 67, 3] {
            s.insert(id);
        }
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out, vec![2, 3, 67, 130]);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        s.insert(9);
        assert_eq!(s.len(), 1, "reusable after drain");
    }
}
