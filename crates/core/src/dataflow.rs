//! The backward dataflow engine (§4.1/§4.3).
//!
//! For each atomic section the engine runs a worklist algorithm over
//! `(lock, program point)` pairs, exactly as the paper's implementation
//! section describes:
//!
//! * facts are seeded from the `G` sets of every statement in the
//!   section's interprocedural scope;
//! * ordinary statements apply the substitution-based transfer functions
//!   of [`crate::transfer`];
//! * calls are routed through *function summaries*: a lock `l` after
//!   `x = f(..)` is **mapped** into the callee by analyzing `x = ret_f`,
//!   registered as a summary *query* at `f`'s exit, pushed through `f`'s
//!   body, and — once it reaches `f`'s entry — **unmapped** back through
//!   the virtual prologue `p_i = a_i` at every dependent call site. The
//!   `src` bookkeeping of the paper is our query context: each fact in a
//!   callee carries the exit lock it summarizes.
//!
//! Accesses performed *inside* callees (their own `G` sets) are handled
//! by a per-function `Gen` context whose entry locks flow to every
//! in-scope call site, so a section protects everything its callees
//! touch.
//!
//! ## The scalable data plane
//!
//! The engine is built for SPECint-sized inputs:
//!
//! * **Hash-consed locks.** Every `AbsLock` is interned once in the
//!   process-wide table of [`lockscheme::intern`]; the lattice order
//!   `≤` becomes a handful of integer compares on [`LockRec`]s. Each
//!   engine additionally keeps a *local* dense id space (first-seen
//!   order) so that all of its ordering decisions are independent of
//!   the global id assignment — which may race across threads.
//! * **Bitset state.** Per `(context, point)` the lock set and its
//!   pending (not yet propagated) subset are dense
//!   [`BitSet`](crate::bits::BitSet)s over local ids; the worklist
//!   holds each *point* at most once (a `queued` flag dedups), and a
//!   pop drains every pending lock of that point. No `Vec` clones, no
//!   linear membership scans. A lock removed by subsumption keeps its
//!   pending bit: like the triple worklist it replaces, a subsumed
//!   fact that was already scheduled still propagates.
//! * **Shared summaries (Phase A / Phase B).** Function summaries are
//!   computed *once per program*, not once per section: a sequential
//!   pre-pass (Phase A) solves the `Gen` context of every function any
//!   section can reach, plus all summary queries that flow demands,
//!   and freezes them — structurally sorted — into a read-only
//!   [`SummaryCache`]. Per-section engines (Phase B) only solve their
//!   own root region, injecting cached summaries at call sites;
//!   queries the pre-pass never saw are solved locally with the same
//!   machinery.
//! * **Parallel sections.** Because a Phase B engine is a pure,
//!   deterministic function of the program and the frozen cache,
//!   independent sections are solved on a [`std::thread::scope`] pool
//!   and merged by section id — the output is byte-identical to the
//!   sequential order for every thread count.
//!
//! The pre-rewrite engine is retained verbatim in [`crate::reference`]
//! as the differential-testing oracle and benchmark baseline.
//!
//! ## Performance notes (§4.3's observations, made concrete)
//!
//! * Coarse locks and bare variable locks are *flow-insensitive*: they
//!   skip pointwise propagation and jump straight to their context's
//!   terminal.
//! * Calls apply *mod-ref filtering*: a lock whose expression reads
//!   nothing the callee may overwrite bypasses the summary machinery.
//! * Summary queries are canonicalized to the `rw` effect (transfer
//!   functions never change an effect), halving the query space.
//! * Per program point, expression-lock variants are *widened*: past a
//!   width bound the lock falls back to its coarse points-to lock (the
//!   paper's §3.3 notes widening as the alternative to a bounded `L`).

use crate::bits::BitSet;
use crate::library::LibrarySpec;
use crate::transfer::{TransferCtx, Transferred};
use lir::cfg::{atomic_regions, predecessors, AtomicRegion};
use lir::{Eff, FnId, Instr, Program, Rvalue, SectionId, VarId, VarKind};
use lockscheme::abslock::prune_redundant;
use lockscheme::{intern, AbsLock, ConfigMap, LockId, LockRec, SchemeConfig};
use pointsto::{PointsTo, PtsClass};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Locks inferred for one atomic section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionResult {
    pub id: SectionId,
    pub func: FnId,
    /// Instruction index of the `EnterAtomic` marker.
    pub enter: u32,
    /// Instruction index of the matching `ExitAtomic` marker.
    pub exit: u32,
    /// The non-redundant lock set `N` at the section entry.
    pub locks: Vec<AbsLock>,
}

/// Counters describing how much work the analysis did. Deterministic
/// for a fixed input and thread count, except the `interner_*` fields,
/// which report the process-wide table (shared across analyses).
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// Facts taken off worklists (summary pre-pass + all sections).
    pub worklist_pops: u64,
    /// Facts newly inserted into some point's lock set.
    pub facts_inserted: u64,
    /// Largest lock set held at any single `(context, point)`.
    pub peak_point_locks: usize,
    /// Facts that hit the width bound and widened to a coarse lock.
    pub widenings: u64,
    /// Call-site lookups answered by the frozen summary cache.
    pub summary_cache_hits: u64,
    /// Summary queries the pre-pass had not solved (solved locally).
    pub summary_cache_misses: u64,
    /// Functions with a precomputed `Gen` summary.
    pub summary_functions: usize,
    /// Summary queries solved by the pre-pass.
    pub summary_queries: usize,
    /// Distinct locks in the global interner after the analysis.
    pub interner_locks: usize,
    /// Distinct lock paths in the global interner after the analysis.
    pub interner_paths: usize,
    /// Worker threads used for the per-section phase.
    pub threads: usize,
}

impl AnalysisStats {
    fn absorb(&mut self, es: &EngineStats) {
        self.worklist_pops += es.pops;
        self.facts_inserted += es.facts;
        self.peak_point_locks = self.peak_point_locks.max(es.peak);
        self.widenings += es.widenings;
        self.summary_cache_hits += es.cache_hits;
        self.summary_cache_misses += es.cache_misses;
    }
}

/// Whole-program analysis result.
#[derive(Clone, Debug)]
pub struct ProgramAnalysis {
    pub sections: Vec<SectionResult>,
    /// The per-section configuration the analysis ran under (a uniform
    /// map when invoked through the single-config entry points).
    pub config: ConfigMap,
    pub stats: AnalysisStats,
}

/// Runs the lock inference for every atomic section of `program`.
///
/// # Examples
///
/// ```
/// use lockscheme::SchemeConfig;
/// let p = lir::compile("global g; fn main() { atomic { g = null; } }").unwrap();
/// let pt = pointsto::PointsTo::analyze(&p);
/// let result = lockinfer::analyze_program(&p, &pt, SchemeConfig::full(3, p.elem_field_opt()));
/// assert_eq!(result.sections.len(), 1);
/// assert!(!result.sections[0].locks.is_empty());
/// ```
pub fn analyze_program(program: &Program, pt: &PointsTo, config: SchemeConfig) -> ProgramAnalysis {
    analyze_program_with_library(program, pt, config, &LibrarySpec::new())
}

/// Like [`analyze_program`], but treats functions with entries in `lib`
/// as pre-compiled: their bodies are not analyzed; their specifications
/// stand in (§4.3).
pub fn analyze_program_with_library(
    program: &Program,
    pt: &PointsTo,
    config: SchemeConfig,
    lib: &LibrarySpec,
) -> ProgramAnalysis {
    analyze_program_with_opts(program, pt, config, lib, 0)
}

/// Full-control single-config entry point: `threads` is the worker
/// count for the per-section phase (`0` = one per available core). The
/// result is identical for every thread count — sections are pure
/// functions of the program and the frozen summary cache, and the
/// merge is ordered by section id.
pub fn analyze_program_with_opts(
    program: &Program,
    pt: &PointsTo,
    config: SchemeConfig,
    lib: &LibrarySpec,
    threads: usize,
) -> ProgramAnalysis {
    analyze_program_with_configs(program, pt, &ConfigMap::uniform(config), lib, threads, None)
}

/// Memoizes frozen Phase A summary caches by scheme configuration, so
/// a candidate loop re-inferring the *same program* under many
/// [`ConfigMap`]s pays for each distinct configuration once. Summaries
/// depend only on `(program, pt, lib, config)` — a store must never be
/// reused across different programs.
///
/// The store is **concurrent**: lookups and inserts go through `&self`
/// behind a mutex-guarded slot table, so a parallel candidate-
/// evaluation harness can share one store across every eval thread.
/// Each distinct configuration gets a dedicated once-slot — the first
/// thread to claim it computes the summaries while later arrivals
/// block on that slot (not on the whole store) and then reuse the
/// frozen cache, keeping the computation once-per-config even under
/// contention. Summaries are a pure function of
/// `(program, pt, lib, config)`, so which thread wins the claim can
/// never change any analysis output.
#[derive(Default)]
pub struct SummaryStore {
    slots: Mutex<Vec<(SchemeConfig, Arc<SummarySlot>)>>,
}

#[derive(Default)]
struct SummarySlot {
    cache: Mutex<Option<Arc<SummaryCache>>>,
}

impl SummaryStore {
    /// An empty store.
    pub fn new() -> SummaryStore {
        SummaryStore::default()
    }

    /// Distinct configurations whose summary slots have been claimed
    /// (computed or in flight).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// True when no summary pass has run yet.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().unwrap().is_empty()
    }

    fn slot(&self, cfg: SchemeConfig) -> Arc<SummarySlot> {
        let mut slots = self.slots.lock().unwrap();
        match slots.iter().find(|(c, _)| *c == cfg) {
            Some((_, s)) => Arc::clone(s),
            None => {
                let s = Arc::new(SummarySlot::default());
                slots.push((cfg, Arc::clone(&s)));
                s
            }
        }
    }

    /// The frozen cache for `cfg`, computing it via `compute` exactly
    /// once per distinct configuration (concurrent callers for the
    /// same configuration serialize on its slot and share the result).
    fn get_or_compute(
        &self,
        cfg: SchemeConfig,
        compute: impl FnOnce() -> Arc<SummaryCache>,
    ) -> (Arc<SummaryCache>, bool) {
        let slot = self.slot(cfg);
        let mut guard = slot.cache.lock().unwrap();
        match guard.as_ref() {
            Some(cache) => (Arc::clone(cache), true),
            None => {
                let cache = compute();
                *guard = Some(Arc::clone(&cache));
                (cache, false)
            }
        }
    }
}

/// Per-section-config entry point. Every section is solved under
/// `configs.for_section(id)`; Phase A runs once per *distinct*
/// configuration in use (over the union of all sections' callee
/// scopes, so the frozen cache is valid for any section) and is shared
/// by every section — and, through `store`, every later candidate map
/// — with that configuration.
pub fn analyze_program_with_configs(
    program: &Program,
    pt: &PointsTo,
    configs: &ConfigMap,
    lib: &LibrarySpec,
    threads: usize,
    store: Option<&SummaryStore>,
) -> ProgramAnalysis {
    let modsets = compute_modsets(program, pt, lib);
    let preds: Vec<Vec<Vec<u32>>> = program
        .functions
        .iter()
        .map(|f| predecessors(&f.body))
        .collect();
    let mut secs: Vec<(FnId, AtomicRegion)> = Vec::new();
    for func in &program.functions {
        for region in atomic_regions(&func.body) {
            secs.push((func.id, region));
        }
    }
    let mut stats = AnalysisStats::default();
    let base_env = EngineEnv {
        program,
        pt,
        config: configs.default,
        lib,
        modsets: &modsets,
        preds: &preds,
    };
    if secs.is_empty() {
        stats.threads = 1;
        stats.interner_locks = intern::global().len();
        stats.interner_paths = intern::global().n_paths();
        return ProgramAnalysis {
            sections: Vec::new(),
            config: configs.clone(),
            stats,
        };
    }

    // Phase A: one sequential pass per distinct section configuration
    // over the union of all sections' callee scopes computes every Gen
    // summary and every query the gen flow demands, then freezes them.
    let mut gen_fns: Vec<FnId> = Vec::new();
    let mut seen: HashSet<FnId> = HashSet::new();
    for (f, region) in &secs {
        for g in section_scope(program, lib, *f, region).into_iter().skip(1) {
            if seen.insert(g) {
                gen_fns.push(g);
            }
        }
    }
    let sec_cfgs: Vec<SchemeConfig> = secs
        .iter()
        .map(|&(_, region)| configs.for_section(region.id.0))
        .collect();
    let mut distinct: Vec<SchemeConfig> = Vec::new();
    let cfg_idx: Vec<usize> = sec_cfgs
        .iter()
        .map(|c| match distinct.iter().position(|d| d == c) {
            Some(i) => i,
            None => {
                distinct.push(*c);
                distinct.len() - 1
            }
        })
        .collect();
    let caches: Vec<Arc<SummaryCache>> = distinct
        .iter()
        .map(|&cfg| {
            let mut compute = || {
                let mut pre = Engine::new(
                    EngineEnv {
                        config: cfg,
                        ..base_env
                    },
                    None,
                    None,
                );
                pre.solve_summaries(&gen_fns);
                let (cache, pre_stats) = pre.freeze(&gen_fns);
                stats.absorb(&pre_stats);
                Arc::new(cache)
            };
            let cache = match store {
                Some(st) => st.get_or_compute(cfg, compute).0,
                None => compute(),
            };
            stats.summary_functions += cache.gen.len();
            stats.summary_queries += cache.query.len();
            cache
        })
        .collect();

    // Phase B: solve each section's root region against its config's
    // frozen cache, in parallel, and merge deterministically.
    let n_threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .clamp(1, secs.len());
    let mut slots: Vec<Option<SectionResult>> = (0..secs.len()).map(|_| None).collect();
    if n_threads <= 1 {
        for (i, &(f, region)) in secs.iter().enumerate() {
            let env = EngineEnv {
                config: sec_cfgs[i],
                ..base_env
            };
            let (sr, es) = solve_one_section(env, &caches[cfg_idx[i]], f, region);
            stats.absorb(&es);
            slots[i] = Some(sr);
        }
    } else {
        let next = AtomicUsize::new(0);
        let secs_ref = &secs;
        let caches_ref = &caches;
        let sec_cfgs_ref = &sec_cfgs;
        let cfg_idx_ref = &cfg_idx;
        let parts: Vec<Vec<(usize, SectionResult, EngineStats)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= secs_ref.len() {
                                break;
                            }
                            let (f, region) = secs_ref[i];
                            let env = EngineEnv {
                                config: sec_cfgs_ref[i],
                                ..base_env
                            };
                            let (sr, es) =
                                solve_one_section(env, &caches_ref[cfg_idx_ref[i]], f, region);
                            out.push((i, sr, es));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("section solver panicked"))
                .collect()
        });
        for part in parts {
            for (i, sr, es) in part {
                stats.absorb(&es);
                slots[i] = Some(sr);
            }
        }
    }
    let mut sections: Vec<SectionResult> = slots
        .into_iter()
        .map(|s| s.expect("every section solved"))
        .collect();
    sections.sort_by_key(|s| s.id);
    stats.threads = n_threads;
    stats.interner_locks = intern::global().len();
    stats.interner_paths = intern::global().n_paths();
    ProgramAnalysis {
        sections,
        config: configs.clone(),
        stats,
    }
}

fn solve_one_section(
    env: EngineEnv<'_>,
    cache: &SummaryCache,
    func: FnId,
    region: AtomicRegion,
) -> (SectionResult, EngineStats) {
    let (locks, es) = Engine::new(env, Some((func, region)), Some(cache)).solve_section();
    (
        SectionResult {
            id: region.id,
            func,
            enter: region.enter,
            exit: region.exit,
            locks,
        },
        es,
    )
}

/// Transitive side-effect summary of a function: the points-to classes
/// of cells it (or anything it calls) may overwrite.
#[derive(Clone, Debug, Default)]
pub(crate) struct ModSet {
    classes: HashSet<PtsClass>,
    /// Conservative escape hatch.
    top: bool,
}

pub(crate) fn compute_modsets(program: &Program, pt: &PointsTo, lib: &LibrarySpec) -> Vec<ModSet> {
    let n = program.functions.len();
    let mut sets: Vec<ModSet> = vec![ModSet::default(); n];
    let mut calls: Vec<Vec<FnId>> = vec![Vec::new(); n];
    for func in &program.functions {
        let i = func.id.0 as usize;
        if let Some(summary) = lib.get(func.id) {
            sets[i].classes.extend(summary.modifies.iter().copied());
            continue;
        }
        for ins in &func.body {
            match ins {
                Instr::Store(x, _) => {
                    let path = lir::PathExpr {
                        base: *x,
                        ops: vec![lir::PathOp::Deref],
                    };
                    if let Some(c) = pt.class_of_path(&path) {
                        sets[i].classes.insert(c);
                    }
                }
                Instr::Assign(v, rv) => {
                    if !program.var(*v).is_thread_local() {
                        sets[i].classes.insert(pt.class_of_var(*v));
                    }
                    if let Rvalue::Call(g, _) = rv {
                        calls[i].push(*g);
                    }
                }
                _ => {}
            }
        }
    }
    // Propagate over the call graph to a fixpoint. Self-calls are
    // skipped — a self-union never adds anything.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for g in &calls[i] {
                let g = g.0 as usize;
                if g == i {
                    continue;
                }
                let (callee, cur) = if g < i {
                    let (lo, hi) = sets.split_at_mut(i);
                    (&lo[g], &mut hi[0])
                } else {
                    let (lo, hi) = sets.split_at_mut(g);
                    (&hi[0], &mut lo[i])
                };
                let before = cur.classes.len();
                let top = cur.top | callee.top;
                cur.classes.extend(callee.classes.iter().copied());
                if cur.classes.len() != before || top != cur.top {
                    cur.top = top;
                    changed = true;
                }
            }
        }
    }
    sets
}

/// Whether a lock expression must be pushed through the callee's
/// summary: yes when it is rooted at (or indexed by) a callee
/// variable, or when a dereference step reads a cell the callee may
/// transitively overwrite (mod-ref filtering).
pub(crate) fn must_route(
    program: &Program,
    pt: &PointsTo,
    modsets: &[ModSet],
    callee: FnId,
    path: &lir::PathExpr,
) -> bool {
    let owned = |v: VarId| {
        let info = program.var(v);
        info.owner == Some(callee) && info.kind != VarKind::Global
    };
    if owned(path.base) {
        return true;
    }
    let ms = &modsets[callee.0 as usize];
    if ms.top {
        return true;
    }
    // Walk the class of each prefix; a Deref reads the cell of the
    // class accumulated so far.
    let mut class = Some(pt.class_of_var(path.base));
    for op in &path.ops {
        match op {
            lir::PathOp::Deref => {
                let Some(c) = class else { return false };
                if ms.classes.contains(&c) {
                    return true;
                }
                class = pt.deref(c);
            }
            lir::PathOp::Field(_) => {}
            lir::PathOp::Index(z) => {
                if owned(*z) {
                    return true;
                }
                // A global/heapified index variable is read through
                // its cell, which the callee may overwrite.
                let info = program.var(*z);
                if !info.is_thread_local() && ms.classes.contains(&pt.class_of_var(*z)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Functions whose bodies take part in a section's analysis: everything
/// transitively callable from the region, stopping at opaque library
/// functions. `out[0]` is the section's own function.
fn section_scope(
    program: &Program,
    lib: &LibrarySpec,
    root_fn: FnId,
    region: &AtomicRegion,
) -> Vec<FnId> {
    let mut seen = vec![false; program.functions.len()];
    let mut stack = Vec::new();
    let root_body = &program.func(root_fn).body;
    let visit = |f: FnId, seen: &mut Vec<bool>, stack: &mut Vec<FnId>| {
        if !seen[f.0 as usize] && !lib.is_external(f) {
            seen[f.0 as usize] = true;
            stack.push(f);
        }
    };
    for ins in &root_body[region.enter as usize..=region.exit as usize] {
        if let Instr::Assign(_, Rvalue::Call(f, _)) = ins {
            visit(*f, &mut seen, &mut stack);
        }
    }
    let mut out = vec![root_fn];
    while let Some(f) = stack.pop() {
        out.push(f);
        for ins in &program.func(f).body {
            if let Instr::Assign(_, Rvalue::Call(g, _)) = ins {
                visit(*g, &mut seen, &mut stack);
            }
        }
    }
    out
}

/// Maximum number of expression-lock variants tracked per program point
/// before widening to the coarse points-to lock.
pub(crate) const WIDTH_LIMIT: usize = 24;

/// The frozen output of the Phase A summary pre-pass. Entry vectors are
/// structurally sorted so that injection order — and hence widening
/// behavior downstream — does not depend on interner id assignment.
#[derive(Debug, Default)]
struct SummaryCache {
    /// Own-access (`Gen`) entry locks per function; present (possibly
    /// empty) for every function in any section's callee scope.
    gen: HashMap<FnId, Vec<LockId>>,
    /// Entry locks per solved summary query, keyed by the rw-canonical
    /// exit lock; present (possibly empty) for every query Phase A
    /// started.
    query: HashMap<(FnId, LockId), Vec<LockId>>,
}

/// Read-only inputs shared by every engine of one analysis.
#[derive(Clone, Copy)]
struct EngineEnv<'a> {
    program: &'a Program,
    pt: &'a PointsTo,
    config: SchemeConfig,
    lib: &'a LibrarySpec,
    modsets: &'a [ModSet],
    /// Predecessor tables, indexed by function id then program point.
    preds: &'a [Vec<Vec<u32>>],
}

/// Per-engine work counters; merged into [`AnalysisStats`].
#[derive(Clone, Copy, Debug, Default)]
struct EngineStats {
    pops: u64,
    facts: u64,
    peak: usize,
    widenings: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Engine-local mirror of the global interner.
///
/// Local ids are dense and minted in first-seen order, so every
/// ordering decision the (sequential) engine makes is reproducible
/// regardless of how global ids were numbered by concurrent engines.
/// `recs`/`arcs` give O(1) record and term access with no locking.
#[derive(Default)]
struct LockCache {
    by_term: HashMap<AbsLock, u32>,
    by_global: HashMap<u32, u32>,
    global: Vec<LockId>,
    recs: Vec<LockRec>,
    arcs: Vec<Arc<AbsLock>>,
}

impl LockCache {
    fn intern(&mut self, lock: &AbsLock) -> u32 {
        if let Some(&i) = self.by_term.get(lock) {
            return i;
        }
        let (gid, rec) = intern::global().intern(lock);
        let arc = intern::global().resolve(gid);
        self.add(gid, rec, arc)
    }

    /// Local id for a lock already interned globally (a cache entry).
    fn import(&mut self, gid: LockId) -> u32 {
        if let Some(&i) = self.by_global.get(&gid.0) {
            return i;
        }
        let rec = intern::global().rec(gid);
        let arc = intern::global().resolve(gid);
        self.add(gid, rec, arc)
    }

    fn add(&mut self, gid: LockId, rec: LockRec, arc: Arc<AbsLock>) -> u32 {
        let i = self.global.len() as u32;
        self.by_term.insert((*arc).clone(), i);
        self.by_global.insert(gid.0, i);
        self.global.push(gid);
        self.recs.push(rec);
        self.arcs.push(arc);
        i
    }

    #[inline]
    fn rec(&self, i: u32) -> LockRec {
        self.recs[i as usize]
    }
}

/// Analysis context: which instance of the dataflow a fact belongs to.
/// Lock ids in `Query` are engine-local.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Ctx {
    /// The atomic region itself, in the section's function.
    Root,
    /// The query-independent pass over a callee collecting its own
    /// accesses.
    Gen(FnId),
    /// A summary computation: push this exit lock (always `rw`-
    /// canonical) through the callee.
    Query(FnId, u32),
}

/// A call site awaiting summary results.
type Site = (u32, u32);

/// Dataflow state of one `(context, point)`: the current lock antichain
/// and the subset not yet propagated. `queued` dedups worklist entries.
#[derive(Default)]
struct PointState {
    set: BitSet,
    pending: BitSet,
    queued: bool,
}

/// One worklist solver. With `root == None` it is the Phase A summary
/// pre-pass (Gen + Query contexts only); with a root region and a
/// frozen cache it solves a single section (Phase B).
struct Engine<'a> {
    program: &'a Program,
    pt: &'a PointsTo,
    config: SchemeConfig,
    tctx: TransferCtx<'a>,
    lib: &'a LibrarySpec,
    modsets: &'a [ModSet],
    preds: &'a [Vec<Vec<u32>>],
    cache: Option<&'a SummaryCache>,
    root: Option<(FnId, AtomicRegion)>,
    locks: LockCache,
    ctxdb: Vec<Ctx>,
    ctx_ids: HashMap<Ctx, u32>,
    state: HashMap<(u32, u32), PointState>,
    queue: Vec<(u32, u32)>,
    scratch: Vec<u32>,
    gen_entry: HashMap<FnId, Vec<u32>>,
    query_entry: HashMap<(FnId, u32), Vec<u32>>,
    gen_dependents: HashMap<FnId, Vec<Site>>,
    query_dependents: HashMap<(FnId, u32), Vec<(Site, Eff)>>,
    started_queries: HashSet<(FnId, u32)>,
    result: Vec<u32>,
    stats: EngineStats,
}

impl<'a> Engine<'a> {
    fn new(
        env: EngineEnv<'a>,
        root: Option<(FnId, AtomicRegion)>,
        cache: Option<&'a SummaryCache>,
    ) -> Self {
        let tctx = TransferCtx {
            program: env.program,
            pt: env.pt,
            elem: env.config.elem_field,
        };
        Engine {
            program: env.program,
            pt: env.pt,
            config: env.config,
            tctx,
            lib: env.lib,
            modsets: env.modsets,
            preds: env.preds,
            cache,
            root,
            locks: LockCache::default(),
            ctxdb: Vec::new(),
            ctx_ids: HashMap::new(),
            state: HashMap::new(),
            queue: Vec::new(),
            scratch: Vec::new(),
            gen_entry: HashMap::new(),
            query_entry: HashMap::new(),
            gen_dependents: HashMap::new(),
            query_dependents: HashMap::new(),
            started_queries: HashSet::new(),
            result: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Phase A: solve the `Gen` context of every listed function (and
    /// every query their flow demands) to a fixpoint.
    fn solve_summaries(&mut self, gen_fns: &[FnId]) {
        let program = self.program;
        for &f in gen_fns {
            let ctx = self.intern_ctx(Ctx::Gen(f));
            let body = &program.func(f).body;
            for (idx, ins) in body.iter().enumerate() {
                self.seed_instr(ctx, idx as u32, ins);
            }
        }
        self.drain();
    }

    /// Publishes Phase A's fixpoint as a frozen cache. Every gen-seeded
    /// function and every *started* query gets an entry, so Phase B can
    /// distinguish "solved, empty" from "never solved".
    fn freeze(self, gen_fns: &[FnId]) -> (SummaryCache, EngineStats) {
        let mut cache = SummaryCache::default();
        for &f in gen_fns {
            let ids = self.gen_entry.get(&f).cloned().unwrap_or_default();
            cache.gen.insert(f, self.sorted_globals(ids));
        }
        for &(f, q) in &self.started_queries {
            let ids = self.query_entry.get(&(f, q)).cloned().unwrap_or_default();
            cache
                .query
                .insert((f, self.locks.global[q as usize]), self.sorted_globals(ids));
        }
        (cache, self.stats)
    }

    /// Orders local lock ids structurally and maps them to global ids —
    /// the canonical, id-assignment-independent form of a summary.
    fn sorted_globals(&self, mut ids: Vec<u32>) -> Vec<LockId> {
        let arcs = &self.locks.arcs;
        ids.sort_by(|&a, &b| arcs[a as usize].cmp(&arcs[b as usize]));
        ids.into_iter()
            .map(|l| self.locks.global[l as usize])
            .collect()
    }

    /// Phase B: seed the root region, run to fixpoint, prune.
    fn solve_section(mut self) -> (Vec<AbsLock>, EngineStats) {
        let (root_fn, region) = self.root.expect("solve_section requires a root region");
        let root_ctx = self.intern_ctx(Ctx::Root);
        let program = self.program;
        let body = &program.func(root_fn).body;
        for idx in (region.enter + 1)..region.exit {
            self.seed_instr(root_ctx, idx, &body[idx as usize]);
        }
        self.drain();
        let mut result: Vec<AbsLock> = self
            .result
            .iter()
            .map(|&l| (*self.locks.arcs[l as usize]).clone())
            .collect();
        prune_redundant(&mut result);
        (result, self.stats)
    }

    fn intern_ctx(&mut self, ctx: Ctx) -> u32 {
        if let Some(&id) = self.ctx_ids.get(&ctx) {
            return id;
        }
        let id = self.ctxdb.len() as u32;
        self.ctxdb.push(ctx);
        self.ctx_ids.insert(ctx, id);
        id
    }

    fn ctx_fn(&self, ctx: u32) -> FnId {
        match self.ctxdb[ctx as usize] {
            Ctx::Root => self.root.expect("Root ctx implies section mode").0,
            Ctx::Gen(f) | Ctx::Query(f, _) => f,
        }
    }

    fn seed_instr(&mut self, ctx: u32, idx: u32, ins: &Instr) {
        for (path, eff) in self.tctx.gen_locks(ins) {
            let lock = AbsLock {
                path: Some(path),
                pts: None,
                eff,
            };
            // G locks live at the point *before* the statement.
            self.add_fact(ctx, idx, lock);
        }
        if let Instr::Assign(_, Rvalue::Call(callee, _)) = ins {
            let lib = self.lib;
            let cache = self.cache;
            if let Some(summary) = lib.get(*callee) {
                // Opaque callee: its specification's coarse locks stand
                // in for its accesses.
                for l in &summary.locks {
                    self.add_fact(ctx, idx, l.clone());
                }
            } else if let Some(c) = cache {
                // Phase B: the pre-pass covered every in-scope callee.
                let entries = c
                    .gen
                    .get(callee)
                    .expect("summary pre-pass covers every in-scope callee");
                self.stats.cache_hits += 1;
                for &gid in entries {
                    let le = self.locks.import(gid);
                    self.inject_unmapped((ctx, idx), *callee, le, None);
                }
            } else {
                self.register_gen_dep(*callee, (ctx, idx));
            }
        }
    }

    /// Pops points LIFO; each pop drains and propagates every pending
    /// lock of that point.
    fn drain(&mut self) {
        let mut ids: Vec<u32> = Vec::new();
        while let Some((ctx, idx)) = self.queue.pop() {
            let st = self
                .state
                .get_mut(&(ctx, idx))
                .expect("queued point has state");
            st.queued = false;
            ids.clear();
            st.pending.drain_into(&mut ids);
            for &lid in &ids {
                self.stats.pops += 1;
                self.process(ctx, idx, lid);
            }
        }
    }

    fn add_fact(&mut self, ctx: u32, idx: u32, lock: AbsLock) {
        let Some(lock) = self.config.normalize(lock, self.pt) else {
            return;
        };
        // Flow-insensitive locks — coarse locks and bare variable locks
        // `x̄` — are invariant under every transfer function: they jump
        // straight to the context's terminal.
        let flow_insensitive = match &lock.path {
            None => true,
            Some(p) => p.ops.is_empty(),
        };
        let id = self.locks.intern(&lock);
        if flow_insensitive {
            self.record_terminal(ctx, id);
            return;
        }
        self.add_fact_id(ctx, idx, id);
    }

    fn add_fact_id(&mut self, ctx: u32, idx: u32, id: u32) {
        let rec = self.locks.rec(id);
        let st = self.state.entry((ctx, idx)).or_default();
        if st.set.contains(id) {
            return;
        }
        let recs = &self.locks.recs;
        if st.set.iter().any(|l| rec.leq(recs[l as usize])) {
            return;
        }
        // Widening: past the width bound, fall back to the coarse
        // points-to lock (sent straight to the terminal).
        if st.set.len() >= WIDTH_LIMIT {
            self.stats.widenings += 1;
            if rec.pts != intern::NONE {
                let coarse = AbsLock {
                    path: None,
                    pts: Some(PtsClass(rec.pts)),
                    eff: rec.eff,
                };
                let cid = self.locks.intern(&coarse);
                self.record_terminal(ctx, cid);
            }
            return;
        }
        // Subsumed locks leave the set but keep any pending bit: if
        // they were scheduled, they still propagate (the triple
        // worklist of the reference engine behaves the same way).
        let dead = &mut self.scratch;
        dead.clear();
        for l in st.set.iter() {
            if recs[l as usize].leq(rec) {
                dead.push(l);
            }
        }
        for &l in dead.iter() {
            st.set.remove(l);
        }
        st.set.insert(id);
        st.pending.insert(id);
        if !st.queued {
            st.queued = true;
            self.queue.push((ctx, idx));
        }
        self.stats.facts += 1;
        if st.set.len() > self.stats.peak {
            self.stats.peak = st.set.len();
        }
    }

    fn process(&mut self, ctx: u32, idx: u32, lid: u32) {
        if idx == 0 {
            self.record_terminal(ctx, lid);
            return;
        }
        let program = self.program;
        let func = self.ctx_fn(ctx);
        let preds = self.preds;
        let fpreds = &preds[func.0 as usize];
        let body = &program.func(func).body;
        let is_root = matches!(self.ctxdb[ctx as usize], Ctx::Root);
        let region = self.root.map(|(_, r)| r);
        let lock = Arc::clone(&self.locks.arcs[lid as usize]);
        for &q in &fpreds[idx as usize] {
            let ins = &body[q as usize];
            // Stop at (and record) the section's own entry.
            if is_root {
                let region = region.expect("Root ctx implies section mode");
                if q == region.enter {
                    debug_assert!(matches!(ins, Instr::EnterAtomic(s) if *s == region.id));
                    self.record_result(lid);
                    continue;
                }
            }
            match self.tctx.transfer_lock(ins, &lock) {
                Transferred::Through(locks) => {
                    for l in locks {
                        self.add_fact(ctx, q, l);
                    }
                }
                Transferred::Call { callee, dest } => {
                    if self.lib.is_external(callee) {
                        self.external_call(ctx, q, callee, dest, &lock);
                    } else {
                        self.route_through_call(ctx, q, callee, dest, &lock);
                    }
                }
            }
        }
    }

    /// A fact reached its context's terminal — the section entry for
    /// Root (either by propagation or via the flow-insensitive
    /// shortcut), the function entry for summaries: update the summary
    /// and replay it at every dependent call site.
    fn record_terminal(&mut self, ctx: u32, id: u32) {
        match self.ctxdb[ctx as usize] {
            Ctx::Root => self.record_result(id),
            Ctx::Gen(f) => {
                let fresh =
                    add_summary_lock(&self.locks.recs, self.gen_entry.entry(f).or_default(), id);
                if fresh {
                    let deps = self.gen_dependents.get(&f).cloned().unwrap_or_default();
                    for site in deps {
                        self.inject_unmapped(site, f, id, None);
                    }
                }
            }
            Ctx::Query(f, q) => {
                let key = (f, q);
                let fresh = add_summary_lock(
                    &self.locks.recs,
                    self.query_entry.entry(key).or_default(),
                    id,
                );
                if fresh {
                    let deps = self.query_dependents.get(&key).cloned().unwrap_or_default();
                    for (site, eff) in deps {
                        self.inject_unmapped(site, f, id, Some(eff));
                    }
                }
            }
        }
    }

    /// Handles a fine lock flowing backward over `dest = callee(args)`:
    /// map it into the callee, then answer from the frozen cache or
    /// start/reuse a local (rw-canonical) summary query.
    fn route_through_call(
        &mut self,
        ctx: u32,
        call_idx: u32,
        callee: FnId,
        dest: VarId,
        lock: &AbsLock,
    ) {
        let program = self.program;
        let cache = self.cache;
        let ret = program.func(callee).ret;
        // Map: analyze `dest = ret_f` backward (a Copy transfer).
        let mapped = match self
            .tctx
            .transfer_lock(&Instr::Assign(dest, Rvalue::Copy(ret)), lock)
        {
            Transferred::Through(locks) => locks,
            Transferred::Call { .. } => unreachable!("copy is not a call"),
        };
        for m in mapped {
            let Some(m) = self.config.normalize(m, self.pt) else {
                continue;
            };
            // Demoted locks and locks untouched by the callee (mod-ref
            // filtering) bypass the summary machinery.
            let needs_summary = match &m.path {
                None => false,
                Some(p) if p.ops.is_empty() => false,
                Some(p) => must_route(program, self.pt, self.modsets, callee, p),
            };
            if !needs_summary {
                self.add_fact(ctx, call_idx, m);
                continue;
            }
            // Canonicalize the query to rw: transfer functions never
            // change effects, so a ro query would compute the same
            // entries modulo the effect tag.
            let want_eff = m.eff;
            let canonical = AbsLock { eff: Eff::Rw, ..m };
            let mid = self.locks.intern(&canonical);
            let site = (ctx, call_idx);
            if let Some(c) = cache {
                let gid = self.locks.global[mid as usize];
                if let Some(entries) = c.query.get(&(callee, gid)) {
                    self.stats.cache_hits += 1;
                    for &egid in entries {
                        let le = self.locks.import(egid);
                        self.inject_unmapped(site, callee, le, Some(want_eff));
                    }
                    continue;
                }
                self.stats.cache_misses += 1;
            }
            let key = (callee, mid);
            let deps = self.query_dependents.entry(key).or_default();
            if !deps.contains(&(site, want_eff)) {
                deps.push((site, want_eff));
                // Replay already-computed summary entries.
                let existing = self.query_entry.get(&key).cloned().unwrap_or_default();
                for le in existing {
                    self.inject_unmapped(site, callee, le, Some(want_eff));
                }
            }
            if self.started_queries.insert(key) {
                let exit = program.func(callee).body.len() as u32;
                let qctx = self.intern_ctx(Ctx::Query(callee, mid));
                self.add_fact(qctx, exit, canonical);
            }
        }
    }

    /// Handles a fine lock flowing backward over a call to an *opaque*
    /// (pre-compiled) function: locks rooted at the call's destination
    /// cannot be traced into the callee and are demoted to their coarse
    /// points-to lock; other locks are demoted only if the callee's
    /// specification says it may modify a cell their expression reads.
    fn external_call(
        &mut self,
        ctx: u32,
        call_idx: u32,
        callee: FnId,
        dest: VarId,
        lock: &AbsLock,
    ) {
        let path = lock
            .path
            .as_ref()
            .expect("external_call only sees fine locks");
        if path.base == dest {
            if let Some(c) = self.pt.class_of_path(path) {
                self.add_fact(
                    ctx,
                    call_idx,
                    AbsLock {
                        path: None,
                        pts: Some(c),
                        eff: lock.eff,
                    },
                );
            }
            return;
        }
        let l = self.lib.transfer_across(callee, lock, self.pt);
        self.add_fact(ctx, call_idx, l);
    }

    /// Registers a call site as a receiver of the callee's own-access
    /// (Gen) locks, replaying any already known. Phase A only — Phase B
    /// injects the frozen gen summaries at seed time instead.
    fn register_gen_dep(&mut self, callee: FnId, site: Site) {
        let deps = self.gen_dependents.entry(callee).or_default();
        if deps.contains(&site) {
            return;
        }
        deps.push(site);
        let existing = self.gen_entry.get(&callee).cloned().unwrap_or_default();
        for le in existing {
            self.inject_unmapped(site, callee, le, None);
        }
    }

    /// Unmap: push a callee-entry lock backward through the virtual
    /// prologue `p_0 = a_0; …; p_n = a_n` of a specific call site and
    /// inject the results before the call. `eff_override` rewrites the
    /// effect of rw-canonical query results back to what the dependent
    /// requested. Locks still rooted at a callee-owned variable after
    /// unmapping denote locations that do not exist before the call and
    /// are dropped; callee-owned symbolic indices demote to the `[]`
    /// offset.
    fn inject_unmapped(
        &mut self,
        site: Site,
        callee: FnId,
        entry_lock: u32,
        eff_override: Option<Eff>,
    ) {
        let (ctx, call_idx) = site;
        let program = self.program;
        let func = self.ctx_fn(ctx);
        let body = &program.func(func).body;
        let Instr::Assign(_, Rvalue::Call(f, args)) = &body[call_idx as usize] else {
            unreachable!("dependent site is a call instruction");
        };
        debug_assert_eq!(*f, callee);
        let params = &program.func(callee).params;
        let mut entry = (*self.locks.arcs[entry_lock as usize]).clone();
        if let Some(eff) = eff_override {
            entry.eff = eff;
        }
        let mut locks = vec![entry];
        for (p, a) in params.iter().zip(args).rev() {
            let assign = Instr::Assign(*p, Rvalue::Copy(*a));
            let mut next = Vec::new();
            for l in &locks {
                match self.tctx.transfer_lock(&assign, l) {
                    Transferred::Through(ls) => next.extend(ls),
                    Transferred::Call { .. } => unreachable!("copy is not a call"),
                }
            }
            locks = next;
        }
        let site_fn = func;
        for mut l in locks {
            if let Some(p) = &mut l.path {
                for op in &mut p.ops {
                    if let lir::PathOp::Index(z) = op {
                        let info = program.var(*z);
                        if info.owner == Some(callee)
                            && callee != site_fn
                            && info.kind != VarKind::Global
                        {
                            *op = lir::PathOp::Field(
                                self.config
                                    .elem_field
                                    .expect("dyn indices imply a [] field"),
                            );
                        }
                    }
                }
            }
            let owned_by_callee = match &l.path {
                Some(p) => {
                    let info = program.var(p.base);
                    // At a recursive call site caller and callee frames
                    // share variable ids; keep the lock then.
                    info.owner == Some(callee) && callee != site_fn && info.kind != VarKind::Global
                }
                None => false,
            };
            if !owned_by_callee {
                self.add_fact(ctx, call_idx, l);
            }
        }
    }

    fn record_result(&mut self, id: u32) {
        if !self.result.contains(&id) {
            self.result.push(id);
        }
    }
}

/// Subsumption insert for summary-entry sets; returns whether the lock
/// was new (not already covered).
fn add_summary_lock(recs: &[LockRec], set: &mut Vec<u32>, id: u32) -> bool {
    let rec = recs[id as usize];
    if set.iter().any(|&l| l == id || rec.leq(recs[l as usize])) {
        return false;
    }
    set.retain(|&l| !recs[l as usize].leq(rec));
    set.push(id);
    true
}
