//! Backward transfer functions (paper Figure 4), implemented — as §4.3
//! prescribes — by *recursive substitution over lock expressions* rather
//! than by materializing the closure relations.
//!
//! A fine lock is a linear path `x̄ · op₁ · op₂ · …`. The `S` relation of
//! each assignment form rewrites the innermost subterm `*x̄`; because
//! paths are linear, that is a rewrite of the path's head:
//!
//! | statement   | subterm rewrite            | path rewrite                       |
//! |-------------|----------------------------|------------------------------------|
//! | `x = y`     | `*x̄ → *ȳ`                  | base `x→y`                          |
//! | `x = &y`    | `*x̄ → ȳ`                   | base `x→y`, drop leading `Deref`    |
//! | `x = *y`    | `*x̄ → *(*ȳ)`               | base `x→y`, add one `Deref`         |
//! | `x = y + i` | `*x̄ → *ȳ + i`              | base `x→y`, insert `Field(i)`       |
//! | `x = new`   | lock is unreachable before | drop the lock                       |
//! | `*x = y`    | `*(l) → *ȳ` for `l ~ *x̄`   | rebase at each aliased `Deref`      |
//!
//! The `Q` sets become *strong updates*: the identity mapping is removed
//! exactly when the rewritten subterm occurs syntactically (`closure(Q)`
//! wraps the pair in arbitrary contexts, which for linear paths means
//! "the lock starts with the killed subterm").

use lir::{Eff, FieldId, Instr, PathExpr, PathOp, Program, Rvalue, VarId};
use lockscheme::AbsLock;
use pointsto::PointsTo;

/// Shared context for the transfer functions.
#[derive(Clone, Copy)]
pub struct TransferCtx<'a> {
    pub program: &'a Program,
    pub pt: &'a PointsTo,
    /// The dynamic `[]` pseudo-field, used to abstract `DynAddr`.
    pub elem: Option<FieldId>,
}

/// Outcome of pushing one lock backward across one instruction.
///
/// `Through(..)` carries the ordinary result; `Call` signals that the
/// instruction is a function call the dataflow engine must route through
/// the callee's summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transferred {
    Through(Vec<AbsLock>),
    Call { callee: lir::FnId, dest: VarId },
}

impl TransferCtx<'_> {
    /// Pushes `lock` backward across `instr`: the locks at the point
    /// before the instruction that protect everything `lock` protected
    /// after it (the `T` relation — the `G` sets are seeded separately,
    /// see [`TransferCtx::gen_locks`]).
    ///
    /// Coarse locks (`path == None`) are flow-insensitive and pass
    /// through every statement unchanged (§4.3).
    pub fn transfer_lock(&self, instr: &Instr, lock: &AbsLock) -> Transferred {
        if let Instr::Assign(dest, Rvalue::Call(f, _)) = instr {
            let needs_summary = match &lock.path {
                None => false,
                Some(p) => !p.ops.is_empty(),
            };
            if needs_summary {
                return Transferred::Call {
                    callee: *f,
                    dest: *dest,
                };
            }
            // `x̄` locks and coarse locks are unaffected by the callee's
            // body: a caller frame slot is written only by `Assign` in
            // the caller, or through its address — and then the lock
            // path would carry a deref and take the summary route.
            return Transferred::Through(vec![lock.clone()]);
        }
        let Some(path) = &lock.path else {
            return Transferred::Through(vec![lock.clone()]);
        };
        let out = match instr {
            Instr::Assign(x, rv) => self.transfer_assign(*x, rv, path, lock.eff),
            Instr::Store(x, y) => self.transfer_store(*x, *y, path, lock.eff),
            // Control flow, atomic markers, and acquire/release neither
            // define variables nor write cells: identity.
            Instr::EnterAtomic(_)
            | Instr::ExitAtomic(_)
            | Instr::AcquireAll(..)
            | Instr::ReleaseAll(_)
            | Instr::Jump(_)
            | Instr::Branch(..)
            | Instr::Ret
            | Instr::Nop => vec![lock.clone()],
        };
        Transferred::Through(out)
    }

    /// Backward transfer of a fine lock across `x = rv` (non-call).
    fn transfer_assign(&self, x: VarId, rv: &Rvalue, path: &PathExpr, eff: Eff) -> Vec<AbsLock> {
        // Step 1: rewrite the head when the lock mentions `*x̄`
        // (closure(Id) minus closure(Q_x): Q_x only kills locks starting
        // with `*x̄`).
        let variants: Vec<PathExpr> = if path.base != x || path.ops.first() != Some(&PathOp::Deref)
        {
            vec![path.clone()]
        } else {
            let rest = &path.ops[1..];
            let rebased = |base: VarId, head: Vec<PathOp>| {
                let mut ops = head;
                ops.extend_from_slice(rest);
                PathExpr { base, ops }
            };
            match rv {
                Rvalue::Copy(y) => vec![rebased(*y, vec![PathOp::Deref])],
                Rvalue::AddrOf(y) => vec![rebased(*y, vec![])],
                Rvalue::Load(y) => vec![rebased(*y, vec![PathOp::Deref, PathOp::Deref])],
                Rvalue::FieldAddr(y, f) => {
                    vec![rebased(*y, vec![PathOp::Deref, PathOp::Field(*f)])]
                }
                // The dynamic index is carried symbolically; if `z` is
                // later redefined, step 2 demotes the index to the
                // anonymous `[]` offset.
                Rvalue::DynAddr(y, z) => {
                    vec![rebased(*y, vec![PathOp::Deref, PathOp::Index(*z)])]
                }
                // The location was freshly allocated (or null, or an
                // integer): unreachable before this statement, so
                // nothing needs protection earlier (Lemma 2's
                // reachability proviso). This is what lets section-local
                // allocations shed locks.
                Rvalue::Alloc(_)
                | Rvalue::AllocDyn(_)
                | Rvalue::Null
                | Rvalue::ConstInt(_)
                | Rvalue::Arith(..)
                | Rvalue::Cmp(..)
                | Rvalue::Intrinsic(..) => Vec::new(),
                Rvalue::Call(..) => unreachable!("calls handled by the engine"),
            }
        };
        // Step 2: symbolic indices `[x]` read the *variable* x, so a
        // redefinition of x rewrites them too: copies rename the index,
        // anything else loses it (demoted to the whole-array `[]`
        // offset, which normalization may further demote to coarse).
        variants
            .into_iter()
            .map(|p| fine(self.fix_indices(p, x, rv), eff))
            .collect()
    }

    fn fix_indices(&self, mut p: PathExpr, x: VarId, rv: &Rvalue) -> PathExpr {
        for op in &mut p.ops {
            if let PathOp::Index(z) = op {
                if *z == x {
                    *op = match rv {
                        Rvalue::Copy(w) => PathOp::Index(*w),
                        _ => PathOp::Field(
                            self.elem
                                .expect("programs with dynamic indices have a [] field"),
                        ),
                    };
                }
            }
        }
        p
    }

    /// Backward transfer of a fine lock across `*x = y`.
    ///
    /// `S_{*x=y} = {(*(l), *ȳ) | l ~ *x̄}`: every dereference step whose
    /// prefix may alias the written cell is rebased onto `*ȳ`; the
    /// identity copy is kept (weak update) unless the aliased prefix is
    /// syntactically `*x̄` (`closure(Q_{*x})` — strong update).
    fn transfer_store(&self, x: VarId, y: VarId, path: &PathExpr, eff: Eff) -> Vec<AbsLock> {
        let written = PathExpr {
            base: x,
            ops: vec![PathOp::Deref],
        };
        let mut out = Vec::new();
        let mut strong = false;
        for (j, op) in path.ops.iter().enumerate() {
            if *op != PathOp::Deref {
                continue;
            }
            let prefix = PathExpr {
                base: path.base,
                ops: path.ops[..j].to_vec(),
            };
            if !self.pt.may_alias_paths(&prefix, &written) {
                continue;
            }
            let mut ops = vec![PathOp::Deref];
            ops.extend_from_slice(&path.ops[j + 1..]);
            out.push(fine(PathExpr { base: y, ops }, eff));
            if prefix == written {
                strong = true;
            }
        }
        if !strong {
            out.push(fine(path.clone(), eff));
        }
        out
    }

    /// The `G` sets of Figure 4: locks protecting the locations accessed
    /// *directly* by the instruction. Thread-local variable-address
    /// locks are omitted (§4.3). Effects: destinations get `rw`,
    /// operands `ro` (the implementation's `G_{e1}^{rw} ∪ G_{e2}^{ro}`).
    pub fn gen_locks(&self, instr: &Instr) -> Vec<(PathExpr, Eff)> {
        let mut out = Vec::new();
        let var = |v: VarId, eff: Eff, out: &mut Vec<(PathExpr, Eff)>| {
            if !self.program.var(v).is_thread_local() {
                out.push((PathExpr::var(v), eff));
            }
        };
        match instr {
            Instr::Assign(x, rv) => {
                var(*x, Eff::Rw, &mut out);
                match rv {
                    Rvalue::Copy(y) | Rvalue::FieldAddr(y, _) | Rvalue::AllocDyn(y) => {
                        var(*y, Eff::Ro, &mut out)
                    }
                    Rvalue::AddrOf(_) | Rvalue::Alloc(_) | Rvalue::Null | Rvalue::ConstInt(_) => {}
                    Rvalue::Load(y) => {
                        var(*y, Eff::Ro, &mut out);
                        out.push((
                            PathExpr {
                                base: *y,
                                ops: vec![PathOp::Deref],
                            },
                            Eff::Ro,
                        ));
                    }
                    Rvalue::DynAddr(y, z) => {
                        var(*y, Eff::Ro, &mut out);
                        var(*z, Eff::Ro, &mut out);
                    }
                    Rvalue::Arith(_, a, b) | Rvalue::Cmp(_, a, b) => {
                        var(*a, Eff::Ro, &mut out);
                        var(*b, Eff::Ro, &mut out);
                    }
                    Rvalue::Call(_, args) | Rvalue::Intrinsic(_, args) => {
                        for a in args {
                            var(*a, Eff::Ro, &mut out);
                        }
                    }
                }
            }
            Instr::Store(x, y) => {
                var(*x, Eff::Ro, &mut out);
                var(*y, Eff::Ro, &mut out);
                out.push((
                    PathExpr {
                        base: *x,
                        ops: vec![PathOp::Deref],
                    },
                    Eff::Rw,
                ));
            }
            Instr::Branch(v, _, _) => var(*v, Eff::Ro, &mut out),
            Instr::EnterAtomic(_)
            | Instr::ExitAtomic(_)
            | Instr::AcquireAll(..)
            | Instr::ReleaseAll(_)
            | Instr::Jump(_)
            | Instr::Ret
            | Instr::Nop => {}
        }
        out
    }
}

/// A fine lock carrying only its expression; the points-to and
/// normalization steps are applied by the engine (`SchemeConfig`).
fn fine(path: PathExpr, eff: Eff) -> AbsLock {
    AbsLock {
        path: Some(path),
        pts: None,
        eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::compile;

    struct Fixture {
        program: Program,
        pt: PointsTo,
    }

    impl Fixture {
        fn new(src: &str) -> Fixture {
            let program = compile(src).unwrap();
            let pt = PointsTo::analyze(&program);
            Fixture { program, pt }
        }

        fn ctx(&self) -> TransferCtx<'_> {
            TransferCtx {
                program: &self.program,
                pt: &self.pt,
                elem: self.program.elem_field_opt(),
            }
        }

        fn v(&self, name: &str) -> VarId {
            VarId(
                self.program
                    .vars
                    .iter()
                    .position(|vi| self.program.interner.resolve(vi.name) == name)
                    .unwrap_or_else(|| panic!("no var {name}")) as u32,
            )
        }

        fn f(&self, name: &str) -> FieldId {
            FieldId(
                self.program
                    .fields
                    .iter()
                    .position(|fi| self.program.interner.resolve(fi.name) == name)
                    .unwrap() as u32,
            )
        }
    }

    fn deref(base: VarId, more: &[PathOp]) -> AbsLock {
        let mut ops = vec![PathOp::Deref];
        ops.extend_from_slice(more);
        AbsLock {
            path: Some(PathExpr { base, ops }),
            pts: None,
            eff: Eff::Rw,
        }
    }

    fn through(t: Transferred) -> Vec<AbsLock> {
        match t {
            Transferred::Through(v) => v,
            other => panic!("expected Through, got {other:?}"),
        }
    }

    #[test]
    fn copy_rebases() {
        let fx = Fixture::new("fn main(x, y) { x = y; }");
        let (x, y) = (fx.v("x"), fx.v("y"));
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::Copy(y)), &deref(x, &[])),
        );
        assert_eq!(out, vec![deref(y, &[])]);
    }

    #[test]
    fn copy_leaves_unrelated_locks() {
        let fx = Fixture::new("fn main(x, y, z) { x = y; }");
        let (x, y, z) = (fx.v("x"), fx.v("y"), fx.v("z"));
        let lock = deref(z, &[]);
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::Copy(y)), &lock),
        );
        assert_eq!(out, vec![lock]);
        // The address lock x̄ is also unaffected by assigning to x.
        let addr = AbsLock {
            path: Some(PathExpr::var(x)),
            pts: None,
            eff: Eff::Ro,
        };
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::Copy(y)), &addr),
        );
        assert_eq!(out, vec![addr]);
    }

    #[test]
    fn addr_of_strips_a_deref() {
        let fx = Fixture::new("fn main(y) { let x = &y; let w = *x; }");
        let (x, y) = (fx.v("x"), fx.v("y"));
        // *x̄ → ȳ
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::AddrOf(y)), &deref(x, &[])),
        );
        assert_eq!(
            out,
            vec![AbsLock {
                path: Some(PathExpr::var(y)),
                pts: None,
                eff: Eff::Rw
            }]
        );
        // *(*x̄) → *ȳ
        let out = through(fx.ctx().transfer_lock(
            &Instr::Assign(x, Rvalue::AddrOf(y)),
            &deref(x, &[PathOp::Deref]),
        ));
        assert_eq!(out, vec![deref(y, &[])]);
    }

    #[test]
    fn load_adds_a_deref() {
        let fx = Fixture::new("fn main(x, y) { x = *y; }");
        let (x, y) = (fx.v("x"), fx.v("y"));
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::Load(y)), &deref(x, &[])),
        );
        assert_eq!(out, vec![deref(y, &[PathOp::Deref])]);
    }

    #[test]
    fn field_addr_inserts_the_field() {
        let fx = Fixture::new("struct s { data; } fn main(x, y) { x = y + 0; let t = x->data; }");
        let (x, y) = (fx.v("x"), fx.v("y"));
        let data = fx.f("data");
        let out = through(fx.ctx().transfer_lock(
            &Instr::Assign(x, Rvalue::FieldAddr(y, data)),
            &deref(x, &[]),
        ));
        assert_eq!(out, vec![deref(y, &[PathOp::Field(data)])]);
    }

    #[test]
    fn alloc_drops_the_lock() {
        let fx = Fixture::new("fn main(x) { x = new(4); }");
        let x = fx.v("x");
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::Alloc(4)), &deref(x, &[])),
        );
        assert!(out.is_empty());
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::Null), &deref(x, &[])),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn store_weak_update_keeps_both() {
        // Figure 2 of the paper: after `*t1 = w` (t1 may alias y.data),
        // the lock *(*ȳ + data) becomes both *w̄ and itself.
        let fx = Fixture::new(
            "struct s { data; }
             fn main(y, w) {
                 let x = y;
                 let t1 = &x->data;
                 atomic { *t1 = w; let z = y->data; *z = null; }
             }",
        );
        let (y, w) = (fx.v("y"), fx.v("w"));
        let t1 = fx.v("t1");
        let data = fx.f("data");
        let lock = deref(y, &[PathOp::Field(data), PathOp::Deref]);
        let out = through(fx.ctx().transfer_lock(&Instr::Store(t1, w), &lock));
        assert!(
            out.contains(&deref(w, &[])),
            "substituted lock *w̄ present: {out:?}"
        );
        assert!(out.contains(&lock), "weak update keeps the original");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn store_strong_update_on_syntactic_match() {
        let fx = Fixture::new("fn main(x, y) { *x = y; }");
        let (x, y) = (fx.v("x"), fx.v("y"));
        // Lock *(*x̄): the written cell itself is dereferenced.
        let lock = deref(x, &[PathOp::Deref]);
        let out = through(fx.ctx().transfer_lock(&Instr::Store(x, y), &lock));
        assert_eq!(out, vec![deref(y, &[])], "identity killed by Q_{{*x}}");
    }

    #[test]
    fn store_to_unrelated_class_is_identity() {
        let fx = Fixture::new(
            "fn main(x, y, a) { *x = y; let t = *a; }", // x and a never unified
        );
        let (x, y, a) = (fx.v("x"), fx.v("y"), fx.v("a"));
        let lock = deref(a, &[PathOp::Deref]);
        let out = through(fx.ctx().transfer_lock(&Instr::Store(x, y), &lock));
        assert_eq!(out, vec![lock]);
    }

    #[test]
    fn calls_route_fine_locks_to_summaries() {
        let fx = Fixture::new("fn f(a) { return a; } fn main(p) { let r = f(p); }");
        let (r, p) = (fx.v("r"), fx.v("p"));
        let call = Instr::Assign(r, Rvalue::Call(lir::FnId(0), vec![p]));
        assert!(matches!(
            fx.ctx().transfer_lock(&call, &deref(r, &[])),
            Transferred::Call { .. }
        ));
        // Coarse locks bypass the summary.
        let coarse = AbsLock::coarse(pointsto::PtsClass(0), Eff::Rw);
        assert!(matches!(
            fx.ctx().transfer_lock(&call, &coarse),
            Transferred::Through(v) if v == vec![coarse.clone()]
        ));
    }

    #[test]
    fn gen_locks_for_load_and_store() {
        let fx = Fixture::new("global g; fn main(y) { g = *y; *y = g; }");
        let (g, y) = (fx.v("g"), fx.v("y"));
        let ctx = fx.ctx();
        // g = *y: writes g (global ⇒ ḡ rw), reads y (param, thread-local
        // ⇒ omitted) and *y (ro).
        let gens = ctx.gen_locks(&Instr::Assign(g, Rvalue::Load(y)));
        assert!(gens.contains(&(PathExpr::var(g), Eff::Rw)));
        assert!(gens.contains(&(
            PathExpr {
                base: y,
                ops: vec![PathOp::Deref]
            },
            Eff::Ro
        )));
        assert!(
            !gens.iter().any(|(p, _)| p == &PathExpr::var(y)),
            "thread-local ȳ omitted"
        );
        // *y = g: writes *y (rw), reads g (ro).
        let gens = ctx.gen_locks(&Instr::Store(y, g));
        assert!(gens.contains(&(
            PathExpr {
                base: y,
                ops: vec![PathOp::Deref]
            },
            Eff::Rw
        )));
        assert!(gens.contains(&(PathExpr::var(g), Eff::Ro)));
    }

    #[test]
    fn gen_locks_keep_address_taken_locals() {
        let fx = Fixture::new("fn main() { let x = null; let p = &x; *p = null; }");
        let x = fx.v("x");
        let gens = fx.ctx().gen_locks(&Instr::Assign(x, Rvalue::Null));
        assert!(
            gens.contains(&(PathExpr::var(x), Eff::Rw)),
            "&x was taken: x̄ required"
        );
    }

    #[test]
    fn dyn_addr_rewrites_to_symbolic_index() {
        let fx = Fixture::new("fn main(a, i, x) { x = a[i]; }");
        let (a, i, x) = (fx.v("a"), fx.v("i"), fx.v("x"));
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(x, Rvalue::DynAddr(a, i)), &deref(x, &[])),
        );
        assert_eq!(out, vec![deref(a, &[PathOp::Index(i)])]);
    }

    #[test]
    fn index_vars_are_renamed_by_copies_and_demoted_otherwise() {
        let fx = Fixture::new("fn main(a, b, k, nb) { b = k; b = k % nb; let x = a[b]; }");
        let (a, b, k, nb) = (fx.v("a"), fx.v("b"), fx.v("k"), fx.v("nb"));
        let elem = fx.program.elem_field_opt().unwrap();
        let lock = deref(a, &[PathOp::Index(b)]);
        // Crossing `b = k` renames the index.
        let out = through(
            fx.ctx()
                .transfer_lock(&Instr::Assign(b, Rvalue::Copy(k)), &lock),
        );
        assert_eq!(out, vec![deref(a, &[PathOp::Index(k)])]);
        // Crossing `b = k % nb` loses the symbolic index: the whole
        // array family is locked instead.
        let out = through(fx.ctx().transfer_lock(
            &Instr::Assign(b, Rvalue::Arith(lir::ArithOp::Rem, k, nb)),
            &lock,
        ));
        assert_eq!(out, vec![deref(a, &[PathOp::Field(elem)])]);
    }
}
