//! Pre-compiled library support (§4.3, "Supporting pre-compiled
//! libraries").
//!
//! When a callee's source is unavailable, the analysis accepts a
//! *function specification* instead: a list of coarse-grain locks
//! covering everything the function may access, plus the set of
//! points-to classes it may modify. Coarse locks are flow-insensitive,
//! so they protect all accesses inside the opaque function; fine locks
//! flowing backward across the call are demoted to their coarse
//! points-to lock whenever the opaque function could have changed the
//! cells their expression reads.

use lir::FnId;
use lockscheme::AbsLock;
use pointsto::{PointsTo, PtsClass};
use std::collections::HashMap;

/// Specification of one opaque (pre-compiled) function.
#[derive(Clone, Debug, Default)]
pub struct ExternalSummary {
    /// Coarse locks protecting every access the function performs.
    pub locks: Vec<AbsLock>,
    /// Points-to classes whose cells the function may overwrite.
    pub modifies: Vec<PtsClass>,
}

/// Function specifications for functions treated as pre-compiled.
#[derive(Clone, Debug, Default)]
pub struct LibrarySpec {
    specs: HashMap<FnId, ExternalSummary>,
}

impl LibrarySpec {
    /// Creates an empty specification set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `f` opaque with the given summary.
    pub fn insert(&mut self, f: FnId, summary: ExternalSummary) {
        self.specs.insert(f, summary);
    }

    /// The summary for `f`, if it is opaque.
    pub fn get(&self, f: FnId) -> Option<&ExternalSummary> {
        self.specs.get(&f)
    }

    /// Whether `f` is opaque.
    pub fn is_external(&self, f: FnId) -> bool {
        self.specs.contains_key(&f)
    }

    /// Transfers a fine lock backward across a call to opaque `f`:
    /// if any dereference step of the lock's expression reads a cell the
    /// function may modify, the expression is no longer meaningful
    /// before the call and the lock is demoted to its coarse points-to
    /// lock; otherwise it passes through unchanged.
    pub fn transfer_across(&self, f: FnId, lock: &AbsLock, pt: &PointsTo) -> AbsLock {
        let Some(summary) = self.get(f) else {
            return lock.clone();
        };
        let Some(path) = &lock.path else {
            return lock.clone();
        };
        for j in 0..path.ops.len() {
            if path.ops[j] != lir::PathOp::Deref {
                continue;
            }
            let prefix = lir::PathExpr {
                base: path.base,
                ops: path.ops[..j].to_vec(),
            };
            if let Some(c) = pt.class_of_path(&prefix) {
                if summary.modifies.contains(&c) {
                    return AbsLock {
                        path: None,
                        pts: lock.pts.or(pt.class_of_path(path)),
                        eff: lock.eff,
                    };
                }
            }
        }
        lock.clone()
    }
}
