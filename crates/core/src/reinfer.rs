//! Quarantine-aware re-inference — the *policy* half (DESIGN.md §5.8).
//!
//! The sentinel's quarantine ladder (DESIGN.md §5.5) demotes an
//! offending section to the trivially sound global scheme and, after a
//! clean probation, heals it — *back onto the very scheme that
//! offended*. This module closes that gap: each recorded
//! [`Violation`] is a counterexample witness against the abstraction
//! (the held-mode set that failed Fig. 6 licensing, plus the accessed
//! cell's allocation extent), and [`diagnose`] reads off *which*
//! component failed — a missed may-alias edge in `Σ≡`, an
//! under-approximated effect in `Σ_ε`, or a fine `Σ_k` expression that
//! pinned the wrong cell of the right class. [`candidates`] maps the
//! per-section diagnosis set to repaired [`SchemeConfig`] overrides,
//! and [`admit`] applies the acceptance rule: a repair is installed
//! only if its replayed execution is lockset-clean **and** strictly
//! cheaper (total virtual-time wait) than the global demotion it
//! replaces — otherwise the ladder's demotion stands, which is always
//! sound.
//!
//! Everything here is a pure function of its arguments — no clocks, no
//! randomness, no thread-count dependence — so an identical violation
//! ledger and candidate set produce byte-identical repair reports on
//! any machine, at any parallelism. (The ledger itself is canonical:
//! [`sentinel::Sentinel::violations`] sorts by `(clock, tid, seq)`,
//! all schedule properties.) The replay-and-measure half lives in the
//! root crate (`src/reinfer.rs`), which can see the interpreter.

use std::collections::BTreeMap;

use lockscheme::{ConfigMap, SchemeConfig};
use mglock::{FineAddr, NodeKey};
use pointsto::{PointsTo, PtsClass};
use sentinel::Violation;
use trace::lockset::mode_grants;

pub use crate::adapt::{EvalStatus, PlanCost};

/// One violation plus the accessed cell's allocation extent, resolved
/// by the orchestration layer from the recorded trace's allocation
/// events: `(base address, points-to class of the allocation site)`.
/// `None` when the address falls outside every recorded allocation
/// (an out-of-extent access no scheme component can name — only the
/// conservative repairs apply).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Witness {
    pub violation: Violation,
    pub extent: Option<(u64, u32)>,
}

/// Which scheme component the witness convicts. Ordered by
/// specificity: [`diagnose`] returns the most precise explanation the
/// held set supports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Diagnosis {
    /// Some held grant *covers* the accessed cell (root, its class, or
    /// its very cell) but in a mode Fig. 6 does not grant the effect —
    /// the effect component `Σ_ε` under-approximated (planned `S`
    /// where the execution writes).
    WrongMode,
    /// Some held grant is a fine lock of the accessed cell's own
    /// class, in a licensing mode, but pinned to a different cell —
    /// the `Σ_k` expression's denotation drifted off the accessed
    /// element (intra-class aliasing the expression missed).
    WrongCell {
        /// The accessed cell's points-to class.
        accessed: u32,
    },
    /// Every licensing-mode grant names a *different* points-to class
    /// than the accessed cell: the abstraction missed a may-alias
    /// edge the execution just proved. The pair is the refinement the
    /// witness asks for (merge `held` into `accessed`).
    MissedAlias {
        /// The accessed cell's points-to class.
        accessed: u32,
        /// The smallest-numbered held class with a licensing mode.
        held: u32,
    },
    /// Nothing held licenses anything relevant — the plan simply never
    /// named the location (the dropped-spec shape a seeded
    /// [`WeakenPlan`](../../interp/fault/struct.WeakenPlan.html)
    /// produces). Only the conservative repairs apply.
    NoCover,
}

impl Diagnosis {
    /// Stable machine-readable tag (used in the repair report).
    pub fn tag(&self) -> String {
        match self {
            Diagnosis::WrongMode => "wrong-mode".into(),
            Diagnosis::WrongCell { accessed } => format!("wrong-cell:c{accessed}"),
            Diagnosis::MissedAlias { accessed, held } => {
                format!("missed-alias:c{held}-c{accessed}")
            }
            Diagnosis::NoCover => "no-cover".into(),
        }
    }

    /// Fixed candidate-generation priority (lower fires first).
    fn rank(&self) -> u8 {
        match self {
            Diagnosis::WrongMode => 0,
            Diagnosis::WrongCell { .. } => 1,
            Diagnosis::MissedAlias { .. } => 2,
            Diagnosis::NoCover => 3,
        }
    }
}

/// Does `node` cover the accessed cell, ignoring mode? (The coverage
/// half of `trace::lockset::licenses`.)
fn covers(node: NodeKey, addr: u64, extent: Option<(u64, u32)>) -> bool {
    match node {
        NodeKey::Root => true,
        NodeKey::Pts(p) => extent.is_some_and(|(_, class)| class == p),
        NodeKey::Fine(_, FineAddr::Cell(a)) => addr == a,
        NodeKey::Fine(_, FineAddr::Range(b)) => extent.is_some_and(|(base, _)| base == b),
    }
}

/// The class a held grant speaks for, if any.
fn class_of(node: NodeKey) -> Option<u32> {
    match node {
        NodeKey::Root => None,
        NodeKey::Pts(p) | NodeKey::Fine(p, _) => Some(p),
    }
}

/// Reads the most precise failure explanation off one witness.
///
/// Deterministic: explanations are tried in a fixed specificity order
/// (wrong mode on a covering node, then wrong cell within the right
/// class, then a missed alias, then no cover), and the missed-alias
/// pair picks the smallest-numbered licensing held class.
pub fn diagnose(w: &Witness) -> Diagnosis {
    let v = &w.violation;
    if v.held
        .iter()
        .any(|&(node, mode)| covers(node, v.addr, w.extent) && !mode_grants(mode, v.write))
    {
        return Diagnosis::WrongMode;
    }
    if let Some((_, accessed)) = w.extent {
        let fine_same_class = v.held.iter().any(|&(node, mode)| {
            matches!(node, NodeKey::Fine(p, _) if p == accessed) && mode_grants(mode, v.write)
        });
        if fine_same_class {
            return Diagnosis::WrongCell { accessed };
        }
        let held = v
            .held
            .iter()
            .filter(|&&(_, mode)| mode_grants(mode, v.write))
            .filter_map(|&(node, _)| class_of(node))
            .filter(|&p| p != accessed)
            .min();
        if let Some(held) = held {
            return Diagnosis::MissedAlias { accessed, held };
        }
    }
    Diagnosis::NoCover
}

/// Checks a [`Diagnosis::MissedAlias`] witness against the points-to
/// abstraction by *applying* the refinement it proposes: unify the
/// held and accessed classes with [`PointsTo::merged`] (an incremental
/// re-freeze of the frozen union-find, not a cold re-analysis) and
/// report how many classes the refined abstraction loses. A collapse
/// of `1` means the witnessed edge is local — exactly the two classes
/// fuse; a larger collapse means the edge cascades through successor
/// unification and a coarse repair will cover correspondingly more
/// unrelated state. Returns `None` when either class is out of range
/// or the classes already coincide (the abstraction did not miss the
/// edge — the violation came from a weakened *plan*, not a wrong
/// *analysis*, and the repair report records it as such).
pub fn alias_merge_collapse(pt: &PointsTo, held: u32, accessed: u32) -> Option<u32> {
    if held == accessed || held >= pt.n_classes() || accessed >= pt.n_classes() {
        return None;
    }
    let refined = pt.merged(PtsClass(held), PtsClass(accessed));
    Some(pt.n_classes() - refined.n_classes())
}

/// What a repair changes relative to the section's current
/// configuration. Unlike [`crate::adapt::Adjustment`], every repair
/// moves *coarser or wider* — a violation is evidence the current
/// point under-protects, so refinements that narrow coverage are never
/// proposed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Repair {
    /// Drop the expression component: the section's locks degrade to
    /// the coarse per-class `Σ≡` locks, which cover every cell of the
    /// class the witness proved reachable.
    Coarsen,
    /// Drop the effect component: every lock is planned at `rw`
    /// (exclusive), closing the read-planned/write-executed gap.
    Widen,
    /// Both: coarse per-class locks at `rw` — the strongest repair
    /// short of the global demotion itself, and still non-global (the
    /// points-to component stays on).
    CoarsenWiden,
}

impl Repair {
    /// Stable machine-readable tag (used in the repair report and the
    /// `["ri",…]` ledger documentation).
    pub fn tag(&self) -> &'static str {
        match self {
            Repair::Coarsen => "coarsen",
            Repair::Widen => "widen",
            Repair::CoarsenWiden => "coarsen-widen",
        }
    }

    /// Applies the repair to a configuration.
    fn apply(&self, c: SchemeConfig) -> SchemeConfig {
        match self {
            Repair::Coarsen => SchemeConfig {
                use_expr: false,
                use_pts: true,
                ..c
            },
            Repair::Widen => SchemeConfig {
                use_eff: false,
                use_pts: true,
                ..c
            },
            Repair::CoarsenWiden => SchemeConfig {
                use_expr: false,
                use_eff: false,
                use_pts: true,
                ..c
            },
        }
    }
}

/// One proposed per-section repair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RepairCandidate {
    /// Static section id the repair applies to.
    pub section: u32,
    /// The repaired configuration.
    pub config: SchemeConfig,
    pub repair: Repair,
    /// The (first, in canonical ledger order) witness diagnosis that
    /// motivated this repair.
    pub diagnosis: Diagnosis,
}

impl RepairCandidate {
    /// The candidate's full configuration map: `base` plus this one
    /// override.
    pub fn config_map(&self, base: &ConfigMap) -> ConfigMap {
        let mut m = base.clone();
        m.set_override(self.section, self.config);
        m
    }
}

/// Maps a canonical violation ledger (as [`Witness`]es) to repair
/// candidates, grouped per offending section.
///
/// Deterministic: sections are visited in ascending id order;
/// per-section, witnesses keep their canonical `(clock, tid, seq)`
/// ledger order, diagnoses fire candidates in a fixed specificity
/// order ([`Diagnosis::rank`]), and duplicates (by repaired
/// configuration) are emitted once, first occurrence wins. No-op
/// repairs (configuration equal to the section's current one) are
/// dropped — replaying the offending configuration cannot discharge
/// its own counterexample.
pub fn candidates(witnesses: &[Witness], base: &ConfigMap) -> Vec<RepairCandidate> {
    let mut by_section: BTreeMap<u32, Vec<&Witness>> = BTreeMap::new();
    for w in witnesses {
        by_section.entry(w.violation.section).or_default().push(w);
    }
    let mut out = Vec::new();
    for (&section, ws) in &by_section {
        let current = base.for_section(section);
        // The section's diagnosis set, most specific first; ties keep
        // ledger order (stable sort).
        let mut diags: Vec<Diagnosis> = ws.iter().map(|w| diagnose(w)).collect();
        diags.sort_by_key(Diagnosis::rank);
        let mut section_out: Vec<RepairCandidate> = Vec::new();
        let mut push = |repair: Repair, diagnosis: Diagnosis| {
            let config = repair.apply(current);
            if config == current || section_out.iter().any(|c| c.config == config) {
                return;
            }
            section_out.push(RepairCandidate {
                section,
                config,
                repair,
                diagnosis,
            });
        };
        for &d in &diags {
            match d {
                Diagnosis::WrongMode => push(Repair::Widen, d),
                Diagnosis::WrongCell { .. }
                | Diagnosis::MissedAlias { .. }
                | Diagnosis::NoCover => push(Repair::Coarsen, d),
            }
        }
        // The conservative fallback rides along for every offending
        // section, motivated by its most specific diagnosis.
        if let Some(&d) = diags.first() {
            push(Repair::CoarsenWiden, d);
        }
        out.append(&mut section_out);
    }
    out
}

/// Outcome of replaying one repair candidate, as measured by the
/// orchestration layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RepairOutcome {
    /// The replayed trace validated lockset-clean with zero sentinel
    /// violations.
    pub clean: bool,
    /// The replayed cost.
    pub cost: PlanCost,
}

/// The acceptance rule: a repair is admitted only if its replay is
/// lockset-clean **and** strictly cheaper (total virtual-time wait)
/// than `demoted` — the measured cost of leaving the section on the
/// quarantine ladder's global demotion. Ties break by lower makespan,
/// then generation order. `None` means the demotion stands (always
/// sound, never wrong — just slow).
pub fn admit(demoted: PlanCost, outcomes: &[RepairOutcome]) -> Option<usize> {
    outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.clean && o.cost.total_wait < demoted.total_wait)
        .min_by_key(|(i, o)| (o.cost.total_wait, o.cost.makespan, *i))
        .map(|(i, _)| i)
}

/// One evaluated repair candidate: the proposal plus its measured
/// replay outcome (cost zeroed when `status` says it was never
/// replayed).
#[derive(Clone, PartialEq, Debug)]
pub struct RepairDecision {
    pub candidate: RepairCandidate,
    /// Lockset-clean with zero violations on replay.
    pub clean: bool,
    pub cost: PlanCost,
    pub status: EvalStatus,
}

/// One offending section's repair trial.
#[derive(Clone, PartialEq, Debug)]
pub struct SectionReport {
    /// The demoted section.
    pub section: u32,
    /// Canonical-ledger violations attributed to it.
    pub violations: u64,
    /// Measured cost of the global-demotion reference (what healing
    /// back onto the seed scheme under quarantine costs).
    pub demoted: PlanCost,
    /// Every candidate evaluated, in generation order.
    pub candidates: Vec<RepairDecision>,
    /// Index into `candidates` of the admitted repair, if any.
    pub admitted: Option<usize>,
}

impl SectionReport {
    /// The admitted decision, if any candidate was.
    pub fn winner(&self) -> Option<&RepairDecision> {
        self.admitted.map(|i| &self.candidates[i])
    }
}

/// The machine-readable outcome of one re-inference run.
#[derive(Clone, PartialEq, Debug)]
pub struct RepairReport {
    /// Workload / run name.
    pub name: String,
    /// Execution mode of the recorded run.
    pub mode: String,
    /// Cost of the recorded (armed, offending) baseline execution.
    pub baseline: PlanCost,
    /// One entry per offending section, ascending section id.
    pub sections: Vec<SectionReport>,
}

impl RepairReport {
    /// Every admitted `(section, candidate index within its section)`
    /// pair, ascending section order — the set the orchestration layer
    /// installs as dormant repairs.
    pub fn admitted(&self) -> Vec<(u32, usize)> {
        self.sections
            .iter()
            .filter_map(|s| s.admitted.map(|i| (s.section, i)))
            .collect()
    }

    /// Canonical JSON encoding (hand-rolled — the build environment
    /// has no serde; fixed key order, no whitespace).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn push_cost(out: &mut String, c: PlanCost) {
            let _ = write!(
                out,
                "{{\"wait\":{},\"hold\":{},\"revalidations\":{},\"makespan\":{}}}",
                c.total_wait, c.total_hold, c.total_revalidations, c.makespan
            );
        }
        fn push_config(out: &mut String, c: SchemeConfig) {
            let _ = write!(
                out,
                "{{\"k\":{},\"expr\":{},\"pts\":{},\"eff\":{}}}",
                c.k, c.use_expr, c.use_pts, c.use_eff
            );
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"mode\":\"{}\",\"baseline\":",
            self.name, self.mode
        );
        push_cost(&mut out, self.baseline);
        out.push_str(",\"sections\":[");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"section\":{},\"violations\":{},\"demoted\":",
                s.section, s.violations
            );
            push_cost(&mut out, s.demoted);
            out.push_str(",\"candidates\":[");
            for (j, d) in s.candidates.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"repair\":\"{}\",\"diagnosis\":\"{}\",\"config\":",
                    d.candidate.repair.tag(),
                    d.candidate.diagnosis.tag()
                );
                push_config(&mut out, d.candidate.config);
                let _ = write!(out, ",\"clean\":{},\"cost\":", d.clean);
                push_cost(&mut out, d.cost);
                out.push(',');
                d.status.push_json(&mut out);
                out.push('}');
            }
            out.push_str("],\"admitted\":");
            match s.admitted {
                Some(j) => {
                    let _ = write!(out, "{j}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mglock::Mode;

    fn witness(
        section: u32,
        addr: u64,
        write: bool,
        held: Vec<(NodeKey, Mode)>,
        extent: Option<(u64, u32)>,
    ) -> Witness {
        Witness {
            violation: Violation::new(section, 0, addr, write, 0, 0, held),
            extent,
        }
    }

    fn base() -> ConfigMap {
        ConfigMap::uniform(SchemeConfig::full(3, None))
    }

    #[test]
    fn covering_node_in_a_nonlicensing_mode_is_wrong_mode() {
        // A write under an S grant on the accessed cell's own class:
        // the effect component planned a read lock.
        let w = witness(
            1,
            100,
            true,
            vec![(NodeKey::Pts(2), Mode::S)],
            Some((96, 2)),
        );
        assert_eq!(diagnose(&w), Diagnosis::WrongMode);
        assert_eq!(diagnose(&w).tag(), "wrong-mode");
        // Intention modes never license, so IX on the class is the
        // same story.
        let w = witness(
            1,
            100,
            true,
            vec![(NodeKey::Pts(2), Mode::Ix)],
            Some((96, 2)),
        );
        assert_eq!(diagnose(&w), Diagnosis::WrongMode);
    }

    #[test]
    fn licensing_fine_grant_on_the_wrong_cell_of_the_right_class_is_wrong_cell() {
        let w = witness(
            3,
            100,
            true,
            vec![(NodeKey::Fine(2, FineAddr::Cell(64)), Mode::X)],
            Some((96, 2)),
        );
        assert_eq!(diagnose(&w), Diagnosis::WrongCell { accessed: 2 });
        assert_eq!(diagnose(&w).tag(), "wrong-cell:c2");
    }

    #[test]
    fn licensing_grant_on_a_different_class_is_a_missed_alias() {
        // X held on class 5, access lands in class 2: the abstraction
        // missed the edge. The smallest licensing held class is the
        // reported pair partner.
        let w = witness(
            3,
            100,
            true,
            vec![
                (NodeKey::Pts(7), Mode::X),
                (NodeKey::Pts(5), Mode::X),
                (NodeKey::Pts(4), Mode::Ix),
            ],
            Some((96, 2)),
        );
        assert_eq!(
            diagnose(&w),
            Diagnosis::MissedAlias {
                accessed: 2,
                held: 5
            }
        );
        assert_eq!(diagnose(&w).tag(), "missed-alias:c5-c2");
    }

    #[test]
    fn empty_or_irrelevant_held_sets_are_no_cover() {
        let w = witness(3, 100, true, vec![], Some((96, 2)));
        assert_eq!(diagnose(&w), Diagnosis::NoCover);
        // Intention-only grants license nothing, and without an extent
        // a foreign-class X grant proves no alias pair either.
        let w = witness(
            3,
            100,
            true,
            vec![(NodeKey::Pts(5), Mode::Ix)],
            Some((96, 2)),
        );
        assert_eq!(diagnose(&w), Diagnosis::NoCover);
        let w = witness(3, 100, true, vec![(NodeKey::Pts(5), Mode::X)], None);
        assert_eq!(diagnose(&w), Diagnosis::NoCover);
    }

    #[test]
    fn wrong_mode_outranks_the_alias_explanations() {
        // Both an S grant on the covering class and an X grant on a
        // foreign class: the mode explanation is the more specific
        // conviction (the plan *did* name the location).
        let w = witness(
            1,
            100,
            true,
            vec![(NodeKey::Pts(2), Mode::S), (NodeKey::Pts(5), Mode::X)],
            Some((96, 2)),
        );
        assert_eq!(diagnose(&w), Diagnosis::WrongMode);
    }

    #[test]
    fn candidates_group_by_section_dedupe_and_order_by_specificity() {
        // Section 2: a wrong-mode witness and a no-cover witness.
        // Section 1: a missed alias.
        let ws = vec![
            witness(
                2,
                100,
                true,
                vec![(NodeKey::Pts(3), Mode::S)],
                Some((96, 3)),
            ),
            witness(
                1,
                200,
                true,
                vec![(NodeKey::Pts(4), Mode::X)],
                Some((192, 6)),
            ),
            witness(2, 300, false, vec![(NodeKey::Pts(9), Mode::Ix)], None),
        ];
        let cs = candidates(&ws, &base());
        // Ascending section order.
        assert_eq!(
            cs.iter().map(|c| c.section).collect::<Vec<_>>(),
            vec![1, 1, 2, 2, 2]
        );
        // Section 1: coarsen (from the alias) then the fallback.
        assert_eq!(cs[0].repair, Repair::Coarsen);
        assert_eq!(
            cs[0].diagnosis,
            Diagnosis::MissedAlias {
                accessed: 6,
                held: 4
            }
        );
        assert!(!cs[0].config.use_expr && cs[0].config.use_pts && cs[0].config.use_eff);
        assert_eq!(cs[1].repair, Repair::CoarsenWiden);
        assert!(!cs[1].config.use_expr && cs[1].config.use_pts && !cs[1].config.use_eff);
        // Section 2: widen fires first (wrong-mode is the most
        // specific diagnosis), then coarsen from no-cover, then the
        // fallback — each config distinct, none global.
        assert_eq!(cs[2].repair, Repair::Widen);
        assert_eq!(cs[2].diagnosis, Diagnosis::WrongMode);
        assert_eq!(cs[3].repair, Repair::Coarsen);
        assert_eq!(cs[4].repair, Repair::CoarsenWiden);
        assert!(cs.iter().all(|c| !c.config.is_trivially_sound()));
        // Deterministic.
        assert_eq!(cs, candidates(&ws, &base()));
    }

    #[test]
    fn repairs_that_cannot_move_the_config_are_dropped() {
        // The section already runs coarse `rw` locks: coarsen, widen,
        // and the fallback are all no-ops — nothing to try, the
        // demotion stands.
        let mut base = base();
        base.set_override(
            7,
            SchemeConfig {
                use_expr: false,
                use_eff: false,
                ..SchemeConfig::full(3, None)
            },
        );
        let ws = vec![witness(7, 100, true, vec![], Some((96, 2)))];
        assert!(candidates(&ws, &base).is_empty());
    }

    #[test]
    fn admit_requires_clean_and_strictly_cheaper_than_the_demotion() {
        let demoted = PlanCost {
            total_wait: 100,
            makespan: 50,
            ..PlanCost::default()
        };
        let cheap_dirty = RepairOutcome {
            clean: false,
            cost: PlanCost {
                total_wait: 10,
                ..PlanCost::default()
            },
        };
        let clean_tie = RepairOutcome {
            clean: true,
            cost: PlanCost {
                total_wait: 100,
                ..PlanCost::default()
            },
        };
        let clean_cheap = RepairOutcome {
            clean: true,
            cost: PlanCost {
                total_wait: 80,
                makespan: 60,
                ..PlanCost::default()
            },
        };
        let clean_cheapest_tie = RepairOutcome {
            clean: true,
            cost: PlanCost {
                total_wait: 80,
                makespan: 55,
                ..PlanCost::default()
            },
        };
        // A lockset-dirty replay never wins, however cheap.
        assert_eq!(admit(demoted, &[cheap_dirty, clean_tie]), None);
        assert_eq!(
            admit(demoted, &[cheap_dirty, clean_cheap, clean_cheapest_tie]),
            Some(2)
        );
        assert_eq!(admit(demoted, &[clean_cheapest_tie, clean_cheap]), Some(0));
    }

    #[test]
    fn alias_merge_collapse_measures_the_refinement_locally() {
        let program = lir::compile(
            r#"
            struct node { next; val; }
            fn f(a, b) {
                atomic { a->next = b; }
            }
            fn g(c) {
                atomic { c->val = 1; }
            }
        "#,
        )
        .unwrap();
        let pt = PointsTo::analyze(&program);
        assert!(pt.n_classes() >= 2);
        // Merging two distinct live classes loses at least one class;
        // the same pair is a no-op (`None`), as are out-of-range ids.
        let collapse = alias_merge_collapse(&pt, 0, 1).expect("distinct classes merge");
        assert!(collapse >= 1);
        assert_eq!(alias_merge_collapse(&pt, 1, 1), None);
        assert_eq!(alias_merge_collapse(&pt, 0, pt.n_classes()), None);
    }

    #[test]
    fn report_json_is_canonical() {
        let c = RepairCandidate {
            section: 4,
            config: SchemeConfig {
                use_expr: false,
                ..SchemeConfig::full(3, None)
            },
            repair: Repair::Coarsen,
            diagnosis: Diagnosis::MissedAlias {
                accessed: 2,
                held: 5,
            },
        };
        let r = RepairReport {
            name: "scale".into(),
            mode: "MultiGrain".into(),
            baseline: PlanCost {
                total_wait: 10,
                total_hold: 20,
                total_revalidations: 0,
                makespan: 99,
            },
            sections: vec![SectionReport {
                section: 4,
                violations: 3,
                demoted: PlanCost {
                    total_wait: 500,
                    total_hold: 40,
                    total_revalidations: 1,
                    makespan: 120,
                },
                candidates: vec![RepairDecision {
                    candidate: c,
                    clean: true,
                    cost: PlanCost {
                        total_wait: 80,
                        total_hold: 30,
                        total_revalidations: 0,
                        makespan: 110,
                    },
                    status: EvalStatus::Replayed,
                }],
                admitted: Some(0),
            }],
        };
        let j = r.to_json();
        assert_eq!(
            j,
            "{\"name\":\"scale\",\"mode\":\"MultiGrain\",\
             \"baseline\":{\"wait\":10,\"hold\":20,\"revalidations\":0,\"makespan\":99},\
             \"sections\":[{\"section\":4,\"violations\":3,\
             \"demoted\":{\"wait\":500,\"hold\":40,\"revalidations\":1,\"makespan\":120},\
             \"candidates\":[{\"repair\":\"coarsen\",\"diagnosis\":\"missed-alias:c5-c2\",\
             \"config\":{\"k\":3,\"expr\":false,\"pts\":true,\"eff\":true},\
             \"clean\":true,\
             \"cost\":{\"wait\":80,\"hold\":30,\"revalidations\":0,\"makespan\":110},\
             \"status\":\"replayed\"}],\
             \"admitted\":0}]}"
        );
        assert_eq!(r.to_json(), j);
        assert_eq!(r.admitted(), vec![(4, 0)]);
        assert_eq!(r.sections[0].winner().unwrap().candidate.section, 4);
    }
}
