//! Lock-distribution reporting (the data behind Figure 7 and the
//! per-program columns of Table 1).

use crate::dataflow::ProgramAnalysis;
use lir::Eff;
use std::fmt;
use std::ops::AddAssign;

/// Counts of inferred locks by category, as in Figure 7.
///
/// The global lock `⊤` is counted as a coarse read-write lock (it is
/// one — the coarsest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockCounts {
    pub fine_ro: usize,
    pub fine_rw: usize,
    pub coarse_ro: usize,
    pub coarse_rw: usize,
}

impl LockCounts {
    /// Total number of locks.
    pub fn total(&self) -> usize {
        self.fine_ro + self.fine_rw + self.coarse_ro + self.coarse_rw
    }
}

impl AddAssign for LockCounts {
    fn add_assign(&mut self, rhs: LockCounts) {
        self.fine_ro += rhs.fine_ro;
        self.fine_rw += rhs.fine_rw;
        self.coarse_ro += rhs.coarse_ro;
        self.coarse_rw += rhs.coarse_rw;
    }
}

impl fmt::Display for LockCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fine-ro {:3}  fine-rw {:3}  coarse-ro {:3}  coarse-rw {:3}  (total {})",
            self.fine_ro,
            self.fine_rw,
            self.coarse_ro,
            self.coarse_rw,
            self.total()
        )
    }
}

/// Runtime degradation counters from one execution, aggregated across
/// the locking runtimes (filled by the interpreter's
/// `Machine::degradation_report`; this crate only defines the shape so
/// reports travel with the analysis results).
///
/// "Degradation" covers everything on the graceful-degradation ladder:
/// STM starvation fallbacks to irrevocable mode, lock sessions poisoned
/// by unwinding workers, lock-protocol errors surfaced as timeouts or
/// detected deadlocks, and deliberately injected faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// STM: committed transactions.
    pub stm_commits: u64,
    /// STM: aborted attempts (conflicts plus injected).
    pub stm_aborts: u64,
    /// STM: transactions that escalated to irrevocable global mode.
    pub stm_fallbacks: u64,
    /// Lock sessions that unwound while holding locks.
    pub poisoned_sessions: u64,
    /// Lock modes released by unwind (drop) instead of protocol order.
    pub unwind_releases: u64,
    /// Acquisitions refused because a wait-for cycle was found.
    pub deadlocks_detected: u64,
    /// Acquisitions refused by the configured timeout.
    pub lock_timeouts: u64,
    /// Lock batches released and re-acquired because a fine-grained
    /// descriptor drifted while the session waited (the guarded
    /// structure moved between evaluation and grant). Informational —
    /// revalidation is the protocol *working*, not degrading — so it
    /// does not affect [`DegradationReport::is_clean`].
    pub lock_revalidations: u64,
    /// Faults injected by the active plan, by class.
    pub injected_panics: u64,
    pub injected_aborts: u64,
    pub injected_delays: u64,
    pub injected_stalls: u64,
    /// In-section accesses the online sentinel found unlicensed by the
    /// live held-mode set (a real protection gap — never clean).
    pub sentinel_violations: u64,
    /// Sections the sentinel's quarantine ladder demoted to the
    /// trivially sound global scheme. Informational, like
    /// [`DegradationReport::lock_revalidations`]: quarantine is the
    /// *remedy* working, while the gap itself is already counted in
    /// [`DegradationReport::sentinel_violations`].
    pub sections_quarantined: u64,
    /// Quarantined sections re-admitted to their original
    /// configuration after serving their probation of consecutive
    /// clean executions. Informational.
    pub sections_healed: u64,
}

impl DegradationReport {
    /// True when nothing degraded: no fallbacks, no poisoning, no
    /// protocol errors, no injections — the run stayed on the happy
    /// path end to end.
    pub fn is_clean(&self) -> bool {
        let DegradationReport {
            stm_commits: _,
            stm_aborts: _,
            lock_revalidations: _,
            sections_quarantined: _,
            sections_healed: _,
            stm_fallbacks,
            poisoned_sessions,
            unwind_releases,
            deadlocks_detected,
            lock_timeouts,
            injected_panics,
            injected_aborts,
            injected_delays,
            injected_stalls,
            sentinel_violations,
        } = *self;
        stm_fallbacks == 0
            && poisoned_sessions == 0
            && unwind_releases == 0
            && deadlocks_detected == 0
            && lock_timeouts == 0
            && injected_panics == 0
            && injected_aborts == 0
            && injected_delays == 0
            && injected_stalls == 0
            && sentinel_violations == 0
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stm {}c/{}a/{}f  poisoned {}  unwound {}  deadlocks {}  timeouts {}  \
             revalidated {}  injected p{}/a{}/d{}/s{}  sentinel {}v/{}q/{}h",
            self.stm_commits,
            self.stm_aborts,
            self.stm_fallbacks,
            self.poisoned_sessions,
            self.unwind_releases,
            self.deadlocks_detected,
            self.lock_timeouts,
            self.lock_revalidations,
            self.injected_panics,
            self.injected_aborts,
            self.injected_delays,
            self.injected_stalls,
            self.sentinel_violations,
            self.sections_quarantined,
            self.sections_healed
        )
    }
}

impl ProgramAnalysis {
    /// Lock counts aggregated over all atomic sections.
    pub fn lock_counts(&self) -> LockCounts {
        let mut counts = LockCounts::default();
        for sec in &self.sections {
            for lock in &sec.locks {
                match (lock.is_fine(), lock.eff) {
                    (true, Eff::Ro) => counts.fine_ro += 1,
                    (true, Eff::Rw) => counts.fine_rw += 1,
                    (false, Eff::Ro) => counts.coarse_ro += 1,
                    (false, Eff::Rw) => counts.coarse_rw += 1,
                }
            }
        }
        counts
    }

    /// Number of atomic sections analyzed.
    pub fn n_sections(&self) -> usize {
        self.sections.len()
    }

    /// Renders every section's lock set using program names — the
    /// human-readable analysis report.
    pub fn render(&self, program: &lir::Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for sec in &self.sections {
            let _ = writeln!(
                out,
                "section #{} in {} (instrs {}..{}):",
                sec.id.0,
                program.fn_name(sec.func),
                sec.enter,
                sec.exit
            );
            let mut locks = sec.locks.clone();
            locks.sort();
            for l in locks {
                let _ = writeln!(out, "  {}", program.render_lock(&l.to_spec()));
            }
        }
        out
    }
}
