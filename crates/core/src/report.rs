//! Lock-distribution reporting (the data behind Figure 7 and the
//! per-program columns of Table 1).

use crate::dataflow::ProgramAnalysis;
use lir::Eff;
use std::fmt;
use std::ops::AddAssign;

/// Counts of inferred locks by category, as in Figure 7.
///
/// The global lock `⊤` is counted as a coarse read-write lock (it is
/// one — the coarsest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockCounts {
    pub fine_ro: usize,
    pub fine_rw: usize,
    pub coarse_ro: usize,
    pub coarse_rw: usize,
}

impl LockCounts {
    /// Total number of locks.
    pub fn total(&self) -> usize {
        self.fine_ro + self.fine_rw + self.coarse_ro + self.coarse_rw
    }
}

impl AddAssign for LockCounts {
    fn add_assign(&mut self, rhs: LockCounts) {
        self.fine_ro += rhs.fine_ro;
        self.fine_rw += rhs.fine_rw;
        self.coarse_ro += rhs.coarse_ro;
        self.coarse_rw += rhs.coarse_rw;
    }
}

impl fmt::Display for LockCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fine-ro {:3}  fine-rw {:3}  coarse-ro {:3}  coarse-rw {:3}  (total {})",
            self.fine_ro,
            self.fine_rw,
            self.coarse_ro,
            self.coarse_rw,
            self.total()
        )
    }
}

impl ProgramAnalysis {
    /// Lock counts aggregated over all atomic sections.
    pub fn lock_counts(&self) -> LockCounts {
        let mut counts = LockCounts::default();
        for sec in &self.sections {
            for lock in &sec.locks {
                match (lock.is_fine(), lock.eff) {
                    (true, Eff::Ro) => counts.fine_ro += 1,
                    (true, Eff::Rw) => counts.fine_rw += 1,
                    (false, Eff::Ro) => counts.coarse_ro += 1,
                    (false, Eff::Rw) => counts.coarse_rw += 1,
                }
            }
        }
        counts
    }

    /// Number of atomic sections analyzed.
    pub fn n_sections(&self) -> usize {
        self.sections.len()
    }

    /// Renders every section's lock set using program names — the
    /// human-readable analysis report.
    pub fn render(&self, program: &lir::Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for sec in &self.sections {
            let _ = writeln!(
                out,
                "section #{} in {} (instrs {}..{}):",
                sec.id.0,
                program.fn_name(sec.func),
                sec.enter,
                sec.exit
            );
            let mut locks = sec.locks.clone();
            locks.sort();
            for l in locks {
                let _ = writeln!(out, "  {}", program.render_lock(&l.to_spec()));
            }
        }
        out
    }
}
