//! Profile-guided per-section granularity adaptation — the *policy*
//! half of the adaptive loop (DESIGN.md §5.4).
//!
//! The paper fixes one `Σ_k × Σ≡ × Σ_ε` point for the whole program;
//! §6 shows no single point wins everywhere. This module closes the
//! loop from runtime evidence back into the static analysis: given the
//! corrected per-section wait/hold/revalidation histograms from
//! [`trace::profile`], [`candidates`] proposes per-section
//! [`SchemeConfig`] overrides, and [`select`] picks the override whose
//! *replayed* cost (measured by the orchestration layer on the same
//! recorded execution) reduces total virtual-time wait.
//!
//! Everything here is a pure function of its arguments — no clocks, no
//! randomness, no thread-count dependence — so identical traces and
//! candidate sets produce byte-identical decisions on any machine, at
//! any parallelism. The replay-and-measure half lives in the root
//! crate (`src/adapt.rs`), which can see the interpreter.

use lockscheme::{ConfigMap, SchemeConfig};
use sched::convoy::ConvoyPolicy;
use sched::PolicyKind;
use trace::SectionProfile;

/// Thresholds steering candidate generation. All comparisons are pure
/// arithmetic on the profile's integer counters, so a policy value
/// fully determines the candidate set for a given profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptPolicy {
    /// Sections with fewer completed executions are left alone — too
    /// little evidence to steer on.
    pub min_entries: u64,
    /// A section is *contended* when `mean(wait) >= ratio ×
    /// max(mean(hold), 1)`: it spends much longer blocking on (and
    /// negotiating) its lock plan than holding it, so the plan itself
    /// is the cost — coarsen toward `Σ≡`/global to shrink it.
    pub coarsen_wait_hold_ratio: f64,
    /// A section is *drifting* when `mean(revalidations) >= threshold`:
    /// its fine descriptors keep moving while it waits (the TH resize
    /// pattern), so each entry re-runs the acquire protocol — a
    /// candidate for coarser locking (ROADMAP: descriptor-drift
    /// telemetry).
    pub drift_reval_mean: f64,
    /// A section is *uncontended* when `mean(wait) <= ratio ×
    /// mean(hold)`: its locks are essentially free, so a larger `k`
    /// (finer expression locks) may pay for itself.
    pub uncontended_wait_hold_ratio: f64,
    /// How much to raise `k` for uncontended fine sections.
    pub raise_k_step: usize,
    /// Upper bound on the raised `k`.
    pub max_k: usize,
    /// Convoy thresholds: sections whose estimated queue depth × hold
    /// pressure exceeds these get wake-policy candidates — the lock
    /// *plan* stands, only the wake order at release changes.
    pub convoy: ConvoyPolicy,
}

impl Default for AdaptPolicy {
    fn default() -> AdaptPolicy {
        AdaptPolicy {
            min_entries: 2,
            coarsen_wait_hold_ratio: 4.0,
            drift_reval_mean: 0.5,
            uncontended_wait_hold_ratio: 0.05,
            raise_k_step: 3,
            max_k: 9,
            convoy: ConvoyPolicy::default(),
        }
    }
}

/// What a candidate override changes relative to the section's current
/// configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Adjustment {
    /// Drop the expression component: the section's locks degrade to
    /// the coarse per-class `Σ≡` locks.
    Coarsen,
    /// Drop expression *and* points-to: the section takes the global
    /// lock.
    Globalize,
    /// Raise the expression bound to the given `k` (finer locks).
    RaiseK(usize),
    /// Pin the expression bound to the given `k` — the beam search's
    /// k-sweep around a winning [`Adjustment::RaiseK`], which may move
    /// in either direction.
    SetK(usize),
    /// Drop the dynamic `[]` pseudo-field from the section's
    /// expression locks (per-section elem-field choice): element
    /// accesses coarsen to their container's lock.
    ElemOff,
    /// Keep the lock plan, change the wake order: run the section's
    /// workload under the given contention-aware wake policy. The
    /// scheme configuration is untouched, so candidate evaluation
    /// reuses the base inference (a `SummaryStore` cache hit).
    WakePolicy(PolicyKind),
}

impl Adjustment {
    /// Stable machine-readable tag (used in the decision report).
    pub fn tag(&self) -> String {
        match self {
            Adjustment::Coarsen => "coarsen".into(),
            Adjustment::Globalize => "globalize".into(),
            Adjustment::RaiseK(k) => format!("raise-k:{k}"),
            Adjustment::SetK(k) => format!("set-k:{k}"),
            Adjustment::ElemOff => "elem-off".into(),
            Adjustment::WakePolicy(kind) => format!("wake:{}", kind.tag()),
        }
    }
}

/// Which profile signal fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trigger {
    /// Long wait relative to hold.
    Contention,
    /// Frequent acquire-time revalidation retries.
    Drift,
    /// Negligible wait: room for finer locks.
    NoContention,
    /// A waiter queue that never drains (estimated depth × hold over
    /// the convoy thresholds) — re-ordering wakes can recover wait
    /// that re-planning the locks cannot.
    Convoy,
}

impl Trigger {
    /// Stable machine-readable tag (used in the decision report).
    pub fn tag(&self) -> &'static str {
        match self {
            Trigger::Contention => "contention",
            Trigger::Drift => "drift",
            Trigger::NoContention => "no-contention",
            Trigger::Convoy => "convoy",
        }
    }
}

/// One proposed per-section override.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Candidate {
    /// Static section id the override applies to.
    pub section: u32,
    /// The overriding configuration.
    pub config: SchemeConfig,
    pub adjustment: Adjustment,
    pub trigger: Trigger,
}

impl Candidate {
    /// The candidate's full configuration map: `base` plus this one
    /// override.
    pub fn config_map(&self, base: &ConfigMap) -> ConfigMap {
        let mut m = base.clone();
        m.set_override(self.section, self.config);
        m
    }
}

/// Maps measured section profiles to candidate overrides, one
/// [`ConfigMap`] override per candidate.
///
/// Deterministic: profiles are processed in their given (section-id)
/// order and rules fire in a fixed order, so identical inputs yield an
/// identical candidate vector.
pub fn candidates(
    profiles: &[SectionProfile],
    base: &ConfigMap,
    policy: &AdaptPolicy,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for p in profiles {
        if p.entries < policy.min_entries {
            continue;
        }
        let current = base.for_section(p.section);
        let wait = p.wait.mean();
        let hold = p.hold.mean();
        let contended = wait >= policy.coarsen_wait_hold_ratio * hold.max(1.0);
        let drifting = p.revalidations.mean() >= policy.drift_reval_mean;
        let uncontended = wait <= policy.uncontended_wait_hold_ratio * hold;
        if contended || drifting {
            let trigger = if contended {
                Trigger::Contention
            } else {
                Trigger::Drift
            };
            if current.use_expr {
                out.push(Candidate {
                    section: p.section,
                    config: SchemeConfig {
                        use_expr: false,
                        ..current
                    },
                    adjustment: Adjustment::Coarsen,
                    trigger,
                });
            }
            if current.use_pts && contended {
                out.push(Candidate {
                    section: p.section,
                    config: SchemeConfig {
                        use_expr: false,
                        use_pts: false,
                        ..current
                    },
                    adjustment: Adjustment::Globalize,
                    trigger,
                });
            }
        } else if uncontended && current.use_expr && current.k < policy.max_k {
            let k = (current.k + policy.raise_k_step).min(policy.max_k);
            out.push(Candidate {
                section: p.section,
                config: SchemeConfig { k, ..current },
                adjustment: Adjustment::RaiseK(k),
                trigger: Trigger::NoContention,
            });
        }
    }
    // Convoy-flagged sections additionally get wake-policy candidates,
    // appended after all granularity proposals (fixed order keeps the
    // candidate vector deterministic). The scheme config is the
    // section's *current* one — the orchestration layer evaluates
    // these by steering the scheduler, not by re-planning locks.
    for flag in sched::convoy::detect(profiles, &policy.convoy) {
        for kind in PolicyKind::ALL {
            if kind == PolicyKind::Fifo {
                continue;
            }
            out.push(Candidate {
                section: flag.section,
                config: base.for_section(flag.section),
                adjustment: Adjustment::WakePolicy(kind),
                trigger: Trigger::Convoy,
            });
        }
    }
    out
}

/// Total cost of one (baseline or candidate) execution, summed over
/// every section profile of its trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlanCost {
    /// Σ wait ticks across all outermost section executions.
    pub total_wait: u64,
    /// Σ hold ticks.
    pub total_hold: u64,
    /// Σ revalidation retries.
    pub total_revalidations: u64,
    /// Virtual makespan of the worker phase.
    pub makespan: u64,
}

impl PlanCost {
    /// Sums the profile histograms of one trace.
    pub fn from_profiles(profiles: &[SectionProfile], makespan: u64) -> PlanCost {
        let mut c = PlanCost {
            makespan,
            ..PlanCost::default()
        };
        for p in profiles {
            c.total_wait = c.total_wait.saturating_add(p.wait.sum);
            c.total_hold = c.total_hold.saturating_add(p.hold.sum);
            c.total_revalidations = c.total_revalidations.saturating_add(p.revalidations.sum);
        }
        c
    }
}

/// Picks the winning candidate: strictly lower total replayed wait
/// than the baseline, ties broken by lower makespan, then by candidate
/// order. Returns `None` when no candidate improves on the baseline
/// (the global configuration stands).
pub fn select(baseline: PlanCost, outcomes: &[PlanCost]) -> Option<usize> {
    outcomes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.total_wait < baseline.total_wait)
        .min_by_key(|(i, c)| (c.total_wait, c.makespan, *i))
        .map(|(i, _)| i)
}

/// How (whether) one candidate's cost was obtained.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum EvalStatus {
    /// Replayed exactly; the cost is measured.
    #[default]
    Replayed,
    /// Ranked out by the trace-analytic estimator before any replay;
    /// the cost is zeroed and `est` carries the estimated total wait
    /// that ranked it.
    Pruned { est: u64 },
    /// Scheduled for replay but the recording was unusable (e.g. the
    /// candidate trace overflowed its ring); the cost is zeroed and
    /// the reason is surfaced instead of a silently bogus profile.
    Skipped { reason: String },
}

impl EvalStatus {
    /// True when the decision's cost is an exact replayed measurement.
    pub fn is_replayed(&self) -> bool {
        matches!(self, EvalStatus::Replayed)
    }

    pub(crate) fn push_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            EvalStatus::Replayed => out.push_str("\"status\":\"replayed\""),
            EvalStatus::Pruned { est } => {
                let _ = write!(out, "\"status\":\"pruned\",\"est\":{est}");
            }
            EvalStatus::Skipped { reason } => {
                let _ = write!(out, "\"status\":\"skipped\",\"note\":\"{reason}\"");
            }
        }
    }
}

/// One evaluated candidate: the proposal plus its measured replay cost
/// (zeroed when `status` says it was never replayed).
#[derive(Clone, PartialEq, Debug)]
pub struct Decision {
    pub candidate: Candidate,
    pub cost: PlanCost,
    pub status: EvalStatus,
}

/// The machine-readable outcome of one adaptation run.
#[derive(Clone, PartialEq, Debug)]
pub struct DecisionReport {
    /// Workload / run name.
    pub name: String,
    /// Execution mode of the recorded run.
    pub mode: String,
    /// Cost of the recorded baseline execution.
    pub baseline: PlanCost,
    /// Every candidate evaluated, in generation order.
    pub candidates: Vec<Decision>,
    /// Index into `candidates` of the selected override, if any.
    pub selected: Option<usize>,
}

impl DecisionReport {
    /// The selected decision, if any candidate won.
    pub fn winner(&self) -> Option<&Decision> {
        self.selected.map(|i| &self.candidates[i])
    }

    /// Canonical JSON encoding (hand-rolled — the build environment
    /// has no serde; fixed key order, no whitespace).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn push_cost(out: &mut String, c: PlanCost) {
            let _ = write!(
                out,
                "{{\"wait\":{},\"hold\":{},\"revalidations\":{},\"makespan\":{}}}",
                c.total_wait, c.total_hold, c.total_revalidations, c.makespan
            );
        }
        fn push_config(out: &mut String, c: SchemeConfig) {
            let _ = write!(
                out,
                "{{\"k\":{},\"expr\":{},\"pts\":{},\"eff\":{}}}",
                c.k, c.use_expr, c.use_pts, c.use_eff
            );
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"mode\":\"{}\",\"baseline\":",
            self.name, self.mode
        );
        push_cost(&mut out, self.baseline);
        out.push_str(",\"candidates\":[");
        for (i, d) in self.candidates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"section\":{},\"adjustment\":\"{}\",\"trigger\":\"{}\",\"config\":",
                d.candidate.section,
                d.candidate.adjustment.tag(),
                d.candidate.trigger.tag()
            );
            push_config(&mut out, d.candidate.config);
            out.push_str(",\"cost\":");
            push_cost(&mut out, d.cost);
            out.push(',');
            d.status.push_json(&mut out);
            out.push('}');
        }
        out.push_str("],\"selected\":");
        match self.selected {
            Some(i) => {
                let _ = write!(out, "{i}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// A compound candidate: several per-section scheme overrides plus at
/// most one wake policy, applied together — the beam search's unit of
/// evaluation over multi-override [`ConfigMap`]s.
#[derive(Clone, PartialEq, Debug)]
pub struct MultiCandidate {
    /// Scheme-changing members, sorted by section id, at most one per
    /// section. None is a [`Adjustment::WakePolicy`].
    pub overrides: Vec<Candidate>,
    /// The wake-policy member, if any.
    pub wake: Option<Candidate>,
}

/// A compound's effective configuration: the override set plus the
/// wake policy.
type CompoundKey = (Vec<(u32, SchemeConfig)>, Option<PolicyKind>);

impl MultiCandidate {
    /// The compound consisting of one single-override candidate.
    pub fn single(c: &Candidate) -> MultiCandidate {
        match c.adjustment {
            Adjustment::WakePolicy(_) => MultiCandidate {
                overrides: Vec::new(),
                wake: Some(*c),
            },
            _ => MultiCandidate {
                overrides: vec![*c],
                wake: None,
            },
        }
    }

    /// Every member, scheme overrides first, wake policy last.
    pub fn members(&self) -> impl Iterator<Item = &Candidate> {
        self.overrides.iter().chain(self.wake.iter())
    }

    /// Extends this compound with one more single-override candidate.
    /// Returns `None` when the extension conflicts (a second override
    /// on the same section, a second wake policy) or is a no-op
    /// relative to `base`.
    pub fn merge(&self, c: &Candidate, base: &ConfigMap) -> Option<MultiCandidate> {
        let mut next = self.clone();
        if let Adjustment::WakePolicy(_) = c.adjustment {
            if next.wake.is_some() {
                return None;
            }
            next.wake = Some(*c);
            return Some(next);
        }
        if c.config == base.for_section(c.section) {
            return None;
        }
        match next
            .overrides
            .binary_search_by_key(&c.section, |o| o.section)
        {
            Ok(_) => None,
            Err(i) => {
                next.overrides.insert(i, *c);
                Some(next)
            }
        }
    }

    /// The compound's full configuration map: `base` plus every
    /// override.
    pub fn config_map(&self, base: &ConfigMap) -> ConfigMap {
        let mut m = base.clone();
        for o in &self.overrides {
            m.set_override(o.section, o.config);
        }
        m
    }

    /// The compound's wake policy, if it carries one.
    pub fn wake_policy(&self) -> Option<PolicyKind> {
        self.wake.as_ref().and_then(|c| match c.adjustment {
            Adjustment::WakePolicy(kind) => Some(kind),
            _ => None,
        })
    }

    /// Identity for deduplication: the effective overrides plus the
    /// wake policy — two compounds assembled along different paths but
    /// naming the same configuration compare equal.
    fn key(&self) -> CompoundKey {
        (
            self.overrides
                .iter()
                .map(|o| (o.section, o.config))
                .collect(),
            self.wake_policy(),
        )
    }

    /// Stable machine-readable tag, members joined by `+`:
    /// `s3:coarsen+s7:set-k:4+wake:seh`.
    pub fn tag(&self) -> String {
        self.members()
            .map(|c| match c.adjustment {
                Adjustment::WakePolicy(_) => c.adjustment.tag(),
                _ => format!("s{}:{}", c.section, c.adjustment.tag()),
            })
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Shape of the beam search over compound candidates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BeamPolicy {
    /// Beam width: improving candidates carried into the next round.
    pub width: usize,
    /// Extension rounds after the single-override seeds.
    pub rounds: usize,
    /// Upper bound for the k-sweep.
    pub max_k: usize,
}

impl Default for BeamPolicy {
    fn default() -> BeamPolicy {
        BeamPolicy {
            width: 3,
            rounds: 2,
            max_k: 9,
        }
    }
}

/// Generates the next round of compound candidates: every beam member
/// extended by every compatible seed, plus the structural sweeps the
/// ROADMAP asks for — a k-sweep around each expression-bound override
/// and a per-section elem-field drop. Deterministic: members and seeds
/// are processed in their given order and duplicates (by effective
/// configuration) are emitted once, first occurrence wins.
pub fn extend_beam(
    beam: &[MultiCandidate],
    seeds: &[Candidate],
    base: &ConfigMap,
    max_k: usize,
) -> Vec<MultiCandidate> {
    let mut seen: Vec<CompoundKey> = beam.iter().map(MultiCandidate::key).collect();
    let mut out = Vec::new();
    let mut push = |m: MultiCandidate, out: &mut Vec<MultiCandidate>| {
        let key = m.key();
        if !seen.contains(&key) {
            seen.push(key);
            out.push(m);
        }
    };
    for member in beam {
        for seed in seeds {
            if let Some(merged) = member.merge(seed, base) {
                push(merged, &mut out);
            }
        }
        // k-sweep: move each expression bound one step either way.
        for (i, o) in member.overrides.iter().enumerate() {
            let k = match o.adjustment {
                Adjustment::RaiseK(k) | Adjustment::SetK(k) => k,
                _ => continue,
            };
            for k2 in [k.saturating_sub(1), k + 1] {
                if k2 == k || k2 > max_k || k2 == base.for_section(o.section).k {
                    continue;
                }
                let mut swept = member.clone();
                swept.overrides[i] = Candidate {
                    config: SchemeConfig { k: k2, ..o.config },
                    adjustment: Adjustment::SetK(k2),
                    ..*o
                };
                push(swept, &mut out);
            }
        }
        // Per-section elem-field choice: drop the `[]` pseudo-field
        // from overrides that still use expression locks.
        for (i, o) in member.overrides.iter().enumerate() {
            if !o.config.use_expr || o.config.elem_field.is_none() {
                continue;
            }
            let mut dropped = member.clone();
            dropped.overrides[i] = Candidate {
                config: SchemeConfig {
                    elem_field: None,
                    ..o.config
                },
                adjustment: Adjustment::ElemOff,
                ..*o
            };
            push(dropped, &mut out);
        }
    }
    out
}

/// One evaluated compound candidate.
#[derive(Clone, PartialEq, Debug)]
pub struct MultiDecision {
    pub candidate: MultiCandidate,
    pub cost: PlanCost,
    pub status: EvalStatus,
    /// Beam round the compound was generated in (1-based; round 0 is
    /// the single-override evaluation the seeds came from).
    pub round: usize,
}

/// The machine-readable outcome of one beam search over compound
/// candidates, appended to an adaptation run when beam search is on.
#[derive(Clone, PartialEq, Debug)]
pub struct BeamReport {
    /// The policy the search ran under.
    pub width: usize,
    pub rounds: usize,
    /// Cost of the recorded baseline execution.
    pub baseline: PlanCost,
    /// Every compound evaluated, in generation order across rounds.
    pub evaluated: Vec<MultiDecision>,
    /// Index into `evaluated` of the best compound, if one beat every
    /// single-override candidate.
    pub selected: Option<usize>,
}

impl BeamReport {
    /// The selected compound decision, if any.
    pub fn winner(&self) -> Option<&MultiDecision> {
        self.selected.map(|i| &self.evaluated[i])
    }

    /// Canonical JSON encoding (fixed key order, no whitespace).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"width\":{},\"rounds\":{},\"baseline\":{{\"wait\":{},\"hold\":{},\"revalidations\":{},\"makespan\":{}}},\"evaluated\":[",
            self.width,
            self.rounds,
            self.baseline.total_wait,
            self.baseline.total_hold,
            self.baseline.total_revalidations,
            self.baseline.makespan
        );
        for (i, d) in self.evaluated.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tag\":\"{}\",\"round\":{},\"cost\":{{\"wait\":{},\"hold\":{},\"revalidations\":{},\"makespan\":{}}},",
                d.candidate.tag(),
                d.round,
                d.cost.total_wait,
                d.cost.total_hold,
                d.cost.total_revalidations,
                d.cost.makespan
            );
            d.status.push_json(&mut out);
            out.push('}');
        }
        out.push_str("],\"selected\":");
        match self.selected {
            Some(i) => {
                let _ = write!(out, "{i}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Histogram;

    fn hist(samples: &[u64]) -> Histogram {
        let mut h = Histogram::default();
        for &s in samples {
            h.add(s);
        }
        h
    }

    fn prof(section: u32, wait: &[u64], hold: &[u64], reval: &[u64]) -> SectionProfile {
        SectionProfile {
            section,
            entries: wait.len() as u64,
            aborts: 0,
            wait: hist(wait),
            hold: hist(hold),
            revalidations: hist(reval),
        }
    }

    fn base() -> ConfigMap {
        ConfigMap::uniform(SchemeConfig::full(3, None))
    }

    #[test]
    fn contended_sections_get_coarsen_and_globalize_candidates() {
        // Mean wait 500 over mean hold 15: contended (ratio 33) *and*
        // convoy-flagged (depth 33, pressure 500), so the granularity
        // candidates are followed by the wake-policy ones.
        let profiles = vec![prof(1, &[400, 600], &[10, 20], &[0, 0])];
        let cs = candidates(&profiles, &base(), &AdaptPolicy::default());
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0].adjustment, Adjustment::Coarsen);
        assert!(!cs[0].config.use_expr && cs[0].config.use_pts);
        assert_eq!(cs[1].adjustment, Adjustment::Globalize);
        assert!(!cs[1].config.use_pts);
        assert_eq!(cs[0].trigger, Trigger::Contention);
        assert_eq!(
            cs[2].adjustment,
            Adjustment::WakePolicy(PolicyKind::ShortestExpectedHold)
        );
        assert_eq!(
            cs[3].adjustment,
            Adjustment::WakePolicy(PolicyKind::ReaderBatch)
        );
        assert!(cs[2..].iter().all(|c| c.trigger == Trigger::Convoy));
        // Wake candidates leave the lock plan untouched.
        assert_eq!(cs[2].config, base().for_section(1));
        assert_eq!(cs[2].adjustment.tag(), "wake:seh");
        assert_eq!(cs[2].trigger.tag(), "convoy");
    }

    #[test]
    fn convoy_without_contention_gets_only_wake_candidates() {
        // Mean wait 600 over mean hold 300: ratio 2 (< 4, not
        // contended), but depth 2 and pressure 600 flag a convoy.
        let profiles = vec![prof(5, &[500, 700], &[290, 310], &[0, 0])];
        let cs = candidates(&profiles, &base(), &AdaptPolicy::default());
        assert_eq!(cs.len(), 2);
        assert!(cs
            .iter()
            .all(|c| matches!(c.adjustment, Adjustment::WakePolicy(_))));
        assert!(cs.iter().all(|c| c.trigger == Trigger::Convoy));
        assert!(cs.iter().all(|c| c.section == 5));
    }

    #[test]
    fn drifting_sections_coarsen_without_globalizing() {
        let profiles = vec![prof(2, &[50, 60], &[100, 120], &[2, 3])];
        let cs = candidates(&profiles, &base(), &AdaptPolicy::default());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].adjustment, Adjustment::Coarsen);
        assert_eq!(cs[0].trigger, Trigger::Drift);
    }

    #[test]
    fn uncontended_fine_sections_raise_k() {
        let profiles = vec![prof(3, &[0, 1], &[100, 100], &[0, 0])];
        let cs = candidates(&profiles, &base(), &AdaptPolicy::default());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].adjustment, Adjustment::RaiseK(6));
        assert_eq!(cs[0].config.k, 6);
        assert_eq!(cs[0].trigger, Trigger::NoContention);
    }

    #[test]
    fn thin_evidence_is_ignored() {
        let profiles = vec![prof(1, &[1000], &[1], &[0])];
        assert!(candidates(&profiles, &base(), &AdaptPolicy::default()).is_empty());
    }

    #[test]
    fn select_requires_strict_wait_improvement() {
        let b = PlanCost {
            total_wait: 100,
            makespan: 50,
            ..PlanCost::default()
        };
        let worse = PlanCost {
            total_wait: 120,
            ..PlanCost::default()
        };
        let tie = PlanCost {
            total_wait: 100,
            ..PlanCost::default()
        };
        let better = PlanCost {
            total_wait: 80,
            makespan: 60,
            ..PlanCost::default()
        };
        let best = PlanCost {
            total_wait: 80,
            makespan: 55,
            ..PlanCost::default()
        };
        assert_eq!(select(b, &[worse, tie]), None);
        assert_eq!(select(b, &[worse, better, best]), Some(2));
        assert_eq!(select(b, &[best, better]), Some(0));
    }

    #[test]
    fn report_json_is_canonical() {
        let c = Candidate {
            section: 4,
            config: SchemeConfig::full(9, None),
            adjustment: Adjustment::RaiseK(9),
            trigger: Trigger::NoContention,
        };
        let r = DecisionReport {
            name: "list".into(),
            mode: "MultiGrain".into(),
            baseline: PlanCost {
                total_wait: 10,
                total_hold: 20,
                total_revalidations: 0,
                makespan: 99,
            },
            candidates: vec![Decision {
                candidate: c,
                cost: PlanCost::default(),
                status: EvalStatus::Replayed,
            }],
            selected: Some(0),
        };
        let j = r.to_json();
        assert_eq!(
            j,
            "{\"name\":\"list\",\"mode\":\"MultiGrain\",\
             \"baseline\":{\"wait\":10,\"hold\":20,\"revalidations\":0,\"makespan\":99},\
             \"candidates\":[{\"section\":4,\"adjustment\":\"raise-k:9\",\
             \"trigger\":\"no-contention\",\
             \"config\":{\"k\":9,\"expr\":true,\"pts\":true,\"eff\":true},\
             \"cost\":{\"wait\":0,\"hold\":0,\"revalidations\":0,\"makespan\":0},\
             \"status\":\"replayed\"}],\
             \"selected\":0}"
        );
        assert_eq!(r.to_json(), j);
    }

    #[test]
    fn multi_candidates_merge_canonically_and_tag_stably() {
        let base = base();
        let coarsen = Candidate {
            section: 7,
            config: SchemeConfig {
                use_expr: false,
                ..SchemeConfig::full(3, None)
            },
            adjustment: Adjustment::Coarsen,
            trigger: Trigger::Contention,
        };
        let raise = Candidate {
            section: 2,
            config: SchemeConfig::full(6, None),
            adjustment: Adjustment::RaiseK(6),
            trigger: Trigger::NoContention,
        };
        let wake = Candidate {
            section: 7,
            config: SchemeConfig::full(3, None),
            adjustment: Adjustment::WakePolicy(PolicyKind::ShortestExpectedHold),
            trigger: Trigger::Convoy,
        };
        let m = MultiCandidate::single(&coarsen)
            .merge(&raise, &base)
            .unwrap()
            .merge(&wake, &base)
            .unwrap();
        // Overrides stay sorted by section regardless of merge order.
        assert_eq!(m.overrides[0].section, 2);
        assert_eq!(m.overrides[1].section, 7);
        assert_eq!(m.tag(), "s2:raise-k:6+s7:coarsen+wake:seh");
        assert_eq!(m.wake_policy(), Some(PolicyKind::ShortestExpectedHold));
        let map = m.config_map(&base);
        assert_eq!(map.overrides().len(), 2);
        // A second override on an occupied section, or a second wake
        // policy, refuses to merge.
        assert!(m.merge(&coarsen, &base).is_none());
        assert!(m.merge(&wake, &base).is_none());
        // A no-op override (config equal to base) refuses too.
        let noop = Candidate {
            config: base.for_section(9),
            section: 9,
            adjustment: Adjustment::Coarsen,
            trigger: Trigger::Contention,
        };
        assert!(MultiCandidate::single(&coarsen)
            .merge(&noop, &base)
            .is_none());
    }

    #[test]
    fn extend_beam_sweeps_k_and_elem_and_dedupes() {
        let elem = lir::compile("global a; fn f() { atomic { a[0] = 1; } }")
            .unwrap()
            .elem_field_opt();
        assert!(elem.is_some(), "program with [] has an elem field");
        let base = ConfigMap::uniform(SchemeConfig::full(3, elem));
        let raise = Candidate {
            section: 1,
            config: SchemeConfig::full(6, elem),
            adjustment: Adjustment::RaiseK(6),
            trigger: Trigger::NoContention,
        };
        let coarsen = Candidate {
            section: 4,
            config: SchemeConfig {
                use_expr: false,
                ..SchemeConfig::full(3, elem)
            },
            adjustment: Adjustment::Coarsen,
            trigger: Trigger::Contention,
        };
        let beam = vec![MultiCandidate::single(&raise)];
        let seeds = vec![raise, coarsen];
        let exts = extend_beam(&beam, &seeds, &base, 9);
        let tags: Vec<String> = exts.iter().map(MultiCandidate::tag).collect();
        // The merge with itself is rejected; the coarsen seed merges;
        // the k-sweep emits 5 and 7; elem-off emits once.
        assert!(
            tags.contains(&"s1:raise-k:6+s4:coarsen".to_string()),
            "{tags:?}"
        );
        assert!(tags.contains(&"s1:set-k:5".to_string()), "{tags:?}");
        assert!(tags.contains(&"s1:set-k:7".to_string()), "{tags:?}");
        assert!(tags.contains(&"s1:elem-off".to_string()), "{tags:?}");
        // Deterministic and duplicate-free.
        let again = extend_beam(&beam, &seeds, &base, 9);
        assert_eq!(exts, again);
        let mut dedup = tags.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len(), "duplicates emitted: {tags:?}");
    }
}
