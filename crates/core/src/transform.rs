//! The program transformation (§4.1): each atomic section is replaced
//! by `acquireAll(N)` at its entry and `releaseAll` at its end.

use crate::dataflow::ProgramAnalysis;
use lir::{Instr, Program};

/// Produces the transformed program: `EnterAtomic` markers become
/// [`Instr::AcquireAll`] with the section's inferred lock specs,
/// `ExitAtomic` markers become [`Instr::ReleaseAll`].
///
/// The lock list is sorted, giving every thread the same deterministic
/// sibling order — one of the preconditions of the deadlock-free
/// multi-grain protocol (§5.1).
///
/// # Panics
///
/// Panics if `analysis` was produced from a different program (marker
/// instructions not found where expected).
pub fn transform(program: &Program, analysis: &ProgramAnalysis) -> Program {
    let mut out = program.clone();
    for sec in &analysis.sections {
        let func = out.func_mut(sec.func);
        let mut locks = sec.locks.clone();
        locks.sort();
        let specs = locks.iter().map(|l| l.to_spec()).collect();
        let enter = &mut func.body[sec.enter as usize];
        assert!(
            matches!(enter, Instr::EnterAtomic(s) if *s == sec.id),
            "analysis does not match program"
        );
        *enter = Instr::AcquireAll(sec.id, specs);
        let exit = &mut func.body[sec.exit as usize];
        assert!(
            matches!(exit, Instr::ExitAtomic(s) if *s == sec.id),
            "analysis does not match program"
        );
        *exit = Instr::ReleaseAll(sec.id);
    }
    out
}
