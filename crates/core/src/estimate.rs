//! Trace-analytic what-if cost estimation (DESIGN.md §5.7).
//!
//! Replaying a candidate configuration measures its cost *exactly* but
//! pays a full deterministic re-execution. This module scores a
//! candidate **analytically from the baseline trace alone** — a pure
//! integer function of the recorded wait/hold/revalidation profiles —
//! so the evaluation harness can rank candidates first and replay only
//! the most promising `top_k` (trace-analytic pruning).
//!
//! The model is deliberately coarse; it only has to *rank*, not
//! predict. Per adjustment, the recoverable share of the target
//! section's recorded wait `W` (with `R` total revalidation retries):
//!
//! * **Globalize** — the plan collapses to one lock: no multi-lock
//!   negotiation, no descriptor drift, so most of the blocked time is
//!   recoverable: `3W/4`.
//! * **Coarsen** — the expression locks go, the points-to locks stay:
//!   `W/2`, plus a drift bonus `min(W/4, 100·R)` because every retry
//!   re-ran the acquire protocol the coarse plan does not have.
//! * **RaiseK / SetK / ElemOff** — finer (or re-shaped) expression
//!   locks shave residual interference on an *uncontended* section:
//!   `W/8`.
//! * **WakePolicy** — wake candidates only exist for convoy-flagged
//!   sections, where the queue never drains and most recorded wait is
//!   queueing behind an unfortunate wake order: `W/2`.
//!
//! The model ranks candidates *within* one adjustment family reliably
//! (same formula, ordered by the target section's recorded wait) but
//! across families the constant factors are guesses. [`prune`]
//! therefore carries a **diversity guard**: besides the overall
//! `top_k`, every family's best-estimated candidates (including exact
//! ties — the model cannot distinguish the two wake policies of one
//! section) are always kept, so a family the constants under-rate
//! still gets its strongest member replayed.
//!
//! The estimate is **advisory**: pruning with it never changes a
//! replayed cost, and `prune: None` keeps exact behavior. The
//! `eval-bench` gate asserts the pruned set always contains the
//! replay-selected winner on every bench workload, which is the
//! empirical soundness statement this model is held to.
//!
//! Everything is integer arithmetic on `u64` counters — no floats, no
//! clocks — so identical profiles produce identical scores on any
//! machine, at any parallelism.

use crate::adapt::{Adjustment, Candidate, MultiCandidate, PlanCost};
use trace::SectionProfile;

/// Recorded wait/revalidation totals of one section, the estimator's
/// entire view of it.
fn section_totals(profiles: &[SectionProfile], section: u32) -> (u64, u64) {
    profiles
        .iter()
        .find(|p| p.section == section)
        .map(|p| (p.wait.sum, p.revalidations.sum))
        .unwrap_or((0, 0))
}

/// Estimated wait ticks `adjustment` recovers on a section that
/// recorded `wait` total wait and `reval` revalidation retries.
fn recoverable(adjustment: Adjustment, wait: u64, reval: u64) -> u64 {
    let r = match adjustment {
        Adjustment::Globalize => wait / 4 * 3,
        Adjustment::Coarsen => wait / 2 + (wait / 4).min(reval.saturating_mul(100)),
        Adjustment::RaiseK(_) | Adjustment::SetK(_) | Adjustment::ElemOff => wait / 8,
        Adjustment::WakePolicy(_) => wait / 2,
    };
    r.min(wait)
}

/// Estimated total wait after applying `c`, per the model above: the
/// baseline's total wait minus the target section's recoverable share.
pub fn estimate(c: &Candidate, profiles: &[SectionProfile], base: PlanCost) -> u64 {
    let (wait, reval) = section_totals(profiles, c.section);
    base.total_wait
        .saturating_sub(recoverable(c.adjustment, wait, reval))
}

/// Estimated total wait after applying a compound candidate: the
/// per-member recoverable shares summed, each capped at its own
/// section's recorded wait (members touch distinct sections by
/// construction, so the caps are independent).
pub fn estimate_multi(m: &MultiCandidate, profiles: &[SectionProfile], base: PlanCost) -> u64 {
    let mut recovered = 0u64;
    for c in m.members() {
        let (wait, reval) = section_totals(profiles, c.section);
        recovered = recovered.saturating_add(recoverable(c.adjustment, wait, reval));
    }
    base.total_wait.saturating_sub(recovered)
}

/// The candidate indices worth replaying: the `top_k` lowest estimated
/// post-change total waits (ties broken by candidate order), plus the
/// diversity guard — every adjustment family's best-estimated
/// candidates, including exact ties. Returned **in canonical candidate
/// order** so the evaluation merge stays byte-identical at every eval
/// thread count. `top_k >= cands.len()` keeps everything (pruning
/// off).
pub fn prune(
    cands: &[Candidate],
    profiles: &[SectionProfile],
    base: PlanCost,
    top_k: usize,
) -> Vec<usize> {
    let ests: Vec<u64> = cands.iter().map(|c| estimate(c, profiles, base)).collect();
    let mut ranked: Vec<(u64, usize)> = ests.iter().copied().zip(0..).collect();
    ranked.sort_unstable();
    ranked.truncate(top_k);
    let mut keep: Vec<usize> = ranked.into_iter().map(|(_, i)| i).collect();
    // Diversity guard: the constants comparing families are guesses,
    // so each family's strongest members always get replayed.
    let family = |a: &Adjustment| std::mem::discriminant(a);
    let mut best: Vec<(std::mem::Discriminant<Adjustment>, u64)> = Vec::new();
    for (c, &e) in cands.iter().zip(&ests) {
        let f = family(&c.adjustment);
        match best.iter_mut().find(|(bf, _)| *bf == f) {
            Some((_, be)) => *be = (*be).min(e),
            None => best.push((f, e)),
        }
    }
    for (i, (c, &e)) in cands.iter().zip(&ests).enumerate() {
        let f = family(&c.adjustment);
        if best.iter().any(|&(bf, be)| bf == f && be == e) && !keep.contains(&i) {
            keep.push(i);
        }
    }
    keep.sort_unstable();
    keep
}

/// [`prune`] for compound candidates (the beam rounds).
pub fn prune_multi(
    cands: &[MultiCandidate],
    profiles: &[SectionProfile],
    base: PlanCost,
    top_k: usize,
) -> Vec<usize> {
    let mut ranked: Vec<(u64, usize)> = cands
        .iter()
        .enumerate()
        .map(|(i, m)| (estimate_multi(m, profiles, base), i))
        .collect();
    ranked.sort_unstable();
    ranked.truncate(top_k);
    let mut keep: Vec<usize> = ranked.into_iter().map(|(_, i)| i).collect();
    keep.sort_unstable();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockscheme::{ConfigMap, SchemeConfig};
    use trace::Histogram;

    fn hist(samples: &[u64]) -> Histogram {
        let mut h = Histogram::default();
        for &s in samples {
            h.add(s);
        }
        h
    }

    fn prof(section: u32, wait: &[u64], reval: &[u64]) -> SectionProfile {
        SectionProfile {
            section,
            entries: wait.len() as u64,
            aborts: 0,
            wait: hist(wait),
            hold: hist(&[10; 4][..wait.len().min(4)]),
            revalidations: hist(reval),
        }
    }

    fn cand(section: u32, adjustment: Adjustment) -> Candidate {
        Candidate {
            section,
            config: SchemeConfig::full(3, None),
            adjustment,
            trigger: crate::adapt::Trigger::Contention,
        }
    }

    #[test]
    fn globalize_recovers_more_than_raise_k() {
        let profiles = vec![prof(1, &[400, 400], &[0, 0])];
        let base = PlanCost {
            total_wait: 800,
            ..PlanCost::default()
        };
        let g = estimate(&cand(1, Adjustment::Globalize), &profiles, base);
        let r = estimate(&cand(1, Adjustment::RaiseK(6)), &profiles, base);
        assert!(g < r, "globalize {g} must rank ahead of raise-k {r}");
        assert_eq!(g, 800 - 600);
        assert_eq!(r, 800 - 100);
    }

    #[test]
    fn drift_bonus_prefers_coarsening_reval_heavy_sections() {
        let profiles = vec![prof(1, &[100, 100], &[0, 0]), prof(2, &[100, 100], &[3, 4])];
        let base = PlanCost {
            total_wait: 400,
            ..PlanCost::default()
        };
        let calm = estimate(&cand(1, Adjustment::Coarsen), &profiles, base);
        let drifty = estimate(&cand(2, Adjustment::Coarsen), &profiles, base);
        assert!(drifty < calm, "{drifty} !< {calm}");
    }

    #[test]
    fn recoverable_never_exceeds_the_section_wait() {
        // A huge drift bonus cannot fabricate more recovery than the
        // section ever waited.
        let profiles = vec![prof(1, &[8], &[1000])];
        let base = PlanCost {
            total_wait: 1000,
            ..PlanCost::default()
        };
        let e = estimate(&cand(1, Adjustment::Coarsen), &profiles, base);
        assert!(e >= 1000 - 8, "recovered more than the section waited");
    }

    #[test]
    fn unknown_sections_estimate_as_no_change() {
        let base = PlanCost {
            total_wait: 500,
            ..PlanCost::default()
        };
        assert_eq!(estimate(&cand(9, Adjustment::Globalize), &[], base), 500);
    }

    #[test]
    fn prune_keeps_top_k_in_canonical_order() {
        let profiles = vec![
            prof(1, &[10, 10], &[0, 0]),
            prof(2, &[500, 500], &[0, 0]),
            prof(3, &[200, 200], &[0, 0]),
        ];
        let base = PlanCost {
            total_wait: 1420,
            ..PlanCost::default()
        };
        let cands = vec![
            cand(1, Adjustment::RaiseK(6)),
            cand(2, Adjustment::Globalize),
            cand(3, Adjustment::Coarsen),
            cand(2, Adjustment::Coarsen),
        ];
        let keep = prune(&cands, &profiles, base, 2);
        // Section 2's candidates recover the most (top-2 = 1 and 3);
        // the diversity guard keeps the raise-k family's only member
        // too. Candidate 2 — a coarsen beaten by candidate 3 within
        // its own family — is the one pruned. Indices stay sorted.
        assert_eq!(keep, vec![0, 1, 3]);
        // top_k >= len keeps everything.
        assert_eq!(prune(&cands, &profiles, base, 10), vec![0, 1, 2, 3]);
        // The guard keeps exact ties within a family: two wake
        // policies on the same section are indistinguishable to the
        // model, so both survive a top-1 prune.
        let wakes = vec![
            cand(
                2,
                Adjustment::WakePolicy(sched::PolicyKind::ShortestExpectedHold),
            ),
            cand(2, Adjustment::WakePolicy(sched::PolicyKind::ReaderBatch)),
            cand(
                3,
                Adjustment::WakePolicy(sched::PolicyKind::ShortestExpectedHold),
            ),
        ];
        assert_eq!(prune(&wakes, &profiles, base, 1), vec![0, 1]);
    }

    #[test]
    fn multi_estimates_sum_member_recoveries() {
        let profiles = vec![prof(1, &[400, 400], &[0, 0]), prof(2, &[100, 100], &[0, 0])];
        let base = PlanCost {
            total_wait: 1000,
            ..PlanCost::default()
        };
        let base_map = ConfigMap::uniform(SchemeConfig::full(3, None));
        let mut a = cand(1, Adjustment::Globalize);
        a.config.use_pts = false;
        a.config.use_expr = false;
        let mut b = cand(2, Adjustment::Coarsen);
        b.config.use_expr = false;
        let m = MultiCandidate::single(&a)
            .merge(&b, &base_map)
            .expect("distinct sections merge");
        let e = estimate_multi(&m, &profiles, base);
        assert_eq!(e, 1000 - 600 - 100);
        assert!(e < estimate(&a, &profiles, base));
    }
}
