//! # lockinfer — inferring locks for atomic sections
//!
//! The core contribution of *Inferring Locks for Atomic Sections*
//! (Cherem, Chilimbi, Gulwani; PLDI 2008): a backward interprocedural
//! dataflow analysis that, for every `atomic { .. }` section, computes a
//! set of locks — expressible at the section's entry point — protecting
//! every shared location the section may access, and a transformation
//! replacing the section markers with `acquireAll(N)` / `releaseAll`.
//!
//! The analysis is instantiated (as in the paper's implementation) with
//! the product scheme `Σ_k × Σ≡ × Σ_ε`: k-limited expression locks ×
//! Steensgaard points-to locks × read/write effects. See the
//! `lockscheme` crate for the scheme formalism and the `mglock` crate
//! for the runtime that honors the inferred multi-granularity locks.
//!
//! ## Pipeline
//!
//! ```
//! use lockscheme::SchemeConfig;
//!
//! let program = lir::compile(r#"
//!     struct list { head; }
//!     fn push(l, e) {
//!         atomic { *e = l->head; l->head = e; }
//!     }
//! "#)?;
//! let pt = pointsto::PointsTo::analyze(&program);
//! let cfg = SchemeConfig::full(3, program.elem_field_opt());
//! let analysis = lockinfer::analyze_program(&program, &pt, cfg);
//! let transformed = lockinfer::transform(&program, &analysis);
//! assert!(transformed.to_string().contains("acquireAll"));
//! # Ok::<(), lir::lower::FrontendError>(())
//! ```

pub mod adapt;
pub mod bits;
pub mod dataflow;
pub mod estimate;
pub mod library;
pub mod reference;
pub mod reinfer;
pub mod report;
pub mod transfer;
pub mod transform;

pub use adapt::{
    candidates, extend_beam, select, AdaptPolicy, BeamPolicy, BeamReport, Candidate, Decision,
    DecisionReport, EvalStatus, MultiCandidate, MultiDecision, PlanCost,
};
pub use dataflow::{
    analyze_program, analyze_program_with_configs, analyze_program_with_opts, AnalysisStats,
    ProgramAnalysis, SectionResult, SummaryStore,
};
pub use reference::{analyze_program_reference, analyze_program_reference_with_configs};
pub use reinfer::{
    admit, alias_merge_collapse, diagnose, Diagnosis, Repair, RepairCandidate, RepairDecision,
    RepairOutcome, RepairReport, SectionReport, Witness,
};
pub use report::{DegradationReport, LockCounts};
pub use transform::transform;

use lockscheme::SchemeConfig;

/// One-call convenience: parse, analyze with the full `Σ_k × Σ≡ × Σ_ε`
/// scheme, and transform.
///
/// # Errors
///
/// Returns frontend errors from parsing/lowering.
pub fn compile_with_locks(
    src: &str,
    k: usize,
) -> Result<(lir::Program, ProgramAnalysis, lir::Program), lir::lower::FrontendError> {
    let program = lir::compile(src)?;
    let pt = pointsto::PointsTo::analyze(&program);
    let cfg = SchemeConfig::full(k, program.elem_field_opt());
    let analysis = analyze_program(&program, &pt, cfg);
    let transformed = transform(&program, &analysis);
    Ok((program, analysis, transformed))
}
