//! The multi-grain lock runtime: descriptor table, hierarchical
//! acquisition protocol, and per-thread sessions (§5.2).
//!
//! The lock structure is the tree the instantiated scheme induces:
//!
//! ```text
//! ⊤ (root)
//! ├── P0 (points-to partition)      ← coarse locks
//! │   ├── cell 0x12  ─ fine cell locks
//! │   └── array@0x40 ─ fine element-family locks
//! ├── P1
//! │   └── …
//! ```
//!
//! `acquire_all` turns the pending descriptor list into per-node modes
//! (combining a node's own mode with the intention modes required by its
//! descendants), then acquires the nodes top-down in one global order —
//! root, partitions ascending, fine nodes by (partition, address). All
//! threads use the same order, locks are two-phase (held to
//! `release_all`), so the protocol is deadlock free.

use crate::modelock::ModeLock;
use crate::modes::Mode;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Effect requested by a descriptor: read-only maps to shared modes,
/// read-write to exclusive ones. (Mirror of `lir::Eff`, kept local so
/// the runtime crate has no compiler dependencies.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Access {
    Read,
    Write,
}

impl Access {
    fn own_mode(self) -> Mode {
        match self {
            Access::Read => Mode::S,
            Access::Write => Mode::X,
        }
    }
}

/// Address of a fine-grain lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FineAddr {
    /// A single heap cell.
    Cell(u64),
    /// Every element of the array allocated at the given base (locks
    /// whose expression ends in the dynamic `[]` offset).
    Range(u64),
}

/// A lock descriptor (§5.2): enough of the lock structure for the
/// library to find the path from the root — the points-to partition
/// number, the optional fine address, and the access effect.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Descriptor {
    /// The global lock `⊤`.
    Global { access: Access },
    /// A coarse partition lock `(⊤, P)`.
    Coarse { pts: u32, access: Access },
    /// A fine lock `(e, P)` whose expression evaluated to `addr`.
    Fine { pts: u32, addr: FineAddr, access: Access },
}

/// A node in the lock tree, in the global acquisition order: root
/// first, then partitions, then fine nodes grouped by partition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
enum NodeKey {
    Root,
    Pts(u32),
    Fine(u32, FineAddr),
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Default)]
pub struct Stats {
    /// `acquire_all` batches that actually acquired (nesting level 0).
    pub batches: AtomicU64,
    /// Individual node acquisitions.
    pub node_acquisitions: AtomicU64,
}

/// The shared lock-table runtime. Clone the [`Arc`] into every thread
/// and create one [`Session`] per thread.
pub struct Runtime {
    shards: Vec<Mutex<HashMap<NodeKey, Arc<ModeLock>>>>,
    stats: Stats,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime").field("stats", &self.stats).finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

const N_SHARDS: usize = 64;

impl Runtime {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Runtime {
            shards: (0..N_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            stats: Stats::default(),
        }
    }

    /// Acquisition statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    fn node(&self, key: NodeKey) -> Arc<ModeLock> {
        let shard = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            key.hash(&mut h);
            (h.finish() as usize) % N_SHARDS
        };
        let mut map = self.shards[shard].lock();
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(ModeLock::new())))
    }
}

/// Outcome of one [`Session::acquire_all_step`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepResult {
    /// Every pending lock is held; the section is entered.
    Done,
    /// The next node in the acquisition order is currently incompatible;
    /// call again after some lock is released. Nodes acquired so far
    /// stay held — the global order makes that deadlock-free.
    WouldBlock,
}

/// Per-thread session: pending descriptors, held nodes, and the nesting
/// level of §5.3.
pub struct Session {
    rt: Arc<Runtime>,
    pending: Vec<Descriptor>,
    held: Vec<(Arc<ModeLock>, Mode)>,
    nlevel: u32,
    /// In-progress step-wise acquisition: remaining (node, mode) pairs
    /// in *descending* order (popped from the back).
    cursor: Vec<(NodeKey, Mode)>,
    /// Whether a step-wise acquisition is in flight.
    stepping: bool,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("pending", &self.pending.len())
            .field("held", &self.held.len())
            .field("nlevel", &self.nlevel)
            .finish()
    }
}

impl Session {
    /// Creates a session bound to a shared runtime.
    pub fn new(rt: Arc<Runtime>) -> Self {
        Session {
            rt,
            pending: Vec::new(),
            held: Vec::new(),
            nlevel: 0,
            cursor: Vec::new(),
            stepping: false,
        }
    }

    /// Computes the per-node modes for the pending descriptors, in the
    /// global acquisition order.
    fn plan(&mut self) -> Vec<(NodeKey, Mode)> {
        let mut modes: BTreeMap<NodeKey, Mode> = BTreeMap::new();
        let want = |k: NodeKey, m: Mode, modes: &mut BTreeMap<NodeKey, Mode>| {
            modes.entry(k).and_modify(|cur| *cur = cur.combine(m)).or_insert(m);
        };
        for d in self.pending.drain(..) {
            match d {
                Descriptor::Global { access } => {
                    want(NodeKey::Root, access.own_mode(), &mut modes);
                }
                Descriptor::Coarse { pts, access } => {
                    let own = access.own_mode();
                    want(NodeKey::Pts(pts), own, &mut modes);
                    want(NodeKey::Root, own.ancestor_intention(), &mut modes);
                }
                Descriptor::Fine { pts, addr, access } => {
                    let own = access.own_mode();
                    want(NodeKey::Fine(pts, addr), own, &mut modes);
                    want(NodeKey::Pts(pts), own.ancestor_intention(), &mut modes);
                    want(NodeKey::Root, own.ancestor_intention(), &mut modes);
                }
            }
        }
        modes.into_iter().collect()
    }

    /// *to-acquire*: queue a descriptor for the next [`Session::acquire_all`].
    /// Inside a nested atomic section (nesting level > 0) this is a
    /// no-op — the outer section's locks already protect the inner one.
    pub fn to_acquire(&mut self, d: Descriptor) {
        if self.nlevel == 0 {
            self.pending.push(d);
        }
    }

    /// *acquire-all*: acquire every pending lock using the hierarchical
    /// protocol, then enter the (possibly nested) section.
    pub fn acquire_all(&mut self) {
        if self.nlevel > 0 {
            self.nlevel += 1;
            return;
        }
        // The plan follows NodeKey's Ord: root, partitions, fine nodes —
        // top-down, one global sibling order.
        for (key, mode) in self.plan() {
            let node = self.rt.node(key);
            node.acquire(mode);
            self.rt.stats.node_acquisitions.fetch_add(1, Ordering::Relaxed);
            self.held.push((node, mode));
        }
        self.rt.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.nlevel = 1;
    }

    /// Non-blocking variant of [`Session::acquire_all`] for cooperative
    /// (virtual-time) schedulers: makes as much progress as possible and
    /// returns [`StepResult::WouldBlock`] when the next node in order is
    /// unavailable. Call again after any lock release; already-acquired
    /// nodes stay held (safe under the global acquisition order).
    pub fn acquire_all_step(&mut self) -> StepResult {
        if !self.stepping {
            if self.nlevel > 0 {
                self.nlevel += 1;
                return StepResult::Done;
            }
            let mut plan = self.plan();
            plan.reverse(); // pop() from the back = ascending order
            self.cursor = plan;
            self.stepping = true;
        }
        while let Some(&(key, mode)) = self.cursor.last() {
            let node = self.rt.node(key);
            if !node.try_acquire(mode) {
                return StepResult::WouldBlock;
            }
            self.rt.stats.node_acquisitions.fetch_add(1, Ordering::Relaxed);
            self.held.push((node, mode));
            self.cursor.pop();
        }
        self.rt.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.nlevel = 1;
        self.stepping = false;
        StepResult::Done
    }

    /// *release-all*: leave the section; at nesting level zero, release
    /// every held node (children before ancestors).
    pub fn release_all(&mut self) {
        assert!(self.nlevel > 0, "release_all without acquire_all");
        self.nlevel -= 1;
        if self.nlevel > 0 {
            return;
        }
        for (node, mode) in self.held.drain(..).rev() {
            node.release(mode);
        }
    }

    /// Current nesting level (0 = outside any section).
    pub fn nesting_level(&self) -> u32 {
        self.nlevel
    }

    /// Number of nodes currently held.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Sessions abandoned mid-section (e.g. on panic) must not wedge
        // other threads.
        for (node, mode) in self.held.drain(..).rev() {
            node.release(mode);
        }
    }
}
