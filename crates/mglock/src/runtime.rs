//! The multi-grain lock runtime: descriptor table, hierarchical
//! acquisition protocol, and per-thread sessions (§5.2).
//!
//! The lock structure is the tree the instantiated scheme induces:
//!
//! ```text
//! ⊤ (root)
//! ├── P0 (points-to partition)      ← coarse locks
//! │   ├── cell 0x12  ─ fine cell locks
//! │   └── array@0x40 ─ fine element-family locks
//! ├── P1
//! │   └── …
//! ```
//!
//! `acquire_all` turns the pending descriptor list into per-node modes
//! (combining a node's own mode with the intention modes required by its
//! descendants), then acquires the nodes top-down in one global order —
//! root, partitions ascending, fine nodes by (partition, address). All
//! threads use the same order, locks are two-phase (held to
//! `release_all`), so the protocol is deadlock free.

use crate::error::MgLockError;
use crate::modelock::ModeLock;
use crate::modes::Mode;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Effect requested by a descriptor: read-only maps to shared modes,
/// read-write to exclusive ones. (Mirror of `lir::Eff`, kept local so
/// the runtime crate has no compiler dependencies.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Access {
    Read,
    Write,
}

impl Access {
    fn own_mode(self) -> Mode {
        match self {
            Access::Read => Mode::S,
            Access::Write => Mode::X,
        }
    }
}

/// Address of a fine-grain lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FineAddr {
    /// A single heap cell.
    Cell(u64),
    /// Every element of the array allocated at the given base (locks
    /// whose expression ends in the dynamic `[]` offset).
    Range(u64),
}

/// A lock descriptor (§5.2): enough of the lock structure for the
/// library to find the path from the root — the points-to partition
/// number, the optional fine address, and the access effect.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Descriptor {
    /// The global lock `⊤`.
    Global { access: Access },
    /// A coarse partition lock `(⊤, P)`.
    Coarse { pts: u32, access: Access },
    /// A fine lock `(e, P)` whose expression evaluated to `addr`.
    Fine {
        pts: u32,
        addr: FineAddr,
        access: Access,
    },
}

/// A node in the lock tree, in the global acquisition order: root
/// first, then partitions, then fine nodes grouped by partition.
/// Public so tracing observers can name the node a grant refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NodeKey {
    Root,
    Pts(u32),
    Fine(u32, FineAddr),
}

/// Observer of a [`Session`]'s grant lifecycle. Implemented by tracing
/// backends (the `trace` crate's per-thread recorder); the runtime
/// calls it synchronously on the granting/releasing thread, including
/// for unwind releases from [`Session`]'s drop glue.
pub trait LockObserver: Send + Sync {
    /// `node` was granted to the session in `mode`.
    fn lock_acquired(&self, node: NodeKey, mode: Mode);
    /// The session released its `mode` grant on `node`.
    fn lock_released(&self, node: NodeKey, mode: Mode);
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Default)]
pub struct Stats {
    /// `acquire_all` batches that actually acquired (nesting level 0).
    pub batches: AtomicU64,
    /// Individual node acquisitions.
    pub node_acquisitions: AtomicU64,
    /// Sessions dropped while inside a section or holding locks
    /// (i.e. unwound by a panic rather than closed by `release_all`).
    pub poisoned_sessions: AtomicU64,
    /// Node grants released by [`Session`]'s drop glue instead of
    /// `release_all` — each one is a lock a crashed thread would
    /// otherwise have wedged.
    pub unwind_releases: AtomicU64,
    /// Wait-for cycles reported by [`Session::acquire_all_checked`].
    pub deadlocks_detected: AtomicU64,
    /// Acquisitions abandoned at [`RuntimeConfig::acquire_timeout`].
    pub timeouts: AtomicU64,
}

/// Degradation-ladder policy for a [`Runtime`]. The default (no
/// timeout, no detection) adds zero overhead to the hot path; both
/// features only matter to [`Session::acquire_all_checked`] callers.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeConfig {
    /// Upper bound on how long one `acquire_all_checked` batch may
    /// block on a single node before failing with
    /// [`MgLockError::AcquireTimeout`].
    pub acquire_timeout: Option<Duration>,
    /// Maintain a thread-keyed wait-for graph and fail acquisitions
    /// that would close a cycle with
    /// [`MgLockError::DeadlockDetected`]. Cycles cannot arise from
    /// conforming use of the protocol; this catches misuse such as
    /// interleaving two sessions on one thread.
    pub detect_deadlocks: bool,
}

/// Wait-for bookkeeping, maintained only when
/// [`RuntimeConfig::detect_deadlocks`] is set. Keyed by per-thread ids
/// (not sessions): a thread blocked through one session while holding
/// locks through another is exactly the misuse worth catching.
#[derive(Default)]
struct WaitGraph {
    holders: HashMap<NodeKey, Vec<(u64, Mode)>>,
    waiting: HashMap<u64, (NodeKey, Mode)>,
}

impl WaitGraph {
    /// Looks for a conflict cycle starting from `tid` requesting
    /// `mode` on `key`. Edges: requester → conflicting holder → the
    /// node that holder's thread is blocked on → … Returns the thread
    /// ids on the cycle in canonical form: rotated so the smallest tid
    /// comes first, keeping error reports (and the chaos-suite digests
    /// built from them) byte-identical no matter which thread on the
    /// cycle happened to detect it.
    fn find_cycle(&self, tid: u64, key: NodeKey, mode: Mode) -> Option<Vec<u64>> {
        let mut path = vec![tid];
        let mut visited = vec![tid];
        let mut cycle = self.dfs(tid, key, mode, &mut path, &mut visited)?;
        let min = cycle
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
            .unwrap_or(0);
        cycle.rotate_left(min);
        Some(cycle)
    }

    fn dfs(
        &self,
        origin: u64,
        key: NodeKey,
        mode: Mode,
        path: &mut Vec<u64>,
        visited: &mut Vec<u64>,
    ) -> Option<Vec<u64>> {
        for &(holder, held) in self.holders.get(&key)?.iter() {
            if held.compatible(mode) {
                continue;
            }
            if holder == origin {
                // A conflicting grant held by the requester itself — the
                // degenerate self-deadlock (e.g. an S→X upgrade attempt).
                return Some(path.clone());
            }
            if visited.contains(&holder) {
                continue;
            }
            visited.push(holder);
            if let Some(&(next_key, next_mode)) = self.waiting.get(&holder) {
                path.push(holder);
                if let Some(cycle) = self.dfs(origin, next_key, next_mode, path, visited) {
                    return Some(cycle);
                }
                path.pop();
            }
        }
        None
    }
}

/// The shared lock-table runtime. Clone the [`Arc`] into every thread
/// and create one [`Session`] per thread.
pub struct Runtime {
    shards: Vec<Mutex<HashMap<NodeKey, Arc<ModeLock>>>>,
    stats: Stats,
    config: RuntimeConfig,
    graph: Mutex<WaitGraph>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("stats", &self.stats)
            .field("config", &self.config)
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

const N_SHARDS: usize = 64;

/// How often a detection-enabled blocked acquisition re-examines the
/// wait-for graph (a cycle may only close after we start waiting).
const DETECT_RECHECK: Duration = Duration::from_millis(10);

/// Runtime-assigned id of the calling thread, used as the wait-graph
/// key (stable, small, and printable — unlike `std::thread::ThreadId`).
fn graph_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Runtime {
    /// Creates an empty lock table with the default (zero-overhead)
    /// configuration.
    pub fn new() -> Self {
        Self::with_config(RuntimeConfig::default())
    }

    /// Creates an empty lock table with an explicit degradation policy.
    pub fn with_config(config: RuntimeConfig) -> Self {
        Runtime {
            shards: (0..N_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            stats: Stats::default(),
            config,
            graph: Mutex::new(WaitGraph::default()),
        }
    }

    /// The active degradation policy.
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// Acquisition statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// True when no node is granted in any mode — every session has
    /// released (or been unwound). The fault-injection suites assert
    /// this after crashing workers to prove panics cannot leak locks.
    pub fn quiescent(&self) -> bool {
        self.shards.iter().all(|s| {
            s.lock()
                .values()
                .all(|n| n.granted().iter().all(|&c| c == 0))
        })
    }

    fn node(&self, key: NodeKey) -> Arc<ModeLock> {
        let shard = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            key.hash(&mut h);
            (h.finish() as usize) % N_SHARDS
        };
        let mut map = self.shards[shard].lock();
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(ModeLock::new())))
    }

    fn note_granted(&self, key: NodeKey, mode: Mode) {
        if self.config.detect_deadlocks {
            self.graph
                .lock()
                .holders
                .entry(key)
                .or_default()
                .push((graph_tid(), mode));
        }
    }

    fn note_released(&self, key: NodeKey, mode: Mode) {
        if self.config.detect_deadlocks {
            let tid = graph_tid();
            if let Some(hs) = self.graph.lock().holders.get_mut(&key) {
                if let Some(i) = hs.iter().position(|&(t, m)| t == tid && m == mode) {
                    hs.swap_remove(i);
                }
            }
        }
    }
}

/// Outcome of one [`Session::acquire_all_step`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepResult {
    /// Every pending lock is held; the section is entered.
    Done,
    /// The next node in the acquisition order is currently incompatible;
    /// call again after some lock is released. Nodes acquired so far
    /// stay held — the global order makes that deadlock-free.
    WouldBlock,
}

/// Per-thread session: pending descriptors, held nodes, and the nesting
/// level of §5.3.
pub struct Session {
    rt: Arc<Runtime>,
    pending: Vec<Descriptor>,
    held: Vec<(NodeKey, Arc<ModeLock>, Mode)>,
    nlevel: u32,
    /// In-progress step-wise acquisition: remaining (node, mode) pairs
    /// in *descending* order (popped from the back).
    cursor: Vec<(NodeKey, Mode)>,
    /// Whether a step-wise acquisition is in flight.
    stepping: bool,
    /// Grant-lifecycle observer (tracing); `None` costs nothing.
    observer: Option<Arc<dyn LockObserver>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("pending", &self.pending.len())
            .field("held", &self.held.len())
            .field("nlevel", &self.nlevel)
            .finish()
    }
}

impl Session {
    /// Creates a session bound to a shared runtime.
    pub fn new(rt: Arc<Runtime>) -> Self {
        Session {
            rt,
            pending: Vec::new(),
            held: Vec::new(),
            nlevel: 0,
            cursor: Vec::new(),
            stepping: false,
            observer: None,
        }
    }

    /// Installs (or clears) a grant-lifecycle observer. Grants already
    /// held are not replayed to a newly installed observer.
    pub fn set_observer(&mut self, observer: Option<Arc<dyn LockObserver>>) {
        self.observer = observer;
    }

    fn notify_acquired(&self, key: NodeKey, mode: Mode) {
        if let Some(obs) = &self.observer {
            obs.lock_acquired(key, mode);
        }
    }

    /// Computes the per-node modes for the pending descriptors, in the
    /// global acquisition order.
    fn plan(&mut self) -> Vec<(NodeKey, Mode)> {
        let mut modes: BTreeMap<NodeKey, Mode> = BTreeMap::new();
        let want = |k: NodeKey, m: Mode, modes: &mut BTreeMap<NodeKey, Mode>| {
            modes
                .entry(k)
                .and_modify(|cur| *cur = cur.combine(m))
                .or_insert(m);
        };
        for d in self.pending.drain(..) {
            match d {
                Descriptor::Global { access } => {
                    want(NodeKey::Root, access.own_mode(), &mut modes);
                }
                Descriptor::Coarse { pts, access } => {
                    let own = access.own_mode();
                    want(NodeKey::Pts(pts), own, &mut modes);
                    want(NodeKey::Root, own.ancestor_intention(), &mut modes);
                }
                Descriptor::Fine { pts, addr, access } => {
                    let own = access.own_mode();
                    want(NodeKey::Fine(pts, addr), own, &mut modes);
                    want(NodeKey::Pts(pts), own.ancestor_intention(), &mut modes);
                    want(NodeKey::Root, own.ancestor_intention(), &mut modes);
                }
            }
        }
        modes.into_iter().collect()
    }

    /// *to-acquire*: queue a descriptor for the next [`Session::acquire_all`].
    /// Inside a nested atomic section (nesting level > 0) this is a
    /// no-op — the outer section's locks already protect the inner one.
    pub fn to_acquire(&mut self, d: Descriptor) {
        if self.nlevel == 0 {
            self.pending.push(d);
        }
    }

    /// *acquire-all*: acquire every pending lock using the hierarchical
    /// protocol, then enter the (possibly nested) section.
    pub fn acquire_all(&mut self) {
        if self.nlevel > 0 {
            self.nlevel += 1;
            return;
        }
        // The plan follows NodeKey's Ord: root, partitions, fine nodes —
        // top-down, one global sibling order.
        for (key, mode) in self.plan() {
            let node = self.rt.node(key);
            node.acquire(mode);
            self.rt
                .stats
                .node_acquisitions
                .fetch_add(1, Ordering::Relaxed);
            self.rt.note_granted(key, mode);
            self.notify_acquired(key, mode);
            self.held.push((key, node, mode));
        }
        self.rt.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.nlevel = 1;
    }

    /// Like [`Session::acquire_all`], but honours the runtime's
    /// [`RuntimeConfig`]: acquisitions observe the configured timeout,
    /// and (when detection is enabled) a wait-for cycle is reported as
    /// a typed error instead of hanging. On error the partial batch is
    /// released and the pending list is empty — the session is reusable.
    ///
    /// # Errors
    ///
    /// [`MgLockError::AcquireTimeout`] past the configured bound;
    /// [`MgLockError::DeadlockDetected`] when this acquisition would
    /// close a wait-for cycle (a locking-protocol violation).
    pub fn acquire_all_checked(&mut self) -> Result<(), MgLockError> {
        if self.nlevel > 0 {
            self.nlevel += 1;
            return Ok(());
        }
        for (key, mode) in self.plan() {
            let node = self.rt.node(key);
            if let Err(e) = self.acquire_node_checked(key, &node, mode) {
                let obs = self.observer.clone();
                for (k, n, m) in self.held.drain(..).rev() {
                    n.release(m);
                    self.rt.note_released(k, m);
                    if let Some(obs) = &obs {
                        obs.lock_released(k, m);
                    }
                }
                return Err(e);
            }
            self.rt
                .stats
                .node_acquisitions
                .fetch_add(1, Ordering::Relaxed);
            self.rt.note_granted(key, mode);
            self.notify_acquired(key, mode);
            self.held.push((key, node, mode));
        }
        self.rt.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.nlevel = 1;
        Ok(())
    }

    /// One node of a checked batch: non-blocking fast path, then a
    /// bounded wait that re-examines the wait-for graph every
    /// [`DETECT_RECHECK`] (a cycle may only close after we block).
    fn acquire_node_checked(
        &self,
        key: NodeKey,
        node: &ModeLock,
        mode: Mode,
    ) -> Result<(), MgLockError> {
        if node.try_acquire(mode) {
            return Ok(());
        }
        let cfg = self.rt.config;
        let deadline = cfg.acquire_timeout.map(|t| std::time::Instant::now() + t);
        if cfg.detect_deadlocks {
            self.rt
                .graph
                .lock()
                .waiting
                .insert(graph_tid(), (key, mode));
        }
        let result = loop {
            if cfg.detect_deadlocks {
                let cycle = self.rt.graph.lock().find_cycle(graph_tid(), key, mode);
                if let Some(cycle) = cycle {
                    self.rt
                        .stats
                        .deadlocks_detected
                        .fetch_add(1, Ordering::Relaxed);
                    break Err(MgLockError::DeadlockDetected { cycle });
                }
            }
            let slice = match deadline {
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        self.rt.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        break Err(MgLockError::AcquireTimeout);
                    }
                    if cfg.detect_deadlocks {
                        DETECT_RECHECK.min(d - now)
                    } else {
                        d - now
                    }
                }
                None if cfg.detect_deadlocks => DETECT_RECHECK,
                None => {
                    // No policy bounds this wait: block for real.
                    node.acquire(mode);
                    break Ok(());
                }
            };
            if node.acquire_timed(mode, slice) {
                break Ok(());
            }
        };
        if cfg.detect_deadlocks {
            self.rt.graph.lock().waiting.remove(&graph_tid());
        }
        result
    }

    /// Non-blocking variant of [`Session::acquire_all`] for cooperative
    /// (virtual-time) schedulers: makes as much progress as possible and
    /// returns [`StepResult::WouldBlock`] when the next node in order is
    /// unavailable. Call again after any lock release; already-acquired
    /// nodes stay held (safe under the global acquisition order).
    pub fn acquire_all_step(&mut self) -> StepResult {
        if !self.stepping {
            if self.nlevel > 0 {
                self.nlevel += 1;
                return StepResult::Done;
            }
            let mut plan = self.plan();
            plan.reverse(); // pop() from the back = ascending order
            self.cursor = plan;
            self.stepping = true;
        }
        while let Some(&(key, mode)) = self.cursor.last() {
            let node = self.rt.node(key);
            if !node.try_acquire(mode) {
                return StepResult::WouldBlock;
            }
            self.rt
                .stats
                .node_acquisitions
                .fetch_add(1, Ordering::Relaxed);
            self.rt.note_granted(key, mode);
            self.notify_acquired(key, mode);
            self.held.push((key, node, mode));
            self.cursor.pop();
        }
        self.rt.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.nlevel = 1;
        self.stepping = false;
        StepResult::Done
    }

    /// *release-all*: leave the section; at nesting level zero, release
    /// every held node (children before ancestors).
    pub fn release_all(&mut self) {
        assert!(self.nlevel > 0, "release_all without acquire_all");
        self.nlevel -= 1;
        if self.nlevel > 0 {
            return;
        }
        let obs = self.observer.clone();
        for (key, node, mode) in self.held.drain(..).rev() {
            node.release(mode);
            self.rt.note_released(key, mode);
            if let Some(obs) = &obs {
                obs.lock_released(key, mode);
            }
        }
    }

    /// Current nesting level (0 = outside any section).
    pub fn nesting_level(&self) -> u32 {
        self.nlevel
    }

    /// Number of nodes currently held.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// The session's live held-mode set: every granted `(node, mode)`
    /// pair, in acquisition order. This is the introspection hook the
    /// online sentinel evaluates the Fig. 6 licensing predicate
    /// against on each in-section access — the same set the trace
    /// validator reconstructs post hoc from grant/release events.
    pub fn held_modes(&self) -> impl Iterator<Item = (NodeKey, Mode)> + '_ {
        self.held.iter().map(|&(key, _, mode)| (key, mode))
    }

    /// The `(node, mode)` pair an in-flight step-wise acquisition is
    /// currently blocked on — the cursor's next step. `None` outside a
    /// stepping acquisition (or once the plan is fully granted). Wake
    /// policies snapshot this into the scheduler's waiter queue when a
    /// step returns [`StepResult::WouldBlock`].
    pub fn blocked_on(&self) -> Option<(NodeKey, Mode)> {
        if self.stepping {
            self.cursor.last().copied()
        } else {
            None
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Sessions abandoned mid-section (e.g. on panic) must not wedge
        // other threads: release everything, children before ancestors,
        // and account for the poisoning so harnesses can report it.
        if self.nlevel > 0 || self.stepping || !self.held.is_empty() {
            self.rt
                .stats
                .poisoned_sessions
                .fetch_add(1, Ordering::Relaxed);
        }
        let obs = self.observer.clone();
        for (key, node, mode) in self.held.drain(..).rev() {
            node.release(mode);
            self.rt.note_released(key, mode);
            if let Some(obs) = &obs {
                obs.lock_released(key, mode);
            }
            self.rt
                .stats
                .unwind_releases
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod graph_tests {
    use super::*;

    #[test]
    fn crafted_wait_cycle_is_found() {
        // t1 holds cell 1 (X) and waits for cell 2; t2 holds cell 2 (X).
        // When t2 asks for cell 1 the graph has a 2-cycle.
        let mut g = WaitGraph::default();
        let k1 = NodeKey::Fine(0, FineAddr::Cell(1));
        let k2 = NodeKey::Fine(0, FineAddr::Cell(2));
        g.holders.insert(k1, vec![(1, Mode::S)]);
        g.holders.insert(k2, vec![(2, Mode::X)]);
        g.waiting.insert(1, (k2, Mode::X));
        // Canonical rotation: the cycle 2 → 1 reports as [1, 2].
        assert_eq!(g.find_cycle(2, k1, Mode::X), Some(vec![1, 2]));
        // A compatible holder does not form an edge: IS coexists with
        // the S grant, so there is nothing to wait for.
        assert_eq!(g.find_cycle(2, k1, Mode::Is), None);
        // Without the wait edge there is no cycle.
        g.waiting.clear();
        assert_eq!(g.find_cycle(2, k1, Mode::X), None);
    }

    #[test]
    fn self_upgrade_is_a_degenerate_cycle() {
        let mut g = WaitGraph::default();
        let k = NodeKey::Pts(3);
        g.holders.insert(k, vec![(7, Mode::S)]);
        assert_eq!(g.find_cycle(7, k, Mode::X), Some(vec![7]));
    }
}
