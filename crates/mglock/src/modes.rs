//! Access modes and their compatibility (Figure 6).
//!
//! Traditional modes are shared (`S`) and exclusive (`X`); the
//! multi-granularity protocol adds intention modes: `IS` (intention to
//! read below), `IX` (intention to write below), and `SIX` (read here,
//! intention to write below).

use std::fmt;

/// A lock access mode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Mode {
    /// Intention to acquire shared locks on descendants.
    Is,
    /// Intention to acquire exclusive locks on descendants.
    Ix,
    /// Shared (read) access to this node and everything below it.
    S,
    /// Shared access here plus intention to write some descendants.
    Six,
    /// Exclusive (write) access to this node and everything below it.
    X,
}

pub const ALL_MODES: [Mode; 5] = [Mode::Is, Mode::Ix, Mode::S, Mode::Six, Mode::X];

impl Mode {
    /// The compatibility matrix of Figure 6(b): can two *different*
    /// threads hold these modes on the same node concurrently?
    pub fn compatible(self, other: Mode) -> bool {
        use Mode::*;
        match (self, other) {
            (Is, X) | (X, Is) => false,
            (Is, _) | (_, Is) => true,
            (Ix, Ix) => true,
            (S, S) => true,
            _ => false,
        }
    }

    /// The least mode granting everything both inputs grant — used when
    /// one `acquireAll` needs a node in two capacities (e.g. `S` for a
    /// coarse read lock and `IX` as the ancestor of a fine write lock
    /// gives `SIX`).
    pub fn combine(self, other: Mode) -> Mode {
        use Mode::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Is, m) | (m, Is) => m,
            (Ix, S) | (S, Ix) => Six,
            (Ix, Ix) => Ix,
            (Ix, Six) | (Six, Ix) => Six,
            (S, Six) | (Six, S) => Six,
            (X, _) | (_, X) => X,
            (S, S) => S,
            (Six, Six) => Six,
        }
    }

    /// Whether this mode grants the capabilities of `other`
    /// (the "stronger-than" order induced by `combine`).
    pub fn grants(self, other: Mode) -> bool {
        self.combine(other) == self
    }

    /// The intention mode an *ancestor* must hold for a node acquired in
    /// this mode (protocol rule 1/2 of §5.1).
    pub fn ancestor_intention(self) -> Mode {
        match self {
            Mode::Is | Mode::S => Mode::Is,
            Mode::Ix | Mode::Six | Mode::X => Mode::Ix,
        }
    }

    /// True for modes that license writing the covered locations.
    pub fn allows_write(self) -> bool {
        matches!(self, Mode::X)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::Is => "IS",
            Mode::Ix => "IX",
            Mode::S => "S",
            Mode::Six => "SIX",
            Mode::X => "X",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Mode::*;

    #[test]
    fn figure_6b_matrix() {
        // Row-by-row transcription of the paper's Figure 6(b).
        let expect = [
            (Is, [true, true, true, true, false]),
            (Ix, [true, true, false, false, false]),
            (S, [true, false, true, false, false]),
            (Six, [true, false, false, false, false]),
            (X, [false, false, false, false, false]),
        ];
        for (a, row) in expect {
            for (b, want) in ALL_MODES.iter().zip(row) {
                assert_eq!(a.compatible(*b), want, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in ALL_MODES {
            for b in ALL_MODES {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn combine_is_a_join() {
        for a in ALL_MODES {
            assert_eq!(a.combine(a), a, "idempotent");
            for b in ALL_MODES {
                let j = a.combine(b);
                assert_eq!(j, b.combine(a), "commutative");
                assert!(j.grants(a) && j.grants(b), "upper bound: {a}+{b}={j}");
                // Anything compatible with the join is compatible with
                // both inputs (the join is conservative).
                for c in ALL_MODES {
                    if c.compatible(j) {
                        assert!(c.compatible(a) && c.compatible(b));
                    }
                }
            }
        }
    }

    #[test]
    fn s_plus_ix_is_six() {
        assert_eq!(S.combine(Ix), Six);
        assert_eq!(Ix.combine(S), Six);
    }

    #[test]
    fn ancestor_intentions() {
        assert_eq!(S.ancestor_intention(), Is);
        assert_eq!(Is.ancestor_intention(), Is);
        assert_eq!(X.ancestor_intention(), Ix);
        assert_eq!(Six.ancestor_intention(), Ix);
        assert_eq!(Ix.ancestor_intention(), Ix);
    }
}
