//! A blocking lock node supporting the five access modes.
//!
//! Each node counts how many threads hold it in each mode; a request is
//! granted when it is compatible with everything currently granted.
//! Shared-flavoured requests (`S`/`IS`) additionally yield to queued
//! exclusive requests (writer preference), which prevents writer
//! starvation under read-heavy load. Yielding more conservatively than
//! the matrix can never introduce deadlock here: the acquisition
//! protocol orders all nodes globally and acquires them two-phase, so
//! waits never form a cycle.

use crate::modes::Mode;
use parking_lot::{Condvar, Mutex};

#[derive(Default)]
struct State {
    /// Granted counts, indexed by `Mode as usize`.
    granted: [u32; 5],
    /// Number of threads blocked on an `X`/`SIX` request.
    waiting_excl: u32,
}

impl State {
    fn admits(&self, mode: Mode) -> bool {
        use Mode::*;
        let g = &self.granted;
        let held = |m: Mode| g[m as usize] > 0;
        let ok = match mode {
            Is => !held(X),
            Ix => !held(S) && !held(Six) && !held(X),
            S => !held(Ix) && !held(Six) && !held(X),
            Six => !held(Ix) && !held(S) && !held(Six) && !held(X),
            X => g.iter().all(|&c| c == 0),
        };
        // Writer preference: purely shared requests queue behind
        // blocked exclusive requests.
        let defer = matches!(mode, Is | S) && self.waiting_excl > 0;
        ok && !defer
    }
}

/// A multi-mode lock node.
#[derive(Default)]
pub struct ModeLock {
    state: Mutex<State>,
    cond: Condvar,
}

impl ModeLock {
    /// Creates an idle node.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until `mode` can be granted, then records the grant.
    pub fn acquire(&self, mode: Mode) {
        let mut st = self.state.lock();
        if !st.admits(mode) {
            let excl = matches!(mode, Mode::X | Mode::Six);
            if excl {
                st.waiting_excl += 1;
            }
            while !st.admits_ignoring_preference(mode, excl) {
                self.cond.wait(&mut st);
            }
            if excl {
                st.waiting_excl -= 1;
            }
        }
        st.granted[mode as usize] += 1;
    }

    /// Like [`ModeLock::acquire`], but gives up after `timeout` and
    /// returns whether the grant was obtained. Used by the runtime's
    /// degradation ladder to turn indefinite blocking into a typed
    /// error.
    pub fn acquire_timed(&self, mode: Mode, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock();
        if st.admits(mode) {
            st.granted[mode as usize] += 1;
            return true;
        }
        let excl = matches!(mode, Mode::X | Mode::Six);
        if excl {
            st.waiting_excl += 1;
        }
        let granted = loop {
            if st.admits_ignoring_preference(mode, excl) {
                break true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                break false;
            }
            self.cond.wait_for(&mut st, deadline - now);
        };
        if excl {
            st.waiting_excl -= 1;
        }
        if granted {
            st.granted[mode as usize] += 1;
        } else {
            // Our queued-writer marker may have deferred readers; let
            // them re-evaluate now that we are gone.
            drop(st);
            self.cond.notify_all();
        }
        granted
    }

    /// Attempts a non-blocking grant.
    pub fn try_acquire(&self, mode: Mode) -> bool {
        let mut st = self.state.lock();
        if st.admits(mode) {
            st.granted[mode as usize] += 1;
            true
        } else {
            false
        }
    }

    /// Releases one grant of `mode`.
    ///
    /// # Panics
    ///
    /// Panics if the node was not held in `mode`.
    pub fn release(&self, mode: Mode) {
        let mut st = self.state.lock();
        assert!(
            st.granted[mode as usize] > 0,
            "release of unheld mode {mode}"
        );
        st.granted[mode as usize] -= 1;
        drop(st);
        self.cond.notify_all();
    }

    /// Snapshot of granted counts (diagnostics/tests).
    pub fn granted(&self) -> [u32; 5] {
        self.state.lock().granted
    }
}

impl State {
    /// While *already queued* as an exclusive waiter, a request ignores
    /// its own contribution to the writer-preference rule.
    fn admits_ignoring_preference(&self, mode: Mode, self_excl: bool) -> bool {
        use Mode::*;
        let g = &self.granted;
        let held = |m: Mode| g[m as usize] > 0;
        let ok = match mode {
            Is => !held(X),
            Ix => !held(S) && !held(Six) && !held(X),
            S => !held(Ix) && !held(Six) && !held(X),
            Six => !held(Ix) && !held(S) && !held(Six) && !held(X),
            X => g.iter().all(|&c| c == 0),
        };
        let defer = matches!(mode, Is | S) && self.waiting_excl > 0 && !self_excl;
        ok && !defer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ALL_MODES;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn grants_follow_the_matrix() {
        for a in ALL_MODES {
            for b in ALL_MODES {
                let l = ModeLock::new();
                l.acquire(a);
                assert_eq!(l.try_acquire(b), a.compatible(b), "{a} then {b}");
            }
        }
    }

    #[test]
    fn release_reopens() {
        let l = ModeLock::new();
        l.acquire(Mode::X);
        assert!(!l.try_acquire(Mode::Is));
        l.release(Mode::X);
        assert!(l.try_acquire(Mode::Is));
    }

    #[test]
    fn blocked_writer_eventually_proceeds() {
        let l = Arc::new(ModeLock::new());
        l.acquire(Mode::S);
        let l2 = Arc::clone(&l);
        let done = Arc::new(AtomicU32::new(0));
        let done2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            l2.acquire(Mode::X);
            done2.store(1, Ordering::SeqCst);
            l2.release(Mode::X);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0, "writer blocked by reader");
        l.release(Mode::S);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn writer_preference_defers_new_readers() {
        let l = Arc::new(ModeLock::new());
        l.acquire(Mode::S);
        // Queue a writer.
        let lw = Arc::clone(&l);
        let wh = std::thread::spawn(move || {
            lw.acquire(Mode::X);
            lw.release(Mode::X);
        });
        // Give the writer time to block.
        std::thread::sleep(Duration::from_millis(30));
        // A new reader should now be deferred even though S∥S.
        assert!(!l.try_acquire(Mode::S), "reader defers to queued writer");
        l.release(Mode::S);
        wh.join().unwrap();
        // After the writer finished, readers are admitted again.
        assert!(l.try_acquire(Mode::S));
    }

    #[test]
    fn intention_modes_share() {
        let l = ModeLock::new();
        l.acquire(Mode::Ix);
        assert!(l.try_acquire(Mode::Ix));
        assert!(l.try_acquire(Mode::Is));
        assert!(!l.try_acquire(Mode::S), "S vs IX conflicts");
        assert_eq!(l.granted()[Mode::Ix as usize], 2);
    }

    #[test]
    #[should_panic(expected = "release of unheld mode")]
    fn release_unheld_panics() {
        ModeLock::new().release(Mode::S);
    }
}
