//! # mglock — a multi-granularity locking runtime
//!
//! The runtime library of *Inferring Locks for Atomic Sections*
//! (PLDI 2008), §5: hierarchical locks with intention modes after Gray
//! et al., a deadlock-free top-down acquisition protocol, and the
//! three-call API the transformed programs use: *to-acquire*,
//! *acquire-all*, *release-all*, plus the `nlevel` nesting support of
//! §5.3.
//!
//! ```
//! use mglock::{Access, Descriptor, FineAddr, Runtime, Session};
//! use std::sync::Arc;
//!
//! let rt = Arc::new(Runtime::new());
//! let mut session = Session::new(Arc::clone(&rt));
//!
//! // A transformed atomic section:
//! session.to_acquire(Descriptor::Fine {
//!     pts: 3,
//!     addr: FineAddr::Cell(0x40),
//!     access: Access::Write,
//! });
//! session.to_acquire(Descriptor::Coarse { pts: 7, access: Access::Read });
//! session.acquire_all();
//! // … body of the atomic section …
//! session.release_all();
//! ```

pub mod error;
pub mod modelock;
pub mod modes;
pub mod runtime;

pub use error::MgLockError;
pub use modelock::ModeLock;
pub use modes::Mode;
pub use runtime::{
    Access, Descriptor, FineAddr, LockObserver, NodeKey, Runtime, RuntimeConfig, Session, Stats,
    StepResult,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn fine(pts: u32, cell: u64, access: Access) -> Descriptor {
        Descriptor::Fine {
            pts,
            addr: FineAddr::Cell(cell),
            access,
        }
    }

    #[test]
    fn fine_locks_in_different_partitions_run_concurrently() {
        let rt = Arc::new(Runtime::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for pts in 0..2u32 {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut s = Session::new(rt);
                s.to_acquire(fine(pts, 100 + pts as u64, Access::Write));
                s.acquire_all();
                // Both threads must be inside simultaneously or this
                // barrier blocks the test forever.
                barrier.wait();
                s.release_all();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn same_cell_write_locks_exclude() {
        let rt = Arc::new(Runtime::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let rt = Arc::clone(&rt);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut s = Session::new(Arc::clone(&rt));
                    s.to_acquire(fine(0, 42, Access::Write));
                    s.acquire_all();
                    // Non-atomic read-modify-write protected by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    counter.store(v + 1, Ordering::Relaxed);
                    s.release_all();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 200);
    }

    #[test]
    fn coarse_lock_excludes_fine_writers_in_its_partition() {
        let rt = Arc::new(Runtime::new());
        let mut holder = Session::new(Arc::clone(&rt));
        holder.to_acquire(Descriptor::Coarse {
            pts: 5,
            access: Access::Write,
        });
        holder.acquire_all();

        let rt2 = Arc::clone(&rt);
        let entered = Arc::new(AtomicU64::new(0));
        let entered2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            let mut s = Session::new(rt2);
            s.to_acquire(fine(5, 9, Access::Write));
            s.acquire_all();
            entered2.store(1, Ordering::SeqCst);
            s.release_all();
        });
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            entered.load(Ordering::SeqCst),
            0,
            "fine writer blocked by coarse X"
        );
        holder.release_all();
        h.join().unwrap();
        assert_eq!(entered.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn coarse_readers_share() {
        let rt = Arc::new(Runtime::new());
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut s = Session::new(rt);
                s.to_acquire(Descriptor::Coarse {
                    pts: 1,
                    access: Access::Read,
                });
                s.acquire_all();
                barrier.wait();
                s.release_all();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn global_lock_excludes_everything() {
        let rt = Arc::new(Runtime::new());
        let mut g = Session::new(Arc::clone(&rt));
        g.to_acquire(Descriptor::Global {
            access: Access::Write,
        });
        g.acquire_all();

        let rt2 = Arc::clone(&rt);
        let entered = Arc::new(AtomicU64::new(0));
        let entered2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            let mut s = Session::new(rt2);
            s.to_acquire(fine(9, 1, Access::Read));
            s.acquire_all();
            entered2.store(1, Ordering::SeqCst);
            s.release_all();
        });
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(entered.load(Ordering::SeqCst), 0);
        g.release_all();
        h.join().unwrap();
    }

    #[test]
    fn deadlock_freedom_under_symmetric_contention() {
        // The Figure 1(b) scenario: move(l1,l2) ∥ move(l2,l1). With the
        // protocol both threads acquire {cell a, cell b} in the same
        // order, so this completes.
        let rt = Arc::new(Runtime::new());
        let mut handles = Vec::new();
        for flip in [false, true] {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let mut s = Session::new(Arc::clone(&rt));
                    let (a, b) = if flip { (7, 3) } else { (3, 7) };
                    s.to_acquire(fine(0, a, Access::Write));
                    s.to_acquire(fine(0, b, Access::Write));
                    s.acquire_all();
                    s.release_all();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn nested_sections_are_no_ops() {
        let rt = Arc::new(Runtime::new());
        let mut s = Session::new(rt);
        s.to_acquire(fine(0, 1, Access::Write));
        s.acquire_all();
        let held = s.held_count();
        // Inner section: queues nothing, acquires nothing.
        s.to_acquire(fine(0, 2, Access::Write));
        s.acquire_all();
        assert_eq!(s.held_count(), held);
        assert_eq!(s.nesting_level(), 2);
        s.release_all();
        assert_eq!(s.held_count(), held, "inner release keeps the locks");
        s.release_all();
        assert_eq!(s.held_count(), 0);
        assert_eq!(s.nesting_level(), 0);
    }

    #[test]
    fn range_and_cell_locks_are_distinct_nodes() {
        let rt = Arc::new(Runtime::new());
        let mut a = Session::new(Arc::clone(&rt));
        a.to_acquire(Descriptor::Fine {
            pts: 0,
            addr: FineAddr::Range(64),
            access: Access::Write,
        });
        a.acquire_all();
        // A cell lock at the same numeric address is a different node;
        // at this layer it does not conflict (the *compiler* guarantees
        // a given allocation is locked consistently via one shape).
        let mut b = Session::new(Arc::clone(&rt));
        b.to_acquire(fine(0, 64, Access::Write));
        b.acquire_all();
        b.release_all();
        a.release_all();
    }

    #[test]
    fn read_and_write_same_cell_conflict() {
        let rt = Arc::new(Runtime::new());
        let mut w = Session::new(Arc::clone(&rt));
        w.to_acquire(fine(2, 5, Access::Write));
        w.acquire_all();
        let rt2 = Arc::clone(&rt);
        let done = Arc::new(AtomicU64::new(0));
        let done2 = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            let mut r = Session::new(rt2);
            r.to_acquire(fine(2, 5, Access::Read));
            r.acquire_all();
            done2.store(1, Ordering::SeqCst);
            r.release_all();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 0);
        w.release_all();
        h.join().unwrap();
    }

    #[test]
    fn stepwise_acquisition_blocks_and_resumes() {
        use runtime::StepResult;
        let rt = Arc::new(Runtime::new());
        let mut holder = Session::new(Arc::clone(&rt));
        holder.to_acquire(fine(1, 5, Access::Write));
        holder.acquire_all();

        let mut stepper = Session::new(Arc::clone(&rt));
        stepper.to_acquire(fine(0, 9, Access::Write)); // free
        stepper.to_acquire(fine(1, 5, Access::Write)); // held by holder
                                                       // Progresses up to the contended node, then parks.
        assert_eq!(stepper.acquire_all_step(), StepResult::WouldBlock);
        let partial = stepper.held_count();
        assert!(partial >= 1, "earlier nodes stay held");
        assert_eq!(
            stepper.acquire_all_step(),
            StepResult::WouldBlock,
            "still blocked"
        );
        holder.release_all();
        assert_eq!(stepper.acquire_all_step(), StepResult::Done);
        assert_eq!(stepper.nesting_level(), 1);
        stepper.release_all();
        assert_eq!(stepper.held_count(), 0);
    }

    #[test]
    fn stepwise_nested_sections_are_no_ops() {
        use runtime::StepResult;
        let rt = Arc::new(Runtime::new());
        let mut s = Session::new(rt);
        s.to_acquire(fine(0, 1, Access::Write));
        assert_eq!(s.acquire_all_step(), StepResult::Done);
        let held = s.held_count();
        s.to_acquire(fine(0, 2, Access::Write)); // ignored: nested
        assert_eq!(s.acquire_all_step(), StepResult::Done);
        assert_eq!(s.held_count(), held);
        assert_eq!(s.nesting_level(), 2);
        s.release_all();
        s.release_all();
        assert_eq!(s.held_count(), 0);
    }

    #[test]
    fn stepwise_empty_plan_completes() {
        use runtime::StepResult;
        let rt = Arc::new(Runtime::new());
        let mut s = Session::new(rt);
        assert_eq!(s.acquire_all_step(), StepResult::Done);
        assert_eq!(s.nesting_level(), 1);
        s.release_all();
    }

    #[test]
    fn duplicate_descriptors_combine_modes() {
        // ro + rw on the same cell must yield one X grant, not two
        // separate grants.
        let rt = Arc::new(Runtime::new());
        let mut s = Session::new(Arc::clone(&rt));
        s.to_acquire(fine(0, 7, Access::Read));
        s.to_acquire(fine(0, 7, Access::Write));
        s.acquire_all();
        // Another reader must be blocked (X, not S+S).
        let mut r = Session::new(Arc::clone(&rt));
        r.to_acquire(fine(0, 7, Access::Read));
        assert_eq!(r.acquire_all_step(), runtime::StepResult::WouldBlock);
        s.release_all();
        assert_eq!(r.acquire_all_step(), runtime::StepResult::Done);
        r.release_all();
    }

    #[test]
    fn checked_acquisition_times_out_and_releases_partial() {
        let rt = Arc::new(Runtime::with_config(RuntimeConfig {
            acquire_timeout: Some(Duration::from_millis(40)),
            detect_deadlocks: false,
        }));
        let mut holder = Session::new(Arc::clone(&rt));
        holder.to_acquire(fine(1, 5, Access::Write));
        holder.acquire_all();

        let mut s = Session::new(Arc::clone(&rt));
        s.to_acquire(fine(0, 9, Access::Write)); // free — acquired first
        s.to_acquire(fine(1, 5, Access::Write)); // held — will time out
        assert_eq!(s.acquire_all_checked(), Err(MgLockError::AcquireTimeout));
        assert_eq!(s.held_count(), 0, "partial batch released on error");
        assert_eq!(s.nesting_level(), 0);
        assert_eq!(rt.stats().timeouts.load(Ordering::Relaxed), 1);
        holder.release_all();
        // The session is reusable after the error.
        s.to_acquire(fine(1, 5, Access::Write));
        assert_eq!(s.acquire_all_checked(), Ok(()));
        s.release_all();
    }

    #[test]
    fn checked_acquisition_detects_cross_thread_deadlock() {
        // Protocol misuse: each thread interleaves two sessions, holding
        // one batch while acquiring another — the two-phase discipline
        // the global order depends on is broken, and a genuine wait-for
        // cycle forms. With detection enabled at least one thread must
        // get a typed error instead of hanging.
        let rt = Arc::new(Runtime::with_config(RuntimeConfig {
            acquire_timeout: None,
            detect_deadlocks: true,
        }));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for (own, other) in [(1u64, 2u64), (2, 1)] {
            let rt = Arc::clone(&rt);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut first = Session::new(Arc::clone(&rt));
                first.to_acquire(fine(0, own, Access::Write));
                first.acquire_all_checked().unwrap();
                barrier.wait();
                let mut second = Session::new(Arc::clone(&rt));
                second.to_acquire(fine(0, other, Access::Write));
                let r = second.acquire_all_checked();
                if r.is_ok() {
                    second.release_all();
                }
                first.release_all();
                r
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let cycles = results
            .iter()
            .filter(|r| matches!(r, Err(MgLockError::DeadlockDetected { .. })))
            .count();
        assert!(cycles >= 1, "the cycle must be reported, got {results:?}");
        assert!(rt.stats().deadlocks_detected.load(Ordering::Relaxed) >= 1);
        assert!(rt.quiescent(), "all grants released after recovery");
    }

    #[test]
    fn checked_acquisition_with_detection_passes_clean_workloads() {
        // Figure 1(b) symmetric contention again, now through the
        // checked path with detection on: conforming use must never be
        // reported as a deadlock.
        let rt = Arc::new(Runtime::with_config(RuntimeConfig {
            acquire_timeout: None,
            detect_deadlocks: true,
        }));
        let mut handles = Vec::new();
        for flip in [false, true] {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let mut s = Session::new(Arc::clone(&rt));
                    let (a, b) = if flip { (7, 3) } else { (3, 7) };
                    s.to_acquire(fine(0, a, Access::Write));
                    s.to_acquire(fine(0, b, Access::Write));
                    s.acquire_all_checked().expect("no false deadlock");
                    s.release_all();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rt.stats().deadlocks_detected.load(Ordering::Relaxed), 0);
        assert!(rt.quiescent());
    }

    #[test]
    fn panicking_holder_poisons_but_releases() {
        let rt = Arc::new(Runtime::new());
        let rt2 = Arc::clone(&rt);
        let _ = std::thread::spawn(move || {
            let mut s = Session::new(rt2);
            s.to_acquire(fine(0, 11, Access::Write));
            s.acquire_all();
            panic!("worker dies inside the section");
        })
        .join();
        assert_eq!(rt.stats().poisoned_sessions.load(Ordering::Relaxed), 1);
        assert!(
            rt.stats().unwind_releases.load(Ordering::Relaxed) >= 2,
            "root + fine released"
        );
        assert!(rt.quiescent(), "the unwound locks are free again");
        // And another thread can take the same locks.
        let mut s = Session::new(rt);
        s.to_acquire(fine(0, 11, Access::Write));
        s.acquire_all();
        s.release_all();
    }

    #[test]
    fn stats_count_batches() {
        let rt = Arc::new(Runtime::new());
        let mut s = Session::new(Arc::clone(&rt));
        s.to_acquire(fine(0, 1, Access::Read));
        s.acquire_all();
        s.release_all();
        assert_eq!(rt.stats().batches.load(Ordering::Relaxed), 1);
        assert!(rt.stats().node_acquisitions.load(Ordering::Relaxed) >= 3);
    }
}
