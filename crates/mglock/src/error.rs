//! Typed failures of the locking runtime's degradation paths.
//!
//! The acquisition protocol itself is deadlock free, so these errors
//! only arise when the runtime is configured to police misuse
//! ([`crate::RuntimeConfig`]): a wait-for cycle means some caller broke
//! the protocol (e.g. held two sessions on one thread), and a timeout
//! bounds how long any acquisition may block. Both turn a would-be hang
//! into a structured, reportable error.

/// A failure from [`crate::Session::acquire_all_checked`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MgLockError {
    /// The acquisition exceeded [`crate::RuntimeConfig::acquire_timeout`].
    /// Locks acquired earlier in the batch have been released.
    AcquireTimeout,
    /// The wait-for graph contains a cycle through this thread — a
    /// locking-protocol violation (the protocol's global order makes
    /// cycles impossible for conforming callers). The cycle lists the
    /// runtime-assigned thread ids involved, in canonical form: rotated
    /// so the smallest tid comes first, making reports byte-identical
    /// regardless of which thread on the cycle detected it.
    DeadlockDetected {
        /// Thread ids (see [`crate::Runtime`]'s wait-graph ids) forming
        /// the cycle.
        cycle: Vec<u64>,
    },
}

impl std::fmt::Display for MgLockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MgLockError::AcquireTimeout => {
                write!(f, "lock acquisition timed out (partial batch released)")
            }
            MgLockError::DeadlockDetected { cycle } => {
                write!(
                    f,
                    "deadlock detected: wait-for cycle through threads {cycle:?}"
                )
            }
        }
    }
}

impl std::error::Error for MgLockError {}
