//! Property: the exported event trace is a pure function of the run's
//! inputs. For any (seed, fault plan, mode, thread count), two traced
//! virtual-time executions produce **byte-identical** canonical JSON —
//! the property that makes [`trace::Trace::digest`] a fingerprint of a
//! concurrent execution and record/replay possible at all.

use interp::{ExecMode, FaultPlan, Options};
use proptest::prelude::*;

const SRC: &str = r#"
    struct node { next; val; }
    global head, total;
    fn setup(n) {
        let i = 0;
        while (i < n) {
            let e = new node;
            e->val = i;
            e->next = head;
            head = e;
            i = i + 1;
        }
    }
    fn work(iters, amount) {
        let i = 0;
        while (i < iters) {
            atomic {
                let e = head;
                while (e != null) { total = total + e->val; e = e->next; }
                total = total + amount;
                nops(30);
            }
            i = i + 1;
        }
        return 0;
    }
    fn sum() { return total; }
"#;

fn traced_json(seed: u64, plan: FaultPlan, mode: ExecMode, threads: usize) -> String {
    let opts = Options {
        heap_cells: 1 << 16,
        seed,
        faults: Some(plan),
        stm_abort_budget: 8,
        trace: Some(trace::TraceConfig::default()),
        ..Options::default()
    };
    let m = interp::machine_for(SRC, 3, mode, opts).expect("fixture compiles");
    m.run_named("setup", &[8]).expect("setup is fault-free");
    // Chaos plans may kill the run; the trace up to the failure still
    // has to reproduce.
    let _ = m.run_threads_virtual("work", threads, |tid| vec![12, tid as i64]);
    m.take_trace().expect("tracing was enabled").to_json()
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u16..40,
        0u16..120,
        (0u16..200, 1u64..400),
        (0u16..200, 1u64..400),
    )
        .prop_map(
            |(seed, panic_pm, abort_pm, (wake_pm, wake_t), (stall_pm, stall_t))| {
                FaultPlan::new(seed)
                    .with_panics(panic_pm, 1)
                    .with_stm_aborts(abort_pm)
                    .with_wakeup_delays(wake_pm, wake_t)
                    .with_stalls(stall_pm, stall_t)
            },
        )
}

fn mode_strategy() -> impl Strategy<Value = ExecMode> {
    proptest::sample::select(vec![ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_and_plan_export_identical_traces(
        seed in any::<u64>(),
        plan in plan_strategy(),
        mode in mode_strategy(),
        threads in 1usize..5,
    ) {
        let a = traced_json(seed, plan, mode, threads);
        let b = traced_json(seed, plan, mode, threads);
        prop_assert_eq!(a, b, "trace bytes diverged for {:?} t={}", mode, threads);
    }
}
