//! Property test for nested atomic sections (§5.3 `nlevel`) under
//! injected faults: every run either completes its sections atomically
//! or unwinds with all lock modes released — never a leaked mode, never
//! a hang, never an untyped crash.

use interp::{machine_for, ExecMode, FaultPlan, InterpError, Options};
use proptest::prelude::*;
use std::sync::atomic::Ordering;

/// `inner` runs both as a nested section (from `outer`) and as an
/// outermost section of its own (from `flat`) — the paper's `nlevel`
/// scenario. The paired writes to `g1`/`g2` are the atomicity witness.
const SRC: &str = r#"
    global g1, g2;
    fn inner(v) {
        atomic { g1 = g1 + v; nops(10); g2 = g2 + v; }
        return 0;
    }
    fn outer(iters) {
        let i = 0;
        while (i < iters) {
            atomic {
                inner(2);
                nops(5);
                inner(3);
            }
            i = i + 1;
        }
        return 0;
    }
    fn flat(iters) {
        let i = 0;
        while (i < iters) { inner(1); i = i + 1; }
        return 0;
    }
    fn sum() { return g1 + g2; }
    fn diff() { return g1 - g2; }
"#;

const ALL_MODES: [ExecMode; 4] = [
    ExecMode::Global,
    ExecMode::MultiGrain,
    ExecMode::Stm,
    ExecMode::Validate,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn nested_sections_complete_or_release_everything(
        seed in any::<u64>(),
        abort_pm in 0u16..150,
        panics in any::<bool>(),
    ) {
        for mode in ALL_MODES {
            let plan = FaultPlan::new(seed)
                .with_stm_aborts(abort_pm)
                .with_panics(if panics { 25 } else { 0 }, 1);
            let opts = Options {
                faults: Some(plan),
                stm_abort_budget: 8,
                ..Options::default()
            };
            let m = machine_for(SRC, 3, mode, opts).unwrap();
            let nested = m.run_threads("outer", 4, |_| vec![10]);
            let outermost = m.run_threads("flat", 2, |_| vec![10]);
            for r in [&nested, &outermost] {
                if let Err(e) = r {
                    assert!(
                        matches!(e, InterpError::InjectedPanic { .. }),
                        "{mode:?}: only injected panics may surface, got {e}"
                    );
                }
            }
            // The ladder's core guarantee: whatever happened, no lock
            // mode outlives its session.
            assert!(m.locks_quiescent(), "{mode:?}: lock mode leaked past a fault");
            let injected_panics =
                m.fault_stats().injected_panics.load(Ordering::Relaxed);
            if injected_panics == 0 {
                // Spurious aborts alone must be invisible: retries (or
                // the irrevocable fallback) land every increment.
                assert!(nested.is_ok() && outermost.is_ok(), "{mode:?}");
                let expected = 4 * 10 * (2 * 5) + 2 * 10 * 2;
                assert_eq!(m.run_named("sum", &[]).unwrap(), expected, "{mode:?}");
            }
            // STM rolls back a panicking transaction wholesale, so the
            // paired writes stay balanced even across injected panics;
            // lock runtimes promise that only for panic-free runs.
            if mode == ExecMode::Stm || injected_panics == 0 {
                assert_eq!(m.run_named("diff", &[]).unwrap(), 0, "{mode:?}");
            }
        }
    }
}
