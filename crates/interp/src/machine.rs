//! The shared machine: heap, layouts, allocation metadata, and the
//! execution-mode configuration.

use crate::error::{Exc, InterpError};
use lir::{FnId, Instr, Program, Rvalue, VarId};
use lockscheme::LocationModel;
use parking_lot::{Mutex, RwLock};
use pointsto::{AllocSite, PointsTo, PtsClass};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How atomic sections are executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// One global lock per section (the paper's baseline column).
    Global,
    /// The inferred multi-granularity locks via `mglock` — requires the
    /// transformed program.
    MultiGrain,
    /// Sections as TL2 transactions with local rollback (the optimistic
    /// baseline).
    Stm,
    /// MultiGrain plus the Theorem-1 coverage checker: every access
    /// inside a section must be covered by a held lock's concrete
    /// denotation.
    Validate,
}

/// A staged repaired lock plan for one section, produced by
/// quarantine-aware re-inference (`lockinfer::reinfer`): once the
/// section has healed, the worker plans `specs` — derived from the
/// admitted repair candidate's refined `SchemeConfig` under this
/// machine's own program and points-to result — instead of the seed
/// scheme. Until the heal, and again if the repair is revoked, the
/// ordinary ladder applies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairSpec {
    /// The section the repair targets.
    pub section: u32,
    /// The admitted candidate's index, for the `["ri", …]` ledger.
    pub candidate: u32,
    /// The repaired lock specs the worker plans after the heal.
    pub specs: Vec<lir::LockSpec>,
}

/// Machine construction options. (`Clone` but not `Copy`: the wake
/// policy carries a frozen expected-hold table.)
#[derive(Clone, Debug)]
pub struct Options {
    /// Heap capacity in cells.
    pub heap_cells: usize,
    /// Base PRNG seed (each thread derives its own stream).
    pub seed: u64,
    /// Virtual-time scheduling quantum, in ticks (see [`crate::sim`]).
    pub quantum: u64,
    /// Virtual-time costs of runtime operations.
    pub costs: crate::sim::CostModel,
    /// Deterministic fault-injection plan (`None` = no injection).
    pub faults: Option<crate::fault::FaultPlan>,
    /// STM degradation: aborts one section may suffer before its next
    /// retry runs irrevocably in global mode (see `tl2`). High enough
    /// by default that healthy workloads never escalate.
    pub stm_abort_budget: u64,
    /// Degradation policy for the multi-grain lock runtime (timeouts,
    /// deadlock detection). The default is off: zero overhead.
    pub mg_config: mglock::RuntimeConfig,
    /// Event-trace recording (`None` = no tracing, zero overhead).
    /// When set, every worker registers a per-thread recorder and the
    /// merged trace is available from [`Machine::take_trace`].
    pub trace: Option<trace::TraceConfig>,
    /// Online lockset sentinel (`None` = off, zero overhead): inline
    /// Fig. 6 licensing checks on in-section accesses, with a
    /// per-section quarantine ladder that demotes offending sections
    /// to the global scheme and re-admits them after probation.
    pub sentinel: Option<sentinel::SentinelConfig>,
    /// Fault-injected weakened inference (`None` = sound plans): drops
    /// one lock spec from one section so the sentinel has a real
    /// soundness gap to catch. See [`crate::fault::WeakenPlan`].
    pub weaken: Option<crate::fault::WeakenPlan>,
    /// Wake policy for the virtual-time scheduler (`None` = the legacy
    /// `(clock, tid)` FIFO order, zero overhead, no `["wk", …]`
    /// events). A policy's decisions are a pure function of recorded
    /// state, so policy-steered runs stay deterministic and replayable
    /// (the configuration is stamped into `run.sched_*` metadata by
    /// the replayer).
    pub sched: Option<sched::SchedConfig>,
    /// Staged section repairs from quarantine-aware re-inference
    /// (empty = none). Installed dormant into the sentinel at
    /// construction; inert without one.
    pub repairs: Vec<RepairSpec>,
    /// Live metrics registry (`None` = off, zero overhead). When set,
    /// the run publishes `ali_run_*` counters/histograms from
    /// pre-resolved lock-free handles plus end-of-run gauges via
    /// [`Machine::publish_metrics`]. Metrics never influence the
    /// deterministic schedule or the recorded trace.
    pub metrics: Option<Arc<obs::Registry>>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            heap_cells: 1 << 22,
            seed: 0x5EED_0001,
            quantum: 128,
            costs: crate::sim::CostModel::default(),
            faults: None,
            stm_abort_budget: 1024,
            mg_config: mglock::RuntimeConfig::default(),
            trace: None,
            sentinel: None,
            weaken: None,
            sched: None,
            repairs: Vec::new(),
            metrics: None,
        }
    }
}

/// Where a variable lives at run time.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Storage {
    /// A global: fixed heap cell.
    Global(u64),
    /// Frame slot holding the value directly.
    Direct(u32),
    /// Address-taken local: frame slot holds the address of its heap
    /// cell (allocated fresh at each call).
    Indirect(u32),
}

/// Per-function frame layout.
#[derive(Clone, Debug, Default)]
pub(crate) struct FnLayout {
    pub n_slots: u32,
    /// `(slot, class)` pairs for address-taken locals, allocated at
    /// entry.
    pub heapified: Vec<(u32, PtsClass)>,
    /// Frame slots of the parameters, in order.
    pub param_slots: Vec<u32>,
    /// Params that are address-taken (index into `params`), needing an
    /// indirect store at entry.
    pub ret_slot: u32,
}

#[derive(Clone, Copy, Debug)]
struct AllocMeta {
    base: u64,
    len: u64,
    class: PtsClass,
}

/// The shared interpreter state. `Machine` is `Sync`; spawn one
/// worker per thread (see `Machine::run_threads`).
pub struct Machine {
    pub(crate) program: Arc<Program>,
    pub(crate) pt: Arc<PointsTo>,
    pub(crate) mode: ExecMode,
    pub(crate) space: tl2::Space,
    brk: AtomicU64,
    allocs: RwLock<Vec<AllocMeta>>,
    pub(crate) mg: Arc<mglock::Runtime>,
    pub(crate) storage: Vec<Storage>,
    pub(crate) layouts: Vec<FnLayout>,
    pub(crate) site_class: HashMap<(FnId, u32), PtsClass>,
    pub(crate) field_offset: Vec<usize>,
    pub(crate) elem_field: Option<lir::FieldId>,
    pub(crate) out: Mutex<Vec<String>>,
    pub(crate) seed: u64,
    pub(crate) quantum: u64,
    pub(crate) costs: crate::sim::CostModel,
    pub(crate) faults: Option<crate::fault::FaultPlan>,
    pub(crate) stm_abort_budget: u64,
    pub(crate) fault_stats: crate::fault::FaultStats,
    pub(crate) tracer: Option<Arc<trace::Recorder>>,
    pub(crate) sentinel: Option<Arc<sentinel::Sentinel>>,
    pub(crate) weaken: Option<crate::fault::WeakenPlan>,
    pub(crate) sched: Option<sched::SchedConfig>,
    /// Repaired lock plans by section (see [`RepairSpec`]); the worker
    /// consults these only while the sentinel reports the section's
    /// repair as active.
    pub(crate) repairs: std::collections::BTreeMap<u32, Vec<lir::LockSpec>>,
    /// Pre-resolved live-metric handles (see [`Options::metrics`]).
    pub(crate) metrics: Option<Arc<crate::metrics::Metrics>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("mode", &self.mode)
            .field("heap_used", &self.heap_used())
            .finish()
    }
}

impl Machine {
    /// Builds a machine for `program` (transformed or marker form,
    /// depending on the mode) with its points-to result.
    ///
    /// # Panics
    ///
    /// Panics if `opts.heap_cells` cannot hold the globals.
    pub fn new(program: Arc<Program>, pt: Arc<PointsTo>, mode: ExecMode, opts: Options) -> Machine {
        let mut storage = Vec::with_capacity(program.vars.len());
        let mut layouts: Vec<FnLayout> = vec![FnLayout::default(); program.functions.len()];
        // First pass: slot assignment per function.
        let mut slot_counters = vec![0u32; program.functions.len()];
        for (i, v) in program.vars.iter().enumerate() {
            match v.owner {
                None => storage.push(Storage::Global(0)), // address assigned below
                Some(f) => {
                    let c = &mut slot_counters[f.0 as usize];
                    let slot = *c;
                    *c += 1;
                    if v.addr_taken {
                        storage.push(Storage::Indirect(slot));
                        layouts[f.0 as usize]
                            .heapified
                            .push((slot, pt.class_of_var(VarId(i as u32))));
                    } else {
                        storage.push(Storage::Direct(slot));
                    }
                }
            }
        }
        for (f, layout) in layouts.iter_mut().enumerate() {
            layout.n_slots = slot_counters[f];
            let func = &program.functions[f];
            layout.param_slots = func
                .params
                .iter()
                .map(|p| match storage[p.0 as usize] {
                    Storage::Direct(s) | Storage::Indirect(s) => s,
                    Storage::Global(_) => unreachable!("params are function-owned"),
                })
                .collect();
            layout.ret_slot = match storage[func.ret.0 as usize] {
                Storage::Direct(s) => s,
                _ => unreachable!("ret vars are never address-taken globals"),
            };
        }
        let mut site_class = HashMap::new();
        for func in &program.functions {
            for (idx, ins) in func.body.iter().enumerate() {
                if let Instr::Assign(_, Rvalue::Alloc(_) | Rvalue::AllocDyn(_)) = ins {
                    let site = AllocSite {
                        func: func.id,
                        idx: idx as u32,
                    };
                    if let Some(c) = pt.class_of_site(site) {
                        site_class.insert((func.id, idx as u32), c);
                    }
                }
            }
        }
        let field_offset = program.fields.iter().map(|fi| fi.offset).collect();
        let elem_field = program.elem_field_opt();
        let tracer = opts.trace.map(|cfg| Arc::new(trace::Recorder::new(cfg)));
        let space = tl2::Space::new(opts.heap_cells);
        if let Some(t) = &tracer {
            space.set_observer(Some(Arc::clone(t) as Arc<dyn tl2::StmObserver>));
        }
        let mut m = Machine {
            program,
            pt,
            mode,
            space,
            // Address 0 is null; start allocating at 1.
            brk: AtomicU64::new(1),
            allocs: RwLock::new(Vec::new()),
            mg: Arc::new(mglock::Runtime::with_config(opts.mg_config)),
            storage,
            layouts,
            site_class,
            field_offset,
            elem_field,
            out: Mutex::new(Vec::new()),
            seed: opts.seed,
            quantum: opts.quantum,
            costs: opts.costs,
            faults: opts.faults,
            stm_abort_budget: opts.stm_abort_budget,
            fault_stats: crate::fault::FaultStats::default(),
            tracer,
            sentinel: opts
                .sentinel
                .map(|cfg| Arc::new(sentinel::Sentinel::new(cfg))),
            weaken: opts.weaken,
            sched: opts.sched,
            repairs: std::collections::BTreeMap::new(),
            metrics: opts
                .metrics
                .map(|reg| Arc::new(crate::metrics::Metrics::new(reg))),
        };
        for r in opts.repairs {
            if let Some(s) = &m.sentinel {
                s.install_repair(r.section, r.candidate);
            }
            m.repairs.insert(r.section, r.specs);
        }
        // Allocate the globals' cells.
        let globals = m.program.globals.clone();
        for g in globals {
            let class = m.pt.class_of_var(g);
            let addr = m.alloc(1, class).expect("heap too small for globals");
            m.storage[g.0 as usize] = Storage::Global(addr);
        }
        m
    }

    /// Bump-allocates `n` cells (fresh cells are zero) and records the
    /// extent for concrete-denotation queries.
    pub(crate) fn alloc(&self, n: usize, class: PtsClass) -> Result<u64, Exc> {
        let n = n.max(1) as u64;
        let base = self.brk.fetch_add(n, Ordering::Relaxed);
        if base + n > self.space.len() as u64 {
            return Err(InterpError::OutOfMemory.into());
        }
        self.allocs.write().push(AllocMeta {
            base,
            len: n,
            class,
        });
        Ok(base)
    }

    /// Heap cells allocated so far.
    pub fn heap_used(&self) -> u64 {
        self.brk.load(Ordering::Relaxed)
    }

    /// Lines written by `print` intrinsics, in arrival order.
    pub fn output(&self) -> Vec<String> {
        self.out.lock().clone()
    }

    /// STM commit/abort counters (meaningful in [`ExecMode::Stm`]).
    pub fn stm_stats(&self) -> tl2::TxnStats {
        self.space.global_stats()
    }

    /// Multi-grain lock runtime statistics.
    pub fn mg_stats(&self) -> &mglock::Stats {
        self.mg.stats()
    }

    /// Counters of faults actually injected (all zero without a plan).
    pub fn fault_stats(&self) -> &crate::fault::FaultStats {
        &self.fault_stats
    }

    /// True when every lock node is fully released — no session still
    /// holds a grant. Chaos suites assert this after crashing workers.
    pub fn locks_quiescent(&self) -> bool {
        self.mg.quiescent()
    }

    /// Snapshot of every degradation-ladder counter: STM
    /// commits/aborts/irrevocable fallbacks, lock-session poisoning and
    /// unwind releases, detected deadlocks and timeouts, and injected
    /// faults by class.
    pub fn degradation_report(&self) -> lockinfer::DegradationReport {
        let stm = self.space.global_stats();
        let mg = self.mg.stats();
        let fs = &self.fault_stats;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let (sentinel_violations, sections_quarantined, sections_healed) = match &self.sentinel {
            Some(s) => (
                s.sentinel_violations(),
                s.sections_quarantined(),
                s.sections_healed(),
            ),
            None => (0, 0, 0),
        };
        lockinfer::DegradationReport {
            stm_commits: stm.commits,
            stm_aborts: stm.aborts,
            stm_fallbacks: stm.fallbacks,
            poisoned_sessions: ld(&mg.poisoned_sessions),
            unwind_releases: ld(&mg.unwind_releases),
            deadlocks_detected: ld(&mg.deadlocks_detected),
            lock_timeouts: ld(&mg.timeouts),
            injected_panics: ld(&fs.injected_panics),
            injected_aborts: ld(&fs.injected_aborts),
            injected_delays: ld(&fs.injected_delays),
            injected_stalls: ld(&fs.injected_stalls),
            lock_revalidations: ld(&fs.lock_revalidations),
            sentinel_violations,
            sections_quarantined,
            sections_healed,
        }
    }

    /// The online lockset sentinel, when the machine was built with
    /// one (see [`Options::sentinel`]): violations, quarantine state,
    /// ladder history.
    pub fn sentinel(&self) -> Option<&sentinel::Sentinel> {
        self.sentinel.as_deref()
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// True when this machine was built with tracing enabled.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Drains the recorded events into a merged, epoch-ordered trace
    /// stamped with this machine's mode/seed metadata and the current
    /// allocation-table snapshot (the bump allocator never reuses
    /// addresses, so the final table is valid for every recorded
    /// access). Returns `None` when tracing was not enabled. A second
    /// call returns only events recorded since the first.
    pub fn take_trace(&self) -> Option<trace::Trace> {
        let rec = self.tracer.as_ref()?;
        let allocs = self
            .allocs
            .read()
            .iter()
            .map(|a| trace::AllocRecord {
                base: a.base,
                len: a.len,
                class: a.class.0,
            })
            .collect();
        let meta = vec![
            ("mode".to_owned(), format!("{:?}", self.mode)),
            ("seed".to_owned(), self.seed.to_string()),
        ];
        Some(rec.take(meta, allocs))
    }

    /// `(allocation base, points-to class)` of the cell at `loc` in a
    /// single allocation-table lookup — the licensing extent the
    /// sentinel resolves lazily on its hot path.
    pub(crate) fn extent_class(&self, loc: u64) -> Option<(u64, u32)> {
        self.alloc_meta_of(loc).map(|m| (m.base, m.class.0))
    }

    fn alloc_meta_of(&self, loc: u64) -> Option<AllocMeta> {
        let allocs = self.allocs.read();
        // Allocation bases are monotonically increasing: binary search.
        let idx = allocs.partition_point(|a| a.base <= loc);
        if idx == 0 {
            return None;
        }
        let meta = allocs[idx - 1];
        (loc < meta.base + meta.len).then_some(meta)
    }
}

impl LocationModel for Machine {
    fn class_of(&self, loc: u64) -> Option<PtsClass> {
        self.alloc_meta_of(loc).map(|m| m.class)
    }

    fn extent_of(&self, loc: u64) -> Option<(u64, u64)> {
        self.alloc_meta_of(loc).map(|m| (m.base, m.len))
    }
}
