//! Live run metrics (`ali_run_*`), published into an [`obs::Registry`]
//! handed in via [`Options::metrics`](crate::Options).
//!
//! The hot path touches only pre-resolved handles — relaxed atomic
//! increments, no registry lookups, no locks — so a metrics-armed run
//! executes the identical deterministic schedule and produces the
//! identical trace as an unarmed one (the `metrics-overhead` bench
//! gates the wall-clock cost). End-of-run totals from the lock
//! runtime, the STM space, and the sentinel are scraped once by
//! [`Machine::publish_metrics`](crate::Machine::publish_metrics).

use obs::Registry;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use trace::FaultClass;

/// Pre-resolved handles for every hot-path series.
pub(crate) struct Metrics {
    pub registry: Arc<Registry>,
    /// Section entries, every nesting level and every STM retry —
    /// mirrors the trace's `section_enter` count.
    pub section_entries: obs::Counter,
    /// STM abort-driven section retries.
    pub section_retries: obs::Counter,
    /// Injected faults, indexed like [`FAULT_CLASSES`].
    pub faults: [obs::Counter; 4],
    /// Individual lock-node grants taken by `acquire_all`.
    pub lock_acquisitions: obs::Counter,
    /// Multi-grain plan revalidation retries.
    pub revalidations: obs::Counter,
    /// Wake-policy ranking decisions and threads woken by them.
    pub wake_decisions: obs::Counter,
    pub wake_woken: obs::Counter,
    /// Outermost-section ticks before/after the acquisition point
    /// (lock modes only — STM has no `plan_complete` marker).
    pub wait_ticks: obs::Hist,
    pub hold_ticks: obs::Hist,
}

/// Index order of [`Metrics::faults`].
const FAULT_CLASSES: [(&str, FaultClass); 4] = [
    ("panic", FaultClass::Panic),
    ("abort", FaultClass::SpuriousAbort),
    ("stall", FaultClass::Stall),
    ("delay", FaultClass::WakeupDelay),
];

impl Metrics {
    pub fn new(registry: Arc<Registry>) -> Metrics {
        // Live series are label-free (`Registry::snapshot`); the class
        // is part of the name instead.
        let faults =
            FAULT_CLASSES.map(|(tag, _)| registry.counter(&format!("ali_run_faults_{tag}_total")));
        Metrics {
            section_entries: registry.counter("ali_run_section_entries_total"),
            section_retries: registry.counter("ali_run_section_retries_total"),
            faults,
            lock_acquisitions: registry.counter("ali_run_lock_acquisitions_total"),
            revalidations: registry.counter("ali_run_lock_revalidations_total"),
            wake_decisions: registry.counter("ali_run_wake_decisions_total"),
            wake_woken: registry.counter("ali_run_wake_woken_total"),
            wait_ticks: registry.histogram("ali_run_section_wait_ticks"),
            hold_ticks: registry.histogram("ali_run_section_hold_ticks"),
            registry,
        }
    }

    pub fn fault(&self, class: FaultClass) {
        let i = FAULT_CLASSES
            .iter()
            .position(|&(_, c)| c == class)
            .expect("every fault class is indexed");
        self.faults[i].inc();
    }
}

impl crate::Machine {
    /// Scrapes the end-of-run totals — multi-grain lock runtime, STM
    /// space, sentinel ladder — into `ali_run_*` gauges on the
    /// registry this machine was built with. A no-op without one.
    /// Idempotent: gauges are set, not accumulated, so calling after
    /// each phase of a run is safe.
    pub fn publish_metrics(&self) {
        let Some(mx) = &self.metrics else { return };
        let reg = &mx.registry;
        let set = |name: &str, v: u64| reg.gauge(name).set(v);
        let mg = self.mg_stats();
        set("ali_run_mg_batches", mg.batches.load(Ordering::Relaxed));
        set(
            "ali_run_mg_node_acquisitions",
            mg.node_acquisitions.load(Ordering::Relaxed),
        );
        set(
            "ali_run_mg_poisoned_sessions",
            mg.poisoned_sessions.load(Ordering::Relaxed),
        );
        set(
            "ali_run_mg_unwind_releases",
            mg.unwind_releases.load(Ordering::Relaxed),
        );
        let stm = self.stm_stats();
        set("ali_run_stm_commits", stm.commits);
        set("ali_run_stm_aborts", stm.aborts);
        set("ali_run_stm_fallbacks", stm.fallbacks);
        let (violations, quarantined, healed) = match self.sentinel() {
            Some(s) => (
                s.sentinel_violations(),
                s.sections_quarantined(),
                s.sections_healed(),
            ),
            None => (0, 0, 0),
        };
        set("ali_run_sentinel_violations", violations);
        set("ali_run_sections_quarantined", quarantined);
        set("ali_run_sections_healed", healed);
        set("ali_run_heap_used", self.heap_used());
    }
}
