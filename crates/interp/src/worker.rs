//! Per-thread execution: the instruction loop, the four section
//! disciplines, and the thread harness.

use crate::error::{Exc, InterpError};
use crate::fault::{FaultPanic, Injector};
use crate::machine::{ExecMode, Machine, Storage};
use crate::sim::Sim;
use lir::{ArithOp, CmpOp, FnId, Instr, Intrinsic, LockSpec, PathOp, Rvalue, SectionId, VarId};
use lockscheme::ConcreteLock;
use mglock::{Access, Descriptor, FineAddr, Session};
use pointsto::PtsClass;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tl2::Backoff;

const MAX_CALL_DEPTH: u32 = 4000;

enum Flow {
    Next,
    Jump(usize),
    Return(i64),
}

pub(crate) struct Worker<'m> {
    m: &'m Machine,
    tid: u32,
    rng: u64,
    session: Session,
    txn: Option<tl2::Txn<'m>>,
    /// STM section nesting depth (lock modes use the session's level).
    sec_depth: u32,
    depth: u32,
    held_concrete: Vec<ConcreteLock>,
    my_allocs: Vec<(u64, u64)>,
    /// Section currently open (Validate diagnostics).
    current_section: SectionId,
    /// Location of the instruction being executed (diagnostics).
    cur_fn: FnId,
    cur_pc: usize,
    /// Virtual-time scheduler (None = real-time execution).
    sim: Option<Arc<Sim>>,
    /// Ticks accumulated since the last scheduling point.
    vticks: u64,
    /// Fault injection stream (None = no plan configured).
    injector: Option<Injector>,
    /// Aborts suffered by the currently-retrying STM section; at
    /// `Machine::stm_abort_budget` the next attempt escalates.
    section_aborts: u64,
    /// Next STM section entry begins irrevocably (starvation fallback).
    escalate: bool,
    /// This thread's event sink (None = machine not built with tracing).
    tracer: Option<Arc<trace::ThreadRecorder>>,
    /// Set while lock descriptors are re-evaluated *under* the freshly
    /// acquired grants (drift detection): those path reads are part of
    /// the acquisition protocol, not of the section body, so they are
    /// exempt from both Validate-mode coverage checks and the trace.
    revalidating: bool,
    /// In-section accesses seen so far, driving the sentinel's sampling
    /// schedule (a per-worker monotone counter, so the schedule is
    /// deterministic under the virtual-time scheduler).
    accesses: u64,
    /// A sentinel violation was recorded during the current outermost
    /// section execution; consumed at close — dirty executions do not
    /// count toward a quarantined section's probation.
    section_violated: bool,
    /// Outermost lock-section enter / plan-acquisition clocks feeding
    /// the live `ali_run_section_{wait,hold}_ticks` histograms
    /// (meaningful only while [`Machine::metrics`] is armed).
    sect_enter_clock: u64,
    sect_plan_clock: u64,
}

impl<'m> Worker<'m> {
    pub(crate) fn new(m: &'m Machine, tid: u32) -> Worker<'m> {
        let tracer = m.tracer.as_ref().map(|r| r.register(tid));
        let mut session = Session::new(Arc::clone(&m.mg));
        session.set_observer(tracer.clone().map(|t| t as Arc<dyn mglock::LockObserver>));
        Worker {
            m,
            tid,
            rng: splitmix(m.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid as u64 + 1))),
            session,
            txn: None,
            sec_depth: 0,
            depth: 0,
            held_concrete: Vec::new(),
            my_allocs: Vec::new(),
            current_section: SectionId(0),
            cur_fn: FnId(0),
            cur_pc: 0,
            sim: None,
            vticks: 0,
            injector: m.faults.map(|plan| Injector::new(plan, tid)),
            section_aborts: 0,
            escalate: false,
            tracer,
            revalidating: false,
            accesses: 0,
            section_violated: false,
            sect_enter_clock: 0,
            sect_plan_clock: 0,
        }
    }

    pub(crate) fn with_sim(m: &'m Machine, tid: u32, sim: Arc<Sim>) -> Worker<'m> {
        let mut w = Worker::new(m, tid);
        w.sim = Some(sim);
        w
    }

    /// Charges virtual time; yields to the scheduler at quantum
    /// boundaries. A no-op in real-time mode.
    #[inline]
    fn tick(&mut self, n: u64) {
        if let Some(sim) = &self.sim {
            self.vticks += n;
            if self.vticks >= sim.quantum {
                let t = std::mem::take(&mut self.vticks);
                sim.advance(self.tid as usize, t);
            }
        }
    }

    /// Publishes all pending ticks to the scheduler immediately (used
    /// at synchronization points so lock ordering sees exact clocks).
    fn flush_ticks(&mut self) {
        if let Some(sim) = &self.sim {
            let t = std::mem::take(&mut self.vticks);
            sim.advance(self.tid as usize, t);
        }
    }

    /// Announces a lock release to the virtual scheduler, tracing the
    /// wake policy's `["wk", …]` decisions (none on the legacy path),
    /// then re-enters the schedule before executing anything further —
    /// a promoted waiter with a smaller `(clock, rank, tid)` must
    /// record its grants first, or the epoch order of the merged trace
    /// would depend on physical thread timing. No-op in real time.
    fn sim_release(&mut self) {
        let Some(sim) = self.sim.clone() else { return };
        // The decision callback runs inside the scheduler's release
        // critical section, so `record` must not re-enter the
        // scheduler: pre-stamp the clock and append directly.
        self.sync_trace_clock();
        let tracer = self.tracer.clone();
        let mx = self.m.metrics.clone();
        sim.on_release_with(self.tid as usize, |g| {
            if let Some(mx) = &mx {
                mx.wake_decisions.inc();
                mx.wake_woken.add(g.woken as u64);
            }
            if let Some(t) = &tracer {
                t.record(trace::EventKind::WakeDecision {
                    node: g.node,
                    mode: g.mode,
                    depth: g.depth,
                    woken: g.woken,
                });
            }
        });
        if self.tracer.is_some() {
            self.flush_ticks();
        }
    }

    // ------------------------------------------------------------------
    // Tracing (all no-ops when the machine was built without a tracer)

    /// The thread's current virtual clock (0 in real-time runs).
    fn now(&self) -> u64 {
        match &self.sim {
            Some(sim) => sim.clock_of(self.tid as usize) + self.vticks,
            None => 0,
        }
    }

    /// Publishes the current clock to the recorder so runtime-side
    /// observer callbacks (lock grants, STM lifecycle) stamp correctly.
    fn sync_trace_clock(&self) {
        if let Some(t) = &self.tracer {
            t.set_clock(self.now());
        }
    }

    /// Records one event stamped with the current clock.
    fn trace_event(&self, kind: trace::EventKind) {
        if let Some(t) = &self.tracer {
            t.set_clock(self.now());
            t.record(kind);
        }
    }

    /// Records an in-section shared access. Accesses outside any
    /// section (including lock-spec evaluation, which runs before
    /// `acquire_all` at nesting level 0, and post-acquisition descriptor
    /// revalidation) are not part of the lockset discipline and are
    /// skipped.
    fn trace_access(&self, addr: u64, write: bool) {
        if self.tracer.is_none() || self.revalidating {
            return;
        }
        if self.sec_depth == 0 && self.session.nesting_level() == 0 {
            return;
        }
        self.trace_event(if write {
            trace::EventKind::Write { addr }
        } else {
            trace::EventKind::Read { addr }
        });
    }

    // ------------------------------------------------------------------
    // Online lockset sentinel (all no-ops when the machine has none)

    /// Inline Fig. 6 licensing check against the live held-mode set.
    /// Runs *after* the access completed, so an STM footprint already
    /// contains the cell it just touched. Exempt, like the post-hoc
    /// validator: protocol reads (descriptor revalidation), accesses
    /// outside any section, this thread's section-private allocations
    /// (Lemma 2) — plus whatever the sampling schedule skips.
    ///
    /// A violation is recorded, never fatal: the section completes, and
    /// a first offense demotes it on the quarantine ladder (traced as a
    /// `["qr", …]` event so replay sees the transition).
    fn sentinel_check(&mut self, addr: u64, write: bool) {
        let Some(sent) = &self.m.sentinel else { return };
        if self.revalidating || (self.sec_depth == 0 && self.session.nesting_level() == 0) {
            return;
        }
        let n = self.accesses;
        self.accesses += 1;
        if !sent.config().should_check(n) {
            return;
        }
        // `my_allocs` bases are monotone (allocation order), so the
        // Lemma 2 exemption is a binary search — sections that allocate
        // heavily would otherwise pay a linear scan per access.
        let i = self.my_allocs.partition_point(|&(b, _)| b <= addr);
        if i > 0 {
            let (b, l) = self.my_allocs[i - 1];
            if addr < b + l {
                return;
            }
        }
        let licensed = match self.m.mode {
            // Transactional discipline: the access is sound iff the
            // transaction tracks the cell (or runs irrevocably under
            // the commit gate). A miss means the access bypassed the
            // transaction.
            ExecMode::Stm => self
                .txn
                .as_ref()
                .is_some_and(|t| t.is_tracked(addr as usize)),
            _ => sentinel::licensed(self.session.held_modes(), addr, write, || {
                self.m.extent_class(addr)
            }),
        };
        if licensed {
            return;
        }
        self.section_violated = true;
        let held = self.session.held_modes().collect();
        // Clock and access counter key the canonical violation ledger
        // `(clock, tid, seq)` — both are schedule state, not
        // OS-thread-arrival state, so re-inference input is
        // deterministic at every thread count.
        let v = sentinel::Violation::new(
            self.current_section.0,
            self.tid,
            addr,
            write,
            self.now(),
            n,
            held,
        );
        if let Some(ev) = sent.report_violation(v) {
            self.trace_quarantine(ev);
            // A demotion of a section running its repaired scheme
            // revokes the repair: it did not hold up, so the section
            // falls back to the ordinary quarantine ladder.
            if let Some(candidate) = sent.revoke_repair(ev.section) {
                self.trace_event(trace::EventKind::Reinfer {
                    section: ev.section,
                    candidate,
                    accepted: false,
                });
            }
        }
    }

    /// Is this lock spec dropped by the weakened-inference fault plan?
    /// Consulted by both the planning pass and the quiet revalidation
    /// pass: the two must agree, or revalidation would retry forever.
    fn spec_dropped(&self, section: u32, index: usize) -> bool {
        self.m
            .weaken
            .is_some_and(|w| w.section == section && w.drop_index == index)
    }

    /// Reports one finished outermost section execution to the
    /// quarantine ladder; a completed probation re-admits the section,
    /// traced as a heal `["qr", …]` event.
    fn note_section_closed(&mut self, section: u32) {
        let Some(sent) = &self.m.sentinel else { return };
        let clean = !self.section_violated;
        self.section_violated = false;
        if let Some(ev) = sent.section_closed(section, clean) {
            self.trace_quarantine(ev);
            // A heal with a staged repair re-admits the section onto
            // the repaired scheme rather than the seed scheme.
            if ev.healed {
                if let Some(candidate) = sent.activate_repair(section) {
                    self.trace_event(trace::EventKind::Reinfer {
                        section,
                        candidate,
                        accepted: true,
                    });
                }
            }
        }
    }

    fn trace_quarantine(&self, ev: sentinel::LadderEvent) {
        self.trace_event(trace::EventKind::Quarantine {
            section: ev.section,
            healed: ev.healed,
            probation: ev.probation,
        });
    }

    pub(crate) fn call(&mut self, f: FnId, args: &[i64]) -> Result<i64, Exc> {
        let m = self.m;
        self.depth += 1;
        if self.depth > MAX_CALL_DEPTH {
            return Err(InterpError::Fault {
                func: m.program.fn_name(f).to_owned(),
                pc: 0,
                detail: "call stack overflow".into(),
            }
            .into());
        }
        let layout = &m.layouts[f.0 as usize];
        let mut frame = vec![0i64; layout.n_slots as usize];
        for &(slot, class) in &layout.heapified {
            frame[slot as usize] = self.alloc_cells(1, class)? as i64;
        }
        let params = m.program.func(f).params.clone();
        for (p, &a) in params.iter().zip(args) {
            self.write_var(&mut frame, *p, a)?;
        }
        let r = self.exec(f, &mut frame);
        self.depth -= 1;
        r
    }

    fn exec(&mut self, f: FnId, frame: &mut Vec<i64>) -> Result<i64, Exc> {
        let m = self.m;
        let program = Arc::clone(&m.program);
        let body = &program.func(f).body;
        let mut pc: usize = 0;
        // Set when *this frame* owns an open STM transaction: the pc of
        // the section-entry instruction and the frame snapshot.
        let mut retry: Option<(usize, Vec<i64>)> = None;
        let mut backoff = Backoff::new();
        loop {
            let ins = &body[pc];
            self.cur_fn = f;
            self.cur_pc = pc;
            self.tick(1);
            self.maybe_inject_panic();
            let result: Result<Flow, Exc> = match ins {
                Instr::EnterAtomic(_) | Instr::AcquireAll(..) => {
                    match self.section_enter(ins, frame, f) {
                        Ok(owns_txn) => {
                            if owns_txn {
                                retry = Some((pc, frame.clone()));
                            }
                            Ok(Flow::Next)
                        }
                        Err(e) => Err(e),
                    }
                }
                Instr::ExitAtomic(_) | Instr::ReleaseAll(_) => match self.section_exit(ins) {
                    Ok(closed_all) => {
                        if closed_all {
                            retry = None;
                            // The section is over: its abort budget and
                            // contention backoff start fresh.
                            self.section_aborts = 0;
                            self.escalate = false;
                            backoff.reset();
                        }
                        Ok(Flow::Next)
                    }
                    Err(e) => Err(e),
                },
                _ => self.step(f, ins, frame, pc),
            };
            match result {
                Ok(Flow::Next) => pc += 1,
                Ok(Flow::Jump(t)) => pc = t,
                Ok(Flow::Return(v)) => return Ok(v),
                Err(Exc::Abort) => match &retry {
                    Some((rpc, snapshot)) => {
                        self.txn = None;
                        self.sec_depth = 0;
                        // The aborted attempt's private allocations are
                        // unreachable (the allocator never reuses
                        // addresses); drop their Lemma 2 exemptions.
                        self.my_allocs.clear();
                        frame.clone_from(snapshot);
                        pc = *rpc;
                        self.sync_trace_clock();
                        m.space.note_abort_by(self.tid as u64);
                        self.section_aborts += 1;
                        if let Some(mx) = &m.metrics {
                            mx.section_retries.inc();
                        }
                        if self.section_aborts >= m.stm_abort_budget {
                            // Starving: the next attempt runs
                            // irrevocably (see `section_enter`).
                            self.escalate = true;
                        }
                        let spins = backoff.spins();
                        if self.sim.is_some() {
                            self.tick(m.costs.stm_abort + spins as u64);
                        } else {
                            for _ in 0..spins {
                                std::hint::spin_loop();
                            }
                        }
                    }
                    None => return Err(Exc::Abort),
                },
                Err(e) => return Err(e),
            }
        }
    }

    fn step(&mut self, f: FnId, ins: &Instr, frame: &mut [i64], pc: usize) -> Result<Flow, Exc> {
        let m = self.m;
        match ins {
            Instr::Assign(x, rv) => {
                let val = match rv {
                    Rvalue::Copy(y) => self.read_var(frame, *y)?,
                    Rvalue::AddrOf(y) => match m.storage[y.0 as usize] {
                        Storage::Indirect(s) => frame[s as usize],
                        Storage::Global(a) => a as i64,
                        Storage::Direct(_) => {
                            return Err(self.fault(f, pc, "address of unheapified local"))
                        }
                    },
                    Rvalue::Load(y) => {
                        let a = self.read_var(frame, *y)?;
                        self.heap_read(a, f, pc)?
                    }
                    Rvalue::FieldAddr(y, fd) => {
                        let a = self.read_var(frame, *y)?;
                        if a <= 0 {
                            return Err(self.fault(f, pc, "field of null"));
                        }
                        a + m.field_offset[fd.0 as usize] as i64
                    }
                    Rvalue::DynAddr(y, z) => {
                        let a = self.read_var(frame, *y)?;
                        let i = self.read_var(frame, *z)?;
                        if a <= 0 {
                            return Err(self.fault(f, pc, "index of null"));
                        }
                        if i < 0 {
                            return Err(self.fault(f, pc, "negative index"));
                        }
                        a + i
                    }
                    Rvalue::Alloc(n) => {
                        let class = self.class_of_site(f, pc)?;
                        self.alloc_cells(*n, class)? as i64
                    }
                    Rvalue::AllocDyn(z) => {
                        let n = self.read_var(frame, *z)?;
                        if n < 0 {
                            return Err(self.fault(f, pc, "negative allocation size"));
                        }
                        let class = self.class_of_site(f, pc)?;
                        self.alloc_cells(n as usize, class)? as i64
                    }
                    Rvalue::Null => 0,
                    Rvalue::ConstInt(c) => *c,
                    Rvalue::Arith(op, a, b) => {
                        let (a, b) = (self.read_var(frame, *a)?, self.read_var(frame, *b)?);
                        self.arith(*op, a, b, f, pc)?
                    }
                    Rvalue::Cmp(op, a, b) => {
                        let (a, b) = (self.read_var(frame, *a)?, self.read_var(frame, *b)?);
                        i64::from(match op {
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                        })
                    }
                    Rvalue::Call(g, args) => {
                        let mut vals = Vec::with_capacity(args.len());
                        for a in args {
                            vals.push(self.read_var(frame, *a)?);
                        }
                        self.call(*g, &vals)?
                    }
                    Rvalue::Intrinsic(i, args) => {
                        let mut vals = Vec::with_capacity(args.len());
                        for a in args {
                            vals.push(self.read_var(frame, *a)?);
                        }
                        self.intrinsic(*i, &vals, f, pc)?
                    }
                };
                self.write_var(frame, *x, val)?;
                Ok(Flow::Next)
            }
            Instr::Store(x, y) => {
                let v = self.read_var(frame, *y)?;
                let a = self.read_var(frame, *x)?;
                self.heap_write(a, v, f, pc)?;
                Ok(Flow::Next)
            }
            Instr::Jump(t) => Ok(Flow::Jump(*t as usize)),
            Instr::Branch(v, t, e) => {
                let c = self.read_var(frame, *v)?;
                Ok(Flow::Jump(if c != 0 { *t as usize } else { *e as usize }))
            }
            Instr::Ret => {
                let ret = m.program.func(f).ret;
                Ok(Flow::Return(self.read_var(frame, ret)?))
            }
            Instr::Nop => Ok(Flow::Next),
            Instr::EnterAtomic(_)
            | Instr::ExitAtomic(_)
            | Instr::AcquireAll(..)
            | Instr::ReleaseAll(_) => unreachable!("section markers handled by exec"),
        }
    }

    fn arith(&mut self, op: ArithOp, a: i64, b: i64, f: FnId, pc: usize) -> Result<i64, Exc> {
        Ok(match op {
            ArithOp::Add => a.wrapping_add(b),
            ArithOp::Sub => a.wrapping_sub(b),
            ArithOp::Mul => a.wrapping_mul(b),
            ArithOp::Div => {
                if b == 0 {
                    return Err(InterpError::DivByZero {
                        func: self.m.program.fn_name(f).to_owned(),
                        pc,
                    }
                    .into());
                }
                a.wrapping_div(b)
            }
            ArithOp::Rem => {
                if b == 0 {
                    return Err(InterpError::DivByZero {
                        func: self.m.program.fn_name(f).to_owned(),
                        pc,
                    }
                    .into());
                }
                a.wrapping_rem(b)
            }
            ArithOp::And => a & b,
            ArithOp::Or => a | b,
            ArithOp::Xor => a ^ b,
            ArithOp::Shl => a.wrapping_shl(b as u32),
            ArithOp::Shr => a.wrapping_shr(b as u32),
        })
    }

    fn intrinsic(&mut self, i: Intrinsic, vals: &[i64], f: FnId, pc: usize) -> Result<i64, Exc> {
        match i {
            Intrinsic::Nops => {
                let n = vals[0].max(0) as u64;
                if self.sim.is_some() {
                    self.tick(n);
                } else {
                    for _ in 0..n {
                        std::hint::spin_loop();
                    }
                }
                Ok(0)
            }
            Intrinsic::Rand => {
                self.rng = splitmix(self.rng);
                let n = vals[0];
                Ok(if n > 0 {
                    ((self.rng >> 11) % n as u64) as i64
                } else {
                    0
                })
            }
            Intrinsic::Tid => Ok(self.tid as i64),
            Intrinsic::Print => {
                self.m.out.lock().push(vals[0].to_string());
                Ok(0)
            }
            Intrinsic::Assert => {
                if vals[0] == 0 {
                    return Err(InterpError::AssertFailed {
                        func: self.m.program.fn_name(f).to_owned(),
                        pc,
                    }
                    .into());
                }
                Ok(0)
            }
        }
    }

    // ------------------------------------------------------------------
    // Variables and memory

    fn read_var(&mut self, frame: &[i64], v: VarId) -> Result<i64, Exc> {
        let a = match self.m.storage[v.0 as usize] {
            Storage::Direct(s) => return Ok(frame[s as usize]),
            Storage::Indirect(s) => frame[s as usize] as u64,
            Storage::Global(a) => a,
        };
        self.check_var_access(a, false)?;
        self.trace_access(a, false);
        let val = self.heap_read_raw(a)?;
        self.sentinel_check(a, false);
        Ok(val)
    }

    fn write_var(&mut self, frame: &mut [i64], v: VarId, val: i64) -> Result<(), Exc> {
        let a = match self.m.storage[v.0 as usize] {
            Storage::Direct(s) => {
                frame[s as usize] = val;
                return Ok(());
            }
            Storage::Indirect(s) => frame[s as usize] as u64,
            Storage::Global(a) => a,
        };
        self.check_var_access(a, true)?;
        self.trace_access(a, true);
        self.heap_write_raw(a, val, true)?;
        self.sentinel_check(a, true);
        Ok(())
    }

    /// Validate-mode coverage check for variable cells (globals and
    /// heapified locals).
    fn check_var_access(&self, a: u64, write: bool) -> Result<(), Exc> {
        // Lock-spec evaluation happens before `acquire_all`, while the
        // nesting level is still 0, so it is naturally exempt here;
        // post-acquisition revalidation runs at level 1 and is exempted
        // explicitly.
        if self.m.mode == ExecMode::Validate
            && !self.revalidating
            && self.session.nesting_level() > 0
        {
            self.check_protected(a, write, self.cur_fn, self.cur_pc)?;
        }
        Ok(())
    }

    fn check_addr(&self, addr: i64, f: FnId, pc: usize) -> Result<u64, Exc> {
        if addr <= 0 || addr as usize >= self.m.space.len() {
            return Err(self.fault(f, pc, format!("bad address {addr}")));
        }
        Ok(addr as u64)
    }

    fn heap_read(&mut self, addr: i64, f: FnId, pc: usize) -> Result<i64, Exc> {
        let a = self.check_addr(addr, f, pc)?;
        if self.m.mode == ExecMode::Validate && self.session.nesting_level() > 0 {
            self.check_protected(a, false, f, pc)?;
        }
        self.trace_access(a, false);
        let val = self.heap_read_raw(a)?;
        self.sentinel_check(a, false);
        Ok(val)
    }

    fn heap_write(&mut self, addr: i64, val: i64, f: FnId, pc: usize) -> Result<(), Exc> {
        let a = self.check_addr(addr, f, pc)?;
        if self.m.mode == ExecMode::Validate && self.session.nesting_level() > 0 {
            self.check_protected(a, true, f, pc)?;
        }
        self.trace_access(a, true);
        self.heap_write_raw(a, val, false)?;
        self.sentinel_check(a, true);
        Ok(())
    }

    /// Raw cell read: transactional inside an STM section, direct
    /// otherwise.
    fn heap_read_raw(&mut self, a: u64) -> Result<i64, Exc> {
        self.maybe_inject_stm_abort()?;
        match self.txn.as_mut() {
            Some(txn) => {
                let v = txn.read(a as usize).map_err(|_| Exc::Abort);
                if self.sim.is_some() {
                    self.tick(self.m.costs.stm_read);
                }
                v
            }
            None => Ok(self.m.space.read_direct(a as usize)),
        }
    }

    fn heap_write_raw(&mut self, a: u64, val: i64, _var_cell: bool) -> Result<(), Exc> {
        self.maybe_inject_stm_abort()?;
        match self.txn.as_mut() {
            Some(txn) => {
                txn.write(a as usize, val);
                if self.sim.is_some() {
                    self.tick(self.m.costs.stm_write);
                }
                Ok(())
            }
            None => {
                self.m.space.write_direct(a as usize, val);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Live metrics (all no-ops when the machine has no registry)

    /// Counts an injected fault on the live registry.
    fn metric_fault(&self, class: trace::FaultClass) {
        if let Some(mx) = &self.m.metrics {
            mx.fault(class);
        }
    }

    /// Marks the outermost acquisition point: wait ends here, hold
    /// begins. Lock modes only — STM has no plan to complete.
    fn metric_plan_complete(&mut self) {
        let m = self.m;
        if let Some(mx) = &m.metrics {
            let now = self.now();
            mx.wait_ticks
                .observe(now.saturating_sub(self.sect_enter_clock));
            self.sect_plan_clock = now;
        }
    }

    /// Closes the outermost lock section's hold interval.
    fn metric_section_closed(&mut self) {
        let m = self.m;
        if let Some(mx) = &m.metrics {
            mx.hold_ticks
                .observe(self.now().saturating_sub(self.sect_plan_clock));
        }
    }

    // ------------------------------------------------------------------
    // Fault injection points (all no-ops without a plan)

    /// Injected mid-section panic: fires only inside an atomic section
    /// (any discipline), via `resume_unwind` so drop glue runs — the
    /// session and transaction release on the way out — without
    /// tripping the global panic hook.
    fn maybe_inject_panic(&mut self) {
        let in_section = self.sec_depth > 0 || self.session.nesting_level() > 0;
        if !in_section {
            return;
        }
        let fire = match self.injector.as_mut() {
            Some(inj) => inj.take_panic(),
            None => false,
        };
        if fire {
            self.m
                .fault_stats
                .injected_panics
                .fetch_add(1, Ordering::Relaxed);
            self.trace_event(trace::EventKind::Fault {
                class: trace::FaultClass::Panic,
            });
            self.metric_fault(trace::FaultClass::Panic);
            std::panic::resume_unwind(Box::new(FaultPanic { tid: self.tid }));
        }
    }

    /// Injected spurious abort on a transactional access. Suppressed
    /// while irrevocable: an irrevocable transaction must never abort.
    fn maybe_inject_stm_abort(&mut self) -> Result<(), Exc> {
        let abortable = self.txn.as_ref().is_some_and(|t| !t.is_irrevocable());
        if !abortable {
            return Ok(());
        }
        let fire = match self.injector.as_mut() {
            Some(inj) => inj.take_stm_abort(),
            None => false,
        };
        if fire {
            self.m
                .fault_stats
                .injected_aborts
                .fetch_add(1, Ordering::Relaxed);
            self.trace_event(trace::EventKind::Fault {
                class: trace::FaultClass::SpuriousAbort,
            });
            self.metric_fault(trace::FaultClass::SpuriousAbort);
            return Err(Exc::Abort);
        }
        Ok(())
    }

    /// Injected delayed wakeup after a lock wait. Every wake path must
    /// route through this one helper (rather than consulting the
    /// injector inline) so new wait paths cannot diverge from the
    /// fault plan's delay stream or its accounting.
    fn injected_wakeup_delay(&mut self) {
        let delay = match self.injector.as_mut() {
            Some(inj) => inj.take_wakeup_delay(),
            None => None,
        };
        if let Some(t) = delay {
            self.m
                .fault_stats
                .injected_delays
                .fetch_add(1, Ordering::Relaxed);
            self.trace_event(trace::EventKind::Fault {
                class: trace::FaultClass::WakeupDelay,
            });
            self.metric_fault(trace::FaultClass::WakeupDelay);
            if self.sim.is_some() {
                self.tick(t);
            } else {
                for _ in 0..t {
                    std::hint::spin_loop();
                }
            }
        }
    }

    fn alloc_cells(&mut self, n: usize, class: PtsClass) -> Result<u64, Exc> {
        let base = self.m.alloc(n, class)?;
        let in_section = self.sec_depth > 0 || self.session.nesting_level() > 0;
        if in_section {
            self.trace_event(trace::EventKind::Alloc {
                base,
                len: n.max(1) as u64,
            });
        }
        if in_section && (self.m.mode == ExecMode::Validate || self.m.sentinel.is_some()) {
            // Cells allocated by this thread during the section are
            // private until it publishes them: exempt from coverage
            // (Lemma 2's reachability proviso). Both the Validate-mode
            // checker and the online sentinel consult this list.
            self.my_allocs.push((base, n.max(1) as u64));
        }
        Ok(base)
    }

    fn class_of_site(&self, f: FnId, pc: usize) -> Result<PtsClass, Exc> {
        self.m
            .site_class
            .get(&(f, pc as u32))
            .copied()
            .ok_or_else(|| {
                Exc::Err(InterpError::Internal {
                    detail: format!(
                        "allocation site {}:{pc} was not pre-registered",
                        self.m.program.fn_name(f)
                    ),
                })
            })
    }

    fn check_protected(&self, a: u64, write: bool, f: FnId, pc: usize) -> Result<(), Exc> {
        if self.my_allocs.iter().any(|&(b, l)| a >= b && a < b + l) {
            return Ok(());
        }
        let eff = if write { lir::Eff::Rw } else { lir::Eff::Ro };
        if self
            .held_concrete
            .iter()
            .any(|l| l.protects(a, eff, self.m))
        {
            return Ok(());
        }
        Err(InterpError::Unprotected {
            func: self.m.program.fn_name(f).to_owned(),
            pc,
            addr: a,
            write,
            section: self.current_section,
        }
        .into())
    }

    fn fault(&self, f: FnId, pc: usize, detail: impl Into<String>) -> Exc {
        Exc::Err(InterpError::Fault {
            func: self.m.program.fn_name(f).to_owned(),
            pc,
            detail: detail.into(),
        })
    }

    // ------------------------------------------------------------------
    // Atomic sections

    /// Enters a section; returns true when this frame now owns a fresh
    /// STM transaction (and must snapshot for retry).
    fn section_enter(&mut self, ins: &Instr, frame: &mut [i64], f: FnId) -> Result<bool, Exc> {
        let m = self.m;
        let sid = match ins {
            Instr::AcquireAll(s, _) | Instr::EnterAtomic(s) => *s,
            _ => unreachable!("section markers handled by exec"),
        };
        if self.tracer.is_some() {
            // Every nesting level (and every STM retry) records an
            // entry; lock grants follow at the outermost level only.
            self.trace_event(trace::EventKind::SectionEnter { section: sid.0 });
        }
        if let Some(mx) = &m.metrics {
            mx.section_entries.inc();
        }
        match m.mode {
            ExecMode::Global => {
                let outermost = self.session.nesting_level() == 0;
                if outermost {
                    self.current_section = sid;
                    self.section_violated = false;
                    self.sect_enter_clock = self.now();
                }
                self.session.to_acquire(Descriptor::Global {
                    access: Access::Write,
                });
                self.acquire_session(1)?;
                if outermost {
                    self.trace_event(trace::EventKind::PlanComplete);
                    self.metric_plan_complete();
                }
                Ok(false)
            }
            ExecMode::MultiGrain | ExecMode::Validate => {
                let specs = match ins {
                    Instr::AcquireAll(_, specs) => specs,
                    Instr::EnterAtomic(s) => {
                        return Err(InterpError::NeedsTransformedProgram { section: *s }.into())
                    }
                    _ => unreachable!(),
                };
                if self.session.nesting_level() > 0 {
                    // Nested entry: the outer level's grants cover it.
                    self.acquire_session(0)?;
                    return Ok(false);
                }
                self.current_section = sid;
                self.section_violated = false;
                self.sect_enter_clock = self.now();
                if m.sentinel.as_ref().is_some_and(|s| s.is_quarantined(sid.0)) {
                    // Quarantined: the section serves its probation
                    // under the trivially sound global scheme — one
                    // Root/X grant, no fine plan, and (since the grant
                    // covers every address) no revalidation loop.
                    self.held_concrete.clear();
                    if m.mode == ExecMode::Validate {
                        self.held_concrete.push(ConcreteLock::Global);
                    }
                    self.session.to_acquire(Descriptor::Global {
                        access: Access::Write,
                    });
                    self.acquire_session(1)?;
                    self.trace_event(trace::EventKind::PlanComplete);
                    self.metric_plan_complete();
                    return Ok(false);
                }
                // A healed section with an active repair plans the
                // repaired specs instead of the seed scheme. The
                // repaired plan is a fresh inference artifact, so the
                // weakened-seed fault does not apply to it — planning
                // and quiet revalidation skip the drop filter together
                // (they must agree, or revalidation retries forever).
                let repair = m
                    .sentinel
                    .as_ref()
                    .and_then(|s| s.active_repair(sid.0))
                    .and_then(|_| m.repairs.get(&sid.0));
                let (specs, filter_dropped) = match repair {
                    Some(r) => (r.as_slice(), false),
                    None => (specs.as_slice(), true),
                };
                loop {
                    self.held_concrete.clear();
                    let mut planned = Vec::new();
                    for (i, spec) in specs.iter().enumerate() {
                        if filter_dropped && self.spec_dropped(sid.0, i) {
                            continue;
                        }
                        if let Some((d, c)) = self.eval_spec(spec, frame, f)? {
                            self.session.to_acquire(d);
                            planned.push(d);
                            if m.mode == ExecMode::Validate {
                                self.held_concrete.push(c);
                            }
                        }
                    }
                    self.acquire_session(planned.len() as u64)?;
                    // The plan is fully granted at this clock. The
                    // first marker after the section entry is its
                    // acquisition point (wait ends, hold begins);
                    // markers from later loop iterations mark
                    // revalidation retries — `trace::profile` counts
                    // them apart instead of moving the split point.
                    self.trace_event(trace::EventKind::PlanComplete);
                    self.metric_plan_complete();
                    // Fine descriptors were evaluated *before* blocking.
                    // If the guarded structure moved while this thread
                    // waited (e.g. a concurrent section resized the
                    // array the path names), the locks now held cover a
                    // stale footprint. Re-evaluate under the grants and
                    // retry on drift; every retry implies some other
                    // section committed in between, so the loop makes
                    // system-wide progress.
                    if self.eval_specs_quiet(specs, frame, f, filter_dropped)? == planned {
                        break;
                    }
                    m.fault_stats
                        .lock_revalidations
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(mx) = &m.metrics {
                        mx.revalidations.inc();
                    }
                    self.session.release_all();
                    self.sim_release();
                }
                Ok(false)
            }
            ExecMode::Stm => {
                self.sec_depth += 1;
                if self.sec_depth == 1 {
                    self.current_section = sid;
                    self.section_violated = false;
                    if self.sim.is_some() {
                        self.tick(m.costs.txn_start);
                        // Make the transaction window visible at exact
                        // virtual time.
                        self.flush_ticks();
                    }
                    // A quarantined section runs irrevocably — the
                    // commit gate serializes it, the STM counterpart of
                    // the lock modes' global-scheme demotion.
                    let quarantined = m.sentinel.as_ref().is_some_and(|s| s.is_quarantined(sid.0));
                    self.txn = Some(if self.escalate || quarantined {
                        self.begin_irrevocable()
                    } else {
                        m.space.begin()
                    });
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// STM starvation fallback: begins an irrevocable transaction,
    /// waiting for the commit gate. Under the scheduler the wait is
    /// cooperative — we charge our own clock until the gate holder
    /// (whose clock then becomes the minimum) runs and releases it.
    fn begin_irrevocable(&mut self) -> tl2::Txn<'m> {
        if self.sim.is_some() {
            self.tick(self.m.costs.stm_fallback);
        }
        let mut backoff = Backoff::new();
        loop {
            self.sync_trace_clock();
            if let Some(txn) = self.m.space.try_begin_irrevocable_by(self.tid as u64) {
                return txn;
            }
            let spins = backoff.spins();
            if self.sim.is_some() {
                self.tick(spins as u64);
            } else {
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Acquires the queued locks: blocking in real time, cooperative
    /// try/wait under the virtual scheduler (waiters inherit the
    /// releaser's clock). Charges the protocol's virtual cost.
    ///
    /// Errors when the degradation policy trips: an acquisition timeout
    /// or detected deadlock in real time, a wedged scheduler under
    /// virtual time. Partially-acquired nodes are released by the
    /// session's drop (counted as an unwind release).
    fn acquire_session(&mut self, n_descriptors: u64) -> Result<(), Exc> {
        let stall = match self.injector.as_mut() {
            Some(inj) => inj.take_stall(),
            None => None,
        };
        if let Some(t) = stall {
            self.m
                .fault_stats
                .injected_stalls
                .fetch_add(1, Ordering::Relaxed);
            self.trace_event(trace::EventKind::Fault {
                class: trace::FaultClass::Stall,
            });
            self.metric_fault(trace::FaultClass::Stall);
            if self.sim.is_some() {
                self.tick(t);
            } else {
                for _ in 0..t {
                    std::hint::spin_loop();
                }
            }
        }
        let held_before = self.session.held_count();
        match self.sim.clone() {
            None => {
                self.sync_trace_clock();
                let cfg = self.m.mg.config();
                if cfg.acquire_timeout.is_some() || cfg.detect_deadlocks {
                    self.session
                        .acquire_all_checked()
                        .map_err(|source| InterpError::Lock {
                            tid: self.tid,
                            source,
                        })?;
                } else {
                    self.session.acquire_all();
                }
            }
            Some(sim) => {
                self.tick(self.m.costs.lock_desc * n_descriptors);
                self.flush_ticks();
                let mut parked = false;
                loop {
                    self.sync_trace_clock();
                    match self.session.acquire_all_step() {
                        mglock::StepResult::Done => break,
                        mglock::StepResult::WouldBlock => {
                            parked = true;
                            // Snapshot what we are blocked on for the
                            // wake policy (ignored on the legacy path).
                            // Age is filled in by the scheduler at each
                            // release from the streak's park epoch.
                            let waiter =
                                self.session.blocked_on().map(|(node, mode)| sched::Waiter {
                                    tid: self.tid,
                                    since: self.now(),
                                    section: self.current_section.0,
                                    node,
                                    mode,
                                    age: 0,
                                });
                            sim.begin_wait_with(self.tid as usize, waiter);
                            if !sim.await_release(self.tid as usize) {
                                return Err(InterpError::SchedulerStalled { tid: self.tid }.into());
                            }
                            self.injected_wakeup_delay();
                        }
                    }
                }
                if parked {
                    sim.end_wait(self.tid as usize);
                }
                let acquired = (self.session.held_count() - held_before) as u64;
                self.tick(self.m.costs.lock_node * acquired);
            }
        }
        if let Some(mx) = &self.m.metrics {
            mx.lock_acquisitions
                .add((self.session.held_count() - held_before) as u64);
        }
        Ok(())
    }

    /// Leaves a section; returns true when the outermost level closed
    /// (for STM: the transaction committed).
    fn section_exit(&mut self, ins: &Instr) -> Result<bool, Exc> {
        let m = self.m;
        let sid = match ins {
            Instr::ExitAtomic(s) | Instr::ReleaseAll(s) => *s,
            _ => unreachable!("section markers handled by exec"),
        };
        match m.mode {
            ExecMode::Global | ExecMode::MultiGrain | ExecMode::Validate => {
                let will_close = self.session.nesting_level() == 1;
                if self.sim.is_some() {
                    self.tick(m.costs.lock_release);
                    if will_close {
                        // Publish the exact release time before waking
                        // waiters.
                        self.flush_ticks();
                    }
                }
                // Exit before the releases: the validator checks every
                // access while the grants are still held, and release
                // events trail the section like the runtime's own order.
                self.trace_event(trace::EventKind::SectionExit { section: sid.0 });
                self.session.release_all();
                let closed = self.session.nesting_level() == 0;
                if closed {
                    self.metric_section_closed();
                    self.sim_release();
                    self.held_concrete.clear();
                    self.my_allocs.clear();
                    self.note_section_closed(sid.0);
                }
                Ok(closed)
            }
            ExecMode::Stm => {
                self.sec_depth -= 1;
                if self.sec_depth > 0 {
                    // Inner exits always survive; the outermost one is
                    // recorded only after a successful commit (an
                    // aborted attempt ends in `StmAbort` instead).
                    self.trace_event(trace::EventKind::SectionExit { section: sid.0 });
                    return Ok(false);
                }
                let txn = self.txn.take().ok_or_else(|| {
                    Exc::Err(InterpError::Internal {
                        detail: "no open transaction at STM section exit".into(),
                    })
                })?;
                let writes = txn.write_set_len() as u64;
                let reads = txn.read_set_len() as u64;
                if self.sim.is_some() {
                    // Read-only transactions skip commit-time
                    // validation entirely (the TL2 fast path).
                    let vreads = if writes > 0 { reads } else { 0 };
                    self.tick(
                        m.costs.stm_commit_base
                            + m.costs.stm_commit_per_write * writes
                            + m.costs.stm_commit_per_read * vreads,
                    );
                    self.flush_ticks();
                }
                self.sync_trace_clock();
                match txn.commit() {
                    Ok(()) => {
                        m.space.note_commit_by(self.tid as u64, reads, writes);
                        self.trace_event(trace::EventKind::SectionExit { section: sid.0 });
                        self.my_allocs.clear();
                        self.note_section_closed(sid.0);
                        Ok(true)
                    }
                    Err(_) => Err(Exc::Abort),
                }
            }
        }
    }

    /// Evaluates a lock spec at section entry into a runtime descriptor
    /// plus its concrete denotation. Returns `None` when a fine
    /// expression evaluates through null (no location to protect —
    /// the access it would have protected faults first).
    fn eval_spec(
        &mut self,
        spec: &LockSpec,
        frame: &[i64],
        f: FnId,
    ) -> Result<Option<(Descriptor, ConcreteLock)>, Exc> {
        let m = self.m;
        let access = |e: lir::Eff| match e {
            lir::Eff::Ro => Access::Read,
            lir::Eff::Rw => Access::Write,
        };
        match spec {
            LockSpec::Global => Ok(Some((
                Descriptor::Global {
                    access: Access::Write,
                },
                ConcreteLock::Global,
            ))),
            LockSpec::Coarse { pts, eff } => Ok(Some((
                Descriptor::Coarse {
                    pts: *pts,
                    access: access(*eff),
                },
                ConcreteLock::Coarse {
                    pts: PtsClass(*pts),
                    eff: *eff,
                },
            ))),
            LockSpec::Fine { path, pts, eff } => {
                let mut cur: i64;
                let mut ops = path.ops.as_slice();
                if ops.is_empty() {
                    // Lock on the variable's own cell (&x).
                    cur = match m.storage[path.base.0 as usize] {
                        Storage::Global(a) => a as i64,
                        Storage::Indirect(s) => frame[s as usize],
                        Storage::Direct(_) => return Ok(None),
                    };
                } else {
                    debug_assert_eq!(ops[0], PathOp::Deref, "lock paths start at the value");
                    cur = self.read_var(frame, path.base)?;
                    ops = &ops[1..];
                }
                for (i, op) in ops.iter().enumerate() {
                    if cur <= 0 {
                        return Ok(None);
                    }
                    match op {
                        PathOp::Deref => {
                            let a = self.check_addr(cur, f, 0)?;
                            cur = self.heap_read_raw(a)?;
                        }
                        PathOp::Field(fd) if Some(*fd) == m.elem_field => {
                            debug_assert_eq!(i + 1, ops.len(), "[] only in final position");
                            return Ok(Some((
                                Descriptor::Fine {
                                    pts: *pts,
                                    addr: FineAddr::Range(cur as u64),
                                    access: access(*eff),
                                },
                                ConcreteLock::Range {
                                    base: cur as u64,
                                    eff: *eff,
                                },
                            )));
                        }
                        PathOp::Field(fd) => {
                            cur += m.field_offset[fd.0 as usize] as i64;
                        }
                        PathOp::Index(v) => {
                            let i = self.read_var(frame, *v)?;
                            if i < 0 {
                                return Ok(None);
                            }
                            cur += i;
                        }
                    }
                }
                if cur <= 0 {
                    return Ok(None);
                }
                Ok(Some((
                    Descriptor::Fine {
                        pts: *pts,
                        addr: FineAddr::Cell(cur as u64),
                        access: access(*eff),
                    },
                    ConcreteLock::Cell {
                        addr: cur as u64,
                        eff: *eff,
                    },
                )))
            }
        }
    }

    /// Re-evaluates the section's lock specs with access checks and
    /// tracing muted (the reads belong to the acquisition protocol, not
    /// the section body). Used for post-acquisition drift detection;
    /// side-effect free, charges no virtual time.
    fn eval_specs_quiet(
        &mut self,
        specs: &[LockSpec],
        frame: &[i64],
        f: FnId,
        filter_dropped: bool,
    ) -> Result<Vec<Descriptor>, Exc> {
        self.revalidating = true;
        let mut out = Vec::new();
        let mut err = None;
        let section = self.current_section.0;
        for (i, spec) in specs.iter().enumerate() {
            if filter_dropped && self.spec_dropped(section, i) {
                continue;
            }
            match self.eval_spec(spec, frame, f) {
                Ok(Some((d, _))) => out.push(d),
                Ok(None) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        self.revalidating = false;
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ----------------------------------------------------------------------
// Thread harness

/// Maps a caught panic payload to a typed error: injected fault panics
/// are recognized by their payload type; anything else is a genuine
/// worker bug, contained and reported.
fn panic_error(tid: u32, payload: Box<dyn std::any::Any + Send>) -> InterpError {
    if let Some(fp) = payload.downcast_ref::<FaultPanic>() {
        InterpError::InjectedPanic { tid: fp.tid }
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        InterpError::WorkerPanicked {
            tid,
            detail: (*s).to_owned(),
        }
    } else if let Some(s) = payload.downcast_ref::<String>() {
        InterpError::WorkerPanicked {
            tid,
            detail: s.clone(),
        }
    } else {
        InterpError::WorkerPanicked {
            tid,
            detail: "opaque panic payload".to_owned(),
        }
    }
}

/// Converts a worker exit to the public result; `Abort` must have been
/// consumed by its owning section.
fn exit_error(e: Exc) -> InterpError {
    match e {
        Exc::Err(e) => e,
        Exc::Abort => InterpError::Internal {
            detail: "transaction abort escaped its owning section".into(),
        },
    }
}

impl Machine {
    /// Runs `name(args)` on the calling thread (thread id 0).
    ///
    /// # Errors
    ///
    /// Returns any runtime error raised during execution.
    pub fn run_named(&self, name: &str, args: &[i64]) -> Result<i64, InterpError> {
        let f = self
            .program
            .function_named(name)
            .ok_or_else(|| InterpError::NoSuchFunction(name.to_owned()))?;
        self.run_fn(f, args, 0)
    }

    /// The id of a named function — convenience for harnesses that
    /// drive [`Machine::run_fn`] from their own thread scopes.
    ///
    /// # Panics
    ///
    /// Panics when no function has that name.
    pub fn program_fn(&self, name: &str) -> FnId {
        self.program
            .function_named(name)
            .unwrap_or_else(|| panic!("no function named `{name}`"))
    }

    /// Runs function `f` with `args` as thread `tid`.
    ///
    /// # Errors
    ///
    /// Returns any runtime error raised during execution.
    pub fn run_fn(&self, f: FnId, args: &[i64], tid: u32) -> Result<i64, InterpError> {
        let want = self.program.func(f).params.len();
        if want != args.len() {
            return Err(InterpError::ArityMismatch {
                func: self.program.fn_name(f).to_owned(),
                want,
                got: args.len(),
            });
        }
        let mut w = Worker::new(self, tid);
        let r = catch_unwind(AssertUnwindSafe(|| w.call(f, args)));
        // Drop the worker before reporting: a panicking or erroring
        // worker may still hold locks or an open transaction, and the
        // drop glue (session unwind-release, gate guard) frees them.
        drop(w);
        match r {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(exit_error(e)),
            Err(payload) => Err(panic_error(tid, payload)),
        }
    }

    /// Like [`Machine::run_threads`], but under the deterministic
    /// virtual-time scheduler: returns the per-thread results plus the
    /// virtual makespan in ticks (1 tick ≈ 1 ns of reported time).
    /// Designed for single-core hosts, where it stands in for the
    /// paper's 8-core machine — see `crate::sim`.
    ///
    /// # Errors
    ///
    /// Returns the first thread error encountered.
    pub fn run_threads_virtual(
        &self,
        name: &str,
        n: usize,
        args: impl Fn(u32) -> Vec<i64> + Sync,
    ) -> Result<(Vec<i64>, u64), InterpError> {
        let f = self
            .program
            .function_named(name)
            .ok_or_else(|| InterpError::NoSuchFunction(name.to_owned()))?;
        let sim = Arc::new(Sim::with_policy(
            n,
            self.quantum,
            self.sched.as_ref().map(|c| c.build()),
        ));
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tid in 0..n as u32 {
                let argv = args(tid);
                let sim = Arc::clone(&sim);
                handles.push(scope.spawn(move || {
                    let mut w = Worker::with_sim(self, tid, Arc::clone(&sim));
                    sim.advance(tid as usize, 0);
                    match catch_unwind(AssertUnwindSafe(|| w.call(f, &argv))) {
                        Ok(Ok(v)) => {
                            w.flush_ticks();
                            sim.finish(tid as usize);
                            Ok(v)
                        }
                        Ok(Err(e)) => {
                            // Unclean exit: release this worker's locks
                            // (session/transaction drop), promote any
                            // waiters they unblocked, then leave the
                            // schedule so the rest can finish.
                            drop(w);
                            sim.on_release(tid as usize);
                            sim.finish(tid as usize);
                            Err(exit_error(e))
                        }
                        Err(payload) => {
                            drop(w);
                            sim.on_release(tid as usize);
                            sim.finish(tid as usize);
                            Err(panic_error(tid, payload))
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(tid, h)| h.join().unwrap_or_else(|p| Err(panic_error(tid as u32, p))))
                .collect::<Result<Vec<i64>, InterpError>>()
        })?;
        Ok((results, sim.makespan()))
    }

    /// Spawns `n` OS threads all running `name(args(tid))`, joining them
    /// and returning their results in thread order.
    ///
    /// # Errors
    ///
    /// Returns the first thread error encountered.
    pub fn run_threads(
        &self,
        name: &str,
        n: usize,
        args: impl Fn(u32) -> Vec<i64> + Sync,
    ) -> Result<Vec<i64>, InterpError> {
        let f = self
            .program
            .function_named(name)
            .ok_or_else(|| InterpError::NoSuchFunction(name.to_owned()))?;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tid in 0..n as u32 {
                let argv = args(tid);
                handles.push(scope.spawn(move || self.run_fn(f, &argv, tid)));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(tid, h)| h.join().unwrap_or_else(|p| Err(panic_error(tid as u32, p))))
                .collect()
        })
    }
}
