//! # interp — a concurrent interpreter for transformed programs
//!
//! Executes programs produced by the `lockinfer` pipeline over a shared
//! heap, with four disciplines for atomic sections:
//!
//! * [`ExecMode::Global`] — every section takes one global lock (the
//!   evaluation's baseline column);
//! * [`ExecMode::MultiGrain`] — sections acquire the locks the compiler
//!   inferred, through the `mglock` multi-granularity runtime;
//! * [`ExecMode::Stm`] — sections run as TL2 transactions with local
//!   rollback and retry (the optimistic baseline);
//! * [`ExecMode::Validate`] — MultiGrain plus an empirical check of
//!   Theorem 1: every heap access inside a section must be covered, at
//!   the right effect, by the concrete denotation of some held lock.
//!
//! ```
//! use interp::{ExecMode, Machine, Options};
//! use std::sync::Arc;
//!
//! let src = "global g; fn main() { atomic { g = g + 1; } return g; }";
//! let (program, _analysis, transformed) = lockinfer::compile_with_locks(src, 3)?;
//! let pt = Arc::new(pointsto::PointsTo::analyze(&program));
//! let m = Machine::new(Arc::new(transformed), pt, ExecMode::MultiGrain, Options::default());
//! assert_eq!(m.run_named("main", &[]).unwrap(), 1);
//! # Ok::<(), lir::lower::FrontendError>(())
//! ```

mod error;
pub mod fault;
mod machine;
mod metrics;
pub mod sim;
mod worker;

pub use error::InterpError;
pub use fault::{FaultPlan, FaultStats, WeakenPlan};
pub use machine::{ExecMode, Machine, Options, RepairSpec};
pub use sched::{PolicyKind, ReaderBatch, SchedConfig};
pub use sentinel::SentinelConfig;
pub use sim::CostModel;

use std::sync::Arc;

/// End-to-end convenience for tests and examples: compile `src`, infer
/// locks at `k`, transform, and build a machine in `mode`.
///
/// # Errors
///
/// Returns the rendered frontend error message on parse/lowering
/// failure.
pub fn machine_for(src: &str, k: usize, mode: ExecMode, opts: Options) -> Result<Machine, String> {
    let (program, _analysis, transformed) =
        lockinfer::compile_with_locks(src, k).map_err(|e| e.to_string())?;
    let pt = Arc::new(pointsto::PointsTo::analyze(&program));
    Ok(Machine::new(Arc::new(transformed), pt, mode, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, mode: ExecMode) -> i64 {
        let m = machine_for(src, 3, mode, Options::default()).unwrap();
        m.run_named("main", &[]).unwrap()
    }

    const ALL_MODES: [ExecMode; 4] = [
        ExecMode::Global,
        ExecMode::MultiGrain,
        ExecMode::Stm,
        ExecMode::Validate,
    ];

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { return fib(15); }
        "#;
        assert_eq!(run(src, ExecMode::Global), 610);
    }

    #[test]
    fn heap_structures() {
        let src = r#"
            struct node { next; val; }
            fn main() {
                let head = null;
                let i = 0;
                while (i < 10) {
                    let n = new node;
                    n->val = i;
                    n->next = head;
                    head = n;
                    i = i + 1;
                }
                let sum = 0;
                while (head != null) {
                    sum = sum + head->val;
                    head = head->next;
                }
                return sum;
            }
        "#;
        assert_eq!(run(src, ExecMode::Global), 45);
    }

    #[test]
    fn arrays_and_dynamic_indexing() {
        let src = r#"
            fn main() {
                let a = new(10);
                let i = 0;
                while (i < 10) { a[i] = i * i; i = i + 1; }
                return a[7];
            }
        "#;
        assert_eq!(run(src, ExecMode::Global), 49);
    }

    #[test]
    fn sections_work_in_every_mode() {
        let src = r#"
            global g;
            fn main() {
                atomic { g = g + 41; }
                atomic { g = g + 1; }
                return g;
            }
        "#;
        for mode in ALL_MODES {
            assert_eq!(run(src, mode), 42, "{mode:?}");
        }
    }

    #[test]
    fn nested_sections_work_in_every_mode() {
        let src = r#"
            global g, h;
            fn main() {
                atomic {
                    g = 1;
                    atomic { h = 2; }
                    g = g + h;
                }
                return g * 10 + h;
            }
        "#;
        for mode in ALL_MODES {
            assert_eq!(run(src, mode), 32, "{mode:?}");
        }
    }

    #[test]
    fn address_of_locals() {
        let src = r#"
            fn bump(p) { *p = *p + 1; }
            fn main() {
                let x = 5;
                bump(&x);
                bump(&x);
                return x;
            }
        "#;
        assert_eq!(run(src, ExecMode::Global), 7);
    }

    #[test]
    fn concurrent_counter_all_modes() {
        let src = r#"
            global counter;
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { counter = counter + 1; }
                    i = i + 1;
                }
                return counter;
            }
            fn main() { return counter; }
        "#;
        for mode in ALL_MODES {
            let m = machine_for(src, 3, mode, Options::default()).unwrap();
            m.run_threads("work", 8, |_| vec![250]).unwrap();
            assert_eq!(m.run_named("main", &[]).unwrap(), 2000, "{mode:?}");
        }
    }

    #[test]
    fn paper_move_example_runs_concurrently() {
        // Figure 1: concurrent move(l1,l2) / move(l2,l1) — the classic
        // deadlock scenario under naive fine-grain locking.
        let src = r#"
            struct elem { next; data; }
            struct list { head; }
            global l1, l2;
            fn setup(n) {
                l1 = new list;
                l2 = new list;
                let i = 0;
                while (i < n) {
                    let e = new elem;
                    e->data = i;
                    e->next = l1->head;
                    l1->head = e;
                    i = i + 1;
                }
            }
            fn move_(from, to) {
                atomic {
                    let x = to->head;
                    let y = from->head;
                    from->head = null;
                    if (x == null) {
                        to->head = y;
                    } else {
                        while (x->next != null) { x = x->next; }
                        x->next = y;
                    }
                }
            }
            fn mover(rounds) {
                let i = 0;
                while (i < rounds) {
                    if (tid() % 2 == 0) { move_(l1, l2); } else { move_(l2, l1); }
                    i = i + 1;
                }
                return 0;
            }
            fn count(l) {
                let n = 0;
                let e = l->head;
                while (e != null) { n = n + 1; e = e->next; }
                return n;
            }
            fn total() { return count(l1) + count(l2); }
        "#;
        for mode in ALL_MODES {
            let m = machine_for(src, 3, mode, Options::default()).unwrap();
            m.run_named("setup", &[30]).unwrap();
            m.run_threads("mover", 4, |_| vec![25]).unwrap();
            assert_eq!(
                m.run_named("total", &[]).unwrap(),
                30,
                "elements conserved in {mode:?}"
            );
        }
    }

    #[test]
    fn validate_mode_accepts_inferred_locks() {
        // A broad sample of section shapes, all checked for coverage.
        let src = r#"
            struct node { next; val; }
            global head, count;
            fn push(v) {
                atomic {
                    let n = new node;
                    n->val = v;
                    n->next = head;
                    head = n;
                    count = count + 1;
                }
            }
            fn sum() {
                let s = 0;
                atomic {
                    let e = head;
                    while (e != null) { s = s + e->val; e = e->next; }
                }
                print(s);
            }
            fn main() {
                push(1); push(2); push(3);
                sum();
                return count;
            }
        "#;
        for k in [0, 2, 9] {
            let m = machine_for(src, k, ExecMode::Validate, Options::default()).unwrap();
            assert_eq!(m.run_named("main", &[]).unwrap(), 3, "k={k}");
        }
    }

    #[test]
    fn validate_mode_catches_missing_locks() {
        // Hand-build a transformed program whose AcquireAll is empty:
        // the write to g inside the section must be flagged.
        let src = "global g; fn main() { atomic { g = 1; } }";
        let program = lir::compile(src).unwrap();
        let pt = Arc::new(pointsto::PointsTo::analyze(&program));
        let mut broken = program.clone();
        for func in &mut broken.functions {
            for ins in &mut func.body {
                match ins {
                    lir::Instr::EnterAtomic(s) => *ins = lir::Instr::AcquireAll(*s, vec![]),
                    lir::Instr::ExitAtomic(s) => *ins = lir::Instr::ReleaseAll(*s),
                    _ => {}
                }
            }
        }
        let m = Machine::new(Arc::new(broken), pt, ExecMode::Validate, Options::default());
        let err = m.run_named("main", &[]).unwrap_err();
        assert!(
            matches!(err, InterpError::Unprotected { write: true, .. }),
            "{err}"
        );
    }

    #[test]
    fn stm_mode_commits_under_contention() {
        let src = r#"
            global c;
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { c = c + 1; nops(20); }
                    i = i + 1;
                }
                return 0;
            }
            fn main() { return c; }
        "#;
        let m = machine_for(src, 3, ExecMode::Stm, Options::default()).unwrap();
        m.run_threads("work", 8, |_| vec![100]).unwrap();
        assert_eq!(m.run_named("main", &[]).unwrap(), 800);
        assert_eq!(m.stm_stats().commits, 800);
    }

    #[test]
    fn faults_are_reported() {
        let src = "struct s { f; } fn main() { let x = null; return x->f; }";
        let m = machine_for(src, 3, ExecMode::Global, Options::default()).unwrap();
        assert!(matches!(
            m.run_named("main", &[]).unwrap_err(),
            InterpError::Fault { .. }
        ));

        let src = "fn main() { let x = 1; let y = 0; return x / y; }";
        let m = machine_for(src, 3, ExecMode::Global, Options::default()).unwrap();
        assert!(matches!(
            m.run_named("main", &[]).unwrap_err(),
            InterpError::DivByZero { .. }
        ));

        let src = "fn main() { assert(0); }";
        let m = machine_for(src, 3, ExecMode::Global, Options::default()).unwrap();
        assert!(matches!(
            m.run_named("main", &[]).unwrap_err(),
            InterpError::AssertFailed { .. }
        ));
    }

    #[test]
    fn intrinsics_behave() {
        let src = r#"
            fn main() {
                let r = rand(10);
                assert(r >= 0);
                assert(r < 10);
                nops(5);
                print(r);
                return tid();
            }
        "#;
        let m = machine_for(src, 3, ExecMode::Global, Options::default()).unwrap();
        assert_eq!(m.run_named("main", &[]).unwrap(), 0);
        assert_eq!(m.output().len(), 1);
    }

    #[test]
    fn multigrain_requires_transformed_program() {
        let src = "global g; fn main() { atomic { g = 1; } }";
        let program = Arc::new(lir::compile(src).unwrap());
        let pt = Arc::new(pointsto::PointsTo::analyze(&program));
        let m = Machine::new(program, pt, ExecMode::MultiGrain, Options::default());
        assert!(matches!(
            m.run_named("main", &[]).unwrap_err(),
            InterpError::NeedsTransformedProgram { .. }
        ));
    }

    #[test]
    fn virtual_time_reader_sections_run_in_parallel() {
        let src = r#"
            global g;
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { let t = g; nops(2000); }
                    i = i + 1;
                }
                return 0;
            }
        "#;
        let run = |mode: ExecMode, threads: usize| {
            let m = machine_for(src, 3, mode, Options::default()).unwrap();
            let (_, span) = m
                .run_threads_virtual("work", threads, |_| vec![40])
                .unwrap();
            span
        };
        // Read-only sections under multi-grain locks share; under the
        // global lock they serialize.
        let mg8 = run(ExecMode::MultiGrain, 8);
        let gl8 = run(ExecMode::Global, 8);
        assert!(
            gl8 as f64 > 4.0 * mg8 as f64,
            "global ({gl8}) should be much slower than shared reads ({mg8})"
        );
        // And multi-grain reading barely degrades with thread count.
        let mg1 = run(ExecMode::MultiGrain, 1);
        assert!(
            (mg8 as f64) < 2.0 * mg1 as f64,
            "8 readers ({mg8}) near 1 reader ({mg1})"
        );
    }

    #[test]
    fn virtual_time_writer_sections_serialize() {
        let src = r#"
            global g;
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { g = g + 1; nops(2000); }
                    i = i + 1;
                }
                return 0;
            }
            fn main() { return g; }
        "#;
        let m = machine_for(src, 3, ExecMode::MultiGrain, Options::default()).unwrap();
        let (_, span1) = m.run_threads_virtual("work", 1, |_| vec![40]).unwrap();
        let m = machine_for(src, 3, ExecMode::MultiGrain, Options::default()).unwrap();
        let (_, span8) = m.run_threads_virtual("work", 8, |_| vec![40]).unwrap();
        assert!(
            span8 as f64 > 5.0 * span1 as f64,
            "writers serialize: 8 threads {span8} vs 1 thread {span1}"
        );
        assert_eq!(m.run_named("main", &[]).unwrap(), 8 * 40);
    }

    #[test]
    fn virtual_time_is_deterministic() {
        let src = r#"
            global c;
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { c = c + rand(3); nops(100); }
                    i = i + 1;
                }
                return c;
            }
        "#;
        let span_of = |mode: ExecMode| {
            let m = machine_for(src, 3, mode, Options::default()).unwrap();
            let (r, span) = m.run_threads_virtual("work", 4, |_| vec![50]).unwrap();
            (r, span, m.run_named("work", &[0]).unwrap())
        };
        for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
            let a = span_of(mode);
            let b = span_of(mode);
            assert_eq!(a, b, "virtual runs are reproducible in {mode:?}");
        }
    }

    #[test]
    fn virtual_stm_commits_and_counts() {
        let src = r#"
            global c;
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { c = c + 1; nops(50); }
                    i = i + 1;
                }
                return 0;
            }
            fn main() { return c; }
        "#;
        let m = machine_for(src, 3, ExecMode::Stm, Options::default()).unwrap();
        let (_, span) = m.run_threads_virtual("work", 8, |_| vec![50]).unwrap();
        assert!(span > 0);
        assert_eq!(m.run_named("main", &[]).unwrap(), 400);
        assert_eq!(m.stm_stats().commits, 400);
    }

    #[test]
    fn virtual_time_print_order_is_deterministic() {
        let src = r#"
            global turn;
            fn work(iters) {
                let i = 0;
                while (i < iters) {
                    atomic { turn = turn + 1; print(turn * 10 + tid()); nops(300); }
                    i = i + 1;
                }
                return 0;
            }
        "#;
        let outputs: Vec<Vec<String>> = (0..2)
            .map(|_| {
                let m = machine_for(src, 3, ExecMode::MultiGrain, Options::default()).unwrap();
                m.run_threads_virtual("work", 3, |_| vec![5]).unwrap();
                m.output()
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "print streams reproduce exactly");
        assert_eq!(outputs[0].len(), 15);
    }

    #[test]
    fn virtual_single_thread_equals_instruction_count_scale() {
        // One thread, no contention: makespan ≈ instructions + nops.
        let src = r#"
            fn work(n) {
                let i = 0;
                while (i < n) { nops(100); i = i + 1; }
                return i;
            }
        "#;
        let m = machine_for(src, 3, ExecMode::Global, Options::default()).unwrap();
        let (r, span) = m.run_threads_virtual("work", 1, |_| vec![50]).unwrap();
        assert_eq!(r, vec![50]);
        // 50 × (100 nops + ~8 loop instructions): between 5k and 12k.
        assert!((5_000..12_000).contains(&span), "span {span}");
    }

    #[test]
    fn null_lock_expressions_are_skipped_not_faulted() {
        // The inferred fine lock &(p->head) evaluates through p — when
        // the structure is absent at entry the descriptor is skipped
        // and the run faults only at the actual access (or not at all
        // if the access is guarded).
        let src = r#"
            struct list { head; }
            global l;
            fn main() {
                atomic {
                    if (l != null) { l->head = null; }
                }
                return 7;
            }
        "#;
        let m = machine_for(src, 9, ExecMode::MultiGrain, Options::default()).unwrap();
        assert_eq!(m.run_named("main", &[]).unwrap(), 7);
    }

    #[test]
    fn heapified_locals_work_inside_sections() {
        let src = r#"
            global g;
            fn bump(p) { atomic { *p = *p + g; } }
            fn main() {
                g = 5;
                let x = 1;
                bump(&x);
                bump(&x);
                return x;
            }
        "#;
        for mode in ALL_MODES {
            assert_eq!(run(src, mode), 11, "{mode:?}");
        }
    }

    #[test]
    fn section_in_callee_under_stm_retries_correctly() {
        // The txn is owned by the callee's frame; its locals must roll
        // back on retry while the caller's survive.
        let src = r#"
            global c;
            fn add_one() {
                let local = 100;
                atomic {
                    local = local + 1;
                    c = c + local;
                    nops(50);
                }
                return local;
            }
            fn work(iters) {
                let i = 0;
                let acc = 0;
                while (i < iters) {
                    acc = add_one();
                    i = i + 1;
                }
                return acc;
            }
            fn main() { return c; }
        "#;
        let m = machine_for(src, 3, ExecMode::Stm, Options::default()).unwrap();
        let results = m.run_threads("work", 6, |_| vec![50]).unwrap();
        assert!(
            results.iter().all(|&r| r == 101),
            "local rollback kept: {results:?}"
        );
        assert_eq!(m.run_named("main", &[]).unwrap(), 6 * 50 * 101);
    }

    #[test]
    fn cross_thread_nesting_takes_locks_when_outermost() {
        // §5.3: an inner section in one thread can be the outermost
        // section of another thread. `deposit` is called from inside
        // `batch`'s section (nested — no locks taken) *and* directly
        // (outermost — locks taken). Both must stay atomic.
        let src = r#"
            global acct;
            fn deposit(v) {
                atomic { acct = acct + v; nops(50); }
                return 0;
            }
            fn batch(iters) {
                let i = 0;
                while (i < iters) {
                    atomic {
                        deposit(2);
                        deposit(3);
                    }
                    i = i + 1;
                }
                return 0;
            }
            fn single(iters) {
                let i = 0;
                while (i < iters) {
                    deposit(1);
                    i = i + 1;
                }
                return 0;
            }
            fn main() { return acct; }
        "#;
        for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
            let m = machine_for(src, 3, mode, Options::default()).unwrap();
            // Half the threads batch (nested), half deposit directly.
            std::thread::scope(|s| {
                for t in 0..4 {
                    let m = &m;
                    s.spawn(move || {
                        if t % 2 == 0 {
                            m.run_fn(m.program_fn("batch"), &[100], t).unwrap();
                        } else {
                            m.run_fn(m.program_fn("single"), &[100], t).unwrap();
                        }
                    });
                }
            });
            assert_eq!(
                m.run_named("main", &[]).unwrap(),
                2 * 100 * 5 + 2 * 100,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn out_of_memory_is_reported() {
        let src = "fn main() { let i = 0; while (i < 100) { let x = new(100); i = i + 1; } }";
        let m = machine_for(
            src,
            0,
            ExecMode::Global,
            Options {
                heap_cells: 512,
                seed: 1,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(matches!(
            m.run_named("main", &[]).unwrap_err(),
            InterpError::OutOfMemory
        ));
    }

    // ------------------------------------------------------------------
    // Fault injection and graceful degradation

    const COUNTER_SRC: &str = r#"
        global c;
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { c = c + 1; nops(20); }
                i = i + 1;
            }
            return 0;
        }
        fn main() { return c; }
    "#;

    #[test]
    fn injected_panic_is_contained_and_releases_locks() {
        for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Validate] {
            let opts = Options {
                faults: Some(FaultPlan::new(0xBAD).with_panics(200, 1)),
                ..Options::default()
            };
            let m = machine_for(COUNTER_SRC, 3, mode, opts).unwrap();
            let err = m.run_threads("work", 4, |_| vec![200]).unwrap_err();
            assert!(
                matches!(err, InterpError::InjectedPanic { .. }),
                "{mode:?}: {err}"
            );
            assert!(m.locks_quiescent(), "{mode:?}: locks leaked past a panic");
            assert!(
                m.mg_stats()
                    .poisoned_sessions
                    .load(std::sync::atomic::Ordering::Relaxed)
                    > 0
            );
            // The machine stays usable after the contained panics.
            assert!(m.run_named("main", &[]).unwrap() >= 0, "{mode:?}");
        }
    }

    #[test]
    fn injected_stm_aborts_retry_to_the_correct_result() {
        let opts = Options {
            faults: Some(FaultPlan::new(0xF00D).with_stm_aborts(40)),
            ..Options::default()
        };
        let m = machine_for(COUNTER_SRC, 3, ExecMode::Stm, opts).unwrap();
        m.run_threads("work", 4, |_| vec![100]).unwrap();
        assert_eq!(m.run_named("main", &[]).unwrap(), 400);
        let injected = m
            .fault_stats()
            .injected_aborts
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(injected > 0, "the plan should have fired");
        assert!(
            m.stm_stats().aborts >= injected,
            "every injection was a real abort"
        );
    }

    #[test]
    fn abort_storm_escalates_to_irrevocable_within_budget() {
        // Storm: nearly every transactional access aborts, so no
        // optimistic attempt can finish — progress requires the
        // irrevocable fallback, which the budget triggers.
        let opts = Options {
            faults: Some(FaultPlan::new(0x5707).with_stm_aborts(700)),
            stm_abort_budget: 3,
            ..Options::default()
        };
        let m = machine_for(COUNTER_SRC, 3, ExecMode::Stm, opts).unwrap();
        m.run_threads("work", 4, |_| vec![25]).unwrap();
        assert_eq!(m.run_named("main", &[]).unwrap(), 100, "no increment lost");
        let stats = m.stm_stats();
        assert!(
            stats.fallbacks > 0,
            "the storm must have escalated: {stats:?}"
        );
        // Budget respected: per committed-after-escalation section, at
        // most `budget` aborts preceded the irrevocable attempt (plus
        // optimistic sections that squeaked through).
        assert_eq!(stats.commits, 100);
    }

    #[test]
    fn fault_injected_virtual_runs_are_deterministic() {
        let plan = FaultPlan::new(0xD13)
            .with_stm_aborts(30)
            .with_stalls(100, 500)
            .with_wakeup_delays(100, 250);
        for mode in [ExecMode::Global, ExecMode::MultiGrain, ExecMode::Stm] {
            let run = || {
                let opts = Options {
                    faults: Some(plan),
                    ..Options::default()
                };
                let m = machine_for(COUNTER_SRC, 3, mode, opts).unwrap();
                let r = m.run_threads_virtual("work", 4, |_| vec![30]);
                (r, m.run_named("main", &[]).unwrap())
            };
            assert_eq!(run(), run(), "chaos reproduces exactly in {mode:?}");
        }
    }

    #[test]
    fn fault_injected_survivors_pass_validate_coverage() {
        // The acceptance bar: runs that survive injection still satisfy
        // Theorem 1 — Validate mode re-checks every in-section access.
        let opts = Options {
            faults: Some(FaultPlan::new(0xC07E).with_stalls(150, 400)),
            ..Options::default()
        };
        let m = machine_for(COUNTER_SRC, 3, ExecMode::Validate, opts).unwrap();
        m.run_threads("work", 4, |_| vec![50]).unwrap();
        assert_eq!(m.run_named("main", &[]).unwrap(), 200);
    }
}
