//! Interpreter errors and the internal control-flow exception.

use lir::SectionId;
use std::fmt;

/// A runtime error from the interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// Dereference of null or an out-of-range address.
    Fault {
        func: String,
        pc: usize,
        detail: String,
    },
    /// The heap is exhausted.
    OutOfMemory,
    /// `assert(x)` failed.
    AssertFailed { func: String, pc: usize },
    /// Division or remainder by zero.
    DivByZero { func: String, pc: usize },
    /// The entry function was not found.
    NoSuchFunction(String),
    /// Wrong number of arguments to the entry function.
    ArityMismatch {
        func: String,
        want: usize,
        got: usize,
    },
    /// A mode needed the transformed program but got atomic markers
    /// (or vice versa).
    NeedsTransformedProgram { section: SectionId },
    /// Theorem-1 violation found by Validate mode: an access inside an
    /// atomic section not covered by any held lock.
    Unprotected {
        func: String,
        pc: usize,
        addr: u64,
        write: bool,
        section: SectionId,
    },
    /// A fault-plan panic fired on this thread (see `crate::FaultPlan`).
    /// The worker unwound, its locks were released, and the remaining
    /// threads kept running.
    InjectedPanic { tid: u32 },
    /// A worker thread panicked for a reason other than fault injection
    /// (a genuine bug); the panic was contained and its locks released.
    WorkerPanicked { tid: u32, detail: String },
    /// The virtual-time scheduler wedged: every live thread was blocked
    /// waiting for a lock release that can no longer happen. Reported
    /// instead of hanging.
    SchedulerStalled { tid: u32 },
    /// The lock runtime refused an acquisition (timeout or detected
    /// deadlock — see [`mglock::MgLockError`]).
    Lock {
        tid: u32,
        source: mglock::MgLockError,
    },
    /// An internal invariant failed; always a bug in the interpreter,
    /// reported as data instead of a panic so harnesses stay up.
    Internal { detail: String },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Fault { func, pc, detail } => {
                write!(f, "memory fault in `{func}` at {pc}: {detail}")
            }
            InterpError::OutOfMemory => write!(f, "heap exhausted"),
            InterpError::AssertFailed { func, pc } => {
                write!(f, "assertion failed in `{func}` at {pc}")
            }
            InterpError::DivByZero { func, pc } => {
                write!(f, "division by zero in `{func}` at {pc}")
            }
            InterpError::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
            InterpError::ArityMismatch { func, want, got } => {
                write!(f, "`{func}` expects {want} arguments, got {got}")
            }
            InterpError::NeedsTransformedProgram { section } => {
                write!(
                    f,
                    "section #{} still has atomic markers; run the lock \
                     inference transformation first for this execution mode",
                    section.0
                )
            }
            InterpError::Unprotected {
                func,
                pc,
                addr,
                write,
                section,
            } => {
                write!(
                    f,
                    "UNPROTECTED {} of cell {addr} inside section #{} (in `{func}` at {pc})",
                    if *write { "write" } else { "read" },
                    section.0
                )
            }
            InterpError::InjectedPanic { tid } => {
                write!(f, "injected panic on thread {tid} (fault plan)")
            }
            InterpError::WorkerPanicked { tid, detail } => {
                write!(f, "worker thread {tid} panicked: {detail}")
            }
            InterpError::SchedulerStalled { tid } => {
                write!(
                    f,
                    "scheduler stalled: every live thread (incl. {tid}) is \
                     waiting on a release that cannot happen"
                )
            }
            InterpError::Lock { tid, source } => {
                write!(f, "lock acquisition failed on thread {tid}: {source}")
            }
            InterpError::Internal { detail } => {
                write!(f, "internal interpreter invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Internal non-local control flow: either a real error or an STM
/// conflict that unwinds to the owning section for retry.
#[derive(Debug)]
pub(crate) enum Exc {
    Err(InterpError),
    Abort,
}

impl From<InterpError> for Exc {
    fn from(e: InterpError) -> Exc {
        Exc::Err(e)
    }
}
