//! Virtual-time execution: a deterministic discrete-event scheduler
//! that stands in for the paper's 8-core test machine.
//!
//! The container this reproduction runs in has a single CPU, so real
//! threads cannot exhibit the parallelism the evaluation measures.
//! Instead, each logical thread carries a *virtual clock* (1 tick per
//! interpreted instruction; nop loops cost their count; locking and STM
//! operations are charged via [`CostModel`]). The scheduler lets
//! exactly one thread execute at a time — always the one with the
//! smallest `(clock, tid)` — so interleavings are deterministic, and:
//!
//! * threads that *wait on a lock* have their clock jumped to the
//!   releasing thread's clock, charging real serialization;
//! * threads that can run in parallel (compatible lock modes, disjoint
//!   locks, optimistic transactions) advance their clocks
//!   independently, so the *makespan* — the maximum final clock — shows
//!   genuine speedup.
//!
//! The reported "execution time" of a virtual run is the makespan.

//! Wake ordering is pluggable (`sched`): each waiter carries a *rank*
//! assigned by the configured [`WakePolicy`] at the release that
//! promotes it, and the scheduling order compares `(clock, rank, tid)`.
//! Ranks never touch clocks — only the acquisition order among waiters
//! promoted at the same release time changes — and every thread's rank
//! resets to 0 at its next scheduling point. With no policy (or the
//! FIFO policy, which ranks everything 0) the order degenerates to the
//! historical `(clock, tid)`, reproducing legacy traces byte-for-byte.

use parking_lot::{Condvar, Mutex};
use sched::{rank_batch, Waiter, WakeGrant, WakePolicy};

/// Virtual-time costs of runtime operations, in ticks (one tick ≈ one
/// interpreted instruction ≈ 1 ns of the reported time).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Per lock-tree node acquired at `acquire_all`.
    pub lock_node: u64,
    /// Per lock descriptor evaluated at section entry.
    pub lock_desc: u64,
    /// Per release batch.
    pub lock_release: u64,
    /// STM: beginning a transaction.
    pub txn_start: u64,
    /// STM: per transactional read (instrumentation).
    pub stm_read: u64,
    /// STM: per transactional write (buffering).
    pub stm_write: u64,
    /// STM: commit base cost.
    pub stm_commit_base: u64,
    /// STM: per write-back at commit (write-set locking + publish).
    pub stm_commit_per_write: u64,
    /// STM: per read-set entry validated at commit (writing txns only).
    pub stm_commit_per_read: u64,
    /// STM: abort/rollback penalty (plus the wasted section work,
    /// which is charged naturally by re-execution).
    pub stm_abort: u64,
    /// STM: escalating to irrevocable global mode after the abort
    /// budget (acquiring the commit gate serially).
    pub stm_fallback: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated against TL2's published overheads relative to a
        // plain interpreted instruction (1 tick): instrumented reads
        // and writes cost several ticks, commits pay per-entry
        // validation and write-back, and uncontended lock nodes cost a
        // few dozen ticks.
        CostModel {
            lock_node: 25,
            lock_desc: 10,
            lock_release: 10,
            txn_start: 50,
            stm_read: 6,
            stm_write: 8,
            stm_commit_base: 80,
            stm_commit_per_write: 8,
            stm_commit_per_read: 2,
            stm_abort: 150,
            stm_fallback: 300,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum St {
    Ready,
    Waiting,
    Done,
}

struct SimInner {
    clocks: Vec<u64>,
    state: Vec<St>,
    /// Policy-assigned wake ranks, breaking clock ties ahead of the
    /// thread id. 0 for every thread that is not a freshly promoted
    /// waiter; reset at the thread's next `advance`.
    ranks: Vec<u64>,
    /// Waiter snapshots registered at `begin_wait`, consumed (and
    /// cleared) by the next release's ranking pass.
    waiters: Vec<Option<Waiter>>,
    /// The release epoch at which each thread's current *wait streak*
    /// began. A promoted waiter that fails to acquire re-parks without
    /// clearing this, so aging policies see how many release grants it
    /// has sat through ([`sched::Waiter::age`]); cleared by
    /// [`Sim::end_wait`] when the acquisition finally succeeds.
    wait_epoch: Vec<Option<u64>>,
    last_release_clock: u64,
    release_epoch: u64,
    /// Set when every live thread is `Waiting`: no runnable thread
    /// remains to release anything, so the run can never progress.
    /// Sticky — once wedged, all waiters drain out with an error.
    wedged: bool,
}

/// The shared scheduler. One instance per virtual run.
pub(crate) struct Sim {
    inner: Mutex<SimInner>,
    cv: Condvar,
    /// Ticks a thread may execute between scheduling points.
    pub quantum: u64,
    /// Wake policy for lock releases. `None` is the legacy path: no
    /// ranking pass runs, no wake decisions are reported, and the
    /// schedule is the historical `(clock, tid)` order.
    policy: Option<Box<dyn WakePolicy>>,
}

impl Sim {
    /// A policy-free scheduler: the historical `(clock, tid)` order.
    #[cfg(test)]
    pub fn new(n: usize, quantum: u64) -> Sim {
        Sim::with_policy(n, quantum, None)
    }

    pub fn with_policy(n: usize, quantum: u64, policy: Option<Box<dyn WakePolicy>>) -> Sim {
        Sim {
            inner: Mutex::new(SimInner {
                clocks: vec![0; n],
                state: vec![St::Ready; n],
                ranks: vec![0; n],
                waiters: vec![None; n],
                wait_epoch: vec![None; n],
                last_release_clock: 0,
                release_epoch: 0,
                wedged: false,
            }),
            cv: Condvar::new(),
            quantum,
            policy,
        }
    }

    /// The thread's current virtual clock (scheduling points only; add
    /// any unflushed ticks the caller has accumulated since).
    pub fn clock_of(&self, tid: usize) -> u64 {
        self.inner.lock().clocks[tid]
    }

    fn my_turn(g: &SimInner, tid: usize) -> bool {
        if g.state[tid] != St::Ready {
            return false;
        }
        let me = (g.clocks[tid], g.ranks[tid], tid);
        !g.state
            .iter()
            .enumerate()
            .any(|(j, s)| *s == St::Ready && j != tid && (g.clocks[j], g.ranks[j], j) < me)
    }

    /// Advances `tid`'s clock and blocks until it is the scheduling
    /// minimum again. Reaching a scheduling point retires any wake
    /// rank: the thread has consumed its preferential slot and
    /// competes on `(clock, tid)` again.
    pub fn advance(&self, tid: usize, ticks: u64) {
        let mut g = self.inner.lock();
        g.clocks[tid] += ticks;
        g.ranks[tid] = 0;
        self.cv.notify_all();
        while !Self::my_turn(&g, tid) {
            self.cv.wait(&mut g);
        }
    }

    /// True when no thread can run again: at least one is `Waiting` and
    /// none is `Ready` to eventually release it. Call with the lock
    /// held after any state transition away from `Ready`.
    fn check_wedged(g: &mut SimInner) {
        if !g.wedged && g.state.contains(&St::Waiting) && !g.state.contains(&St::Ready) {
            g.wedged = true;
        }
    }

    /// Marks `tid` blocked on a lock; other threads may run. Only a
    /// future [`Sim::on_release`] makes it runnable again.
    #[cfg(test)]
    pub fn begin_wait(&self, tid: usize) {
        self.begin_wait_with(tid, None);
    }

    /// [`Sim::begin_wait`] plus a waiter snapshot for the wake policy:
    /// what the thread blocked on, in which mode, from which section.
    /// `None` (or a `None` policy) ranks the thread 0, the FIFO slot.
    pub fn begin_wait_with(&self, tid: usize, waiter: Option<Waiter>) {
        let mut g = self.inner.lock();
        g.state[tid] = St::Waiting;
        g.waiters[tid] = waiter;
        // Re-parking after an unsuccessful promotion continues the same
        // wait streak: the age baseline survives.
        let epoch = g.release_epoch;
        g.wait_epoch[tid].get_or_insert(epoch);
        Self::check_wedged(&mut g);
        self.cv.notify_all();
    }

    /// Ends `tid`'s wait streak: the blocked acquisition went through,
    /// so the next park starts aging from zero again. Called by the
    /// acquire loop after its final successful step.
    pub fn end_wait(&self, tid: usize) {
        self.inner.lock().wait_epoch[tid] = None;
    }

    /// Blocks until some thread releases locks; the releaser promotes
    /// this waiter (with its clock advanced to the release time), after
    /// which we re-enter the schedule. Returns `false` when the
    /// scheduler wedged instead — the caller must abandon the wait and
    /// report [`crate::InterpError::SchedulerStalled`], never hang.
    #[must_use]
    pub fn await_release(&self, tid: usize) -> bool {
        let mut g = self.inner.lock();
        loop {
            if g.wedged {
                return false;
            }
            if g.state[tid] != St::Waiting {
                break;
            }
            self.cv.wait(&mut g);
        }
        while !Self::my_turn(&g, tid) {
            if g.wedged {
                return false;
            }
            self.cv.wait(&mut g);
        }
        true
    }

    /// Announces that `tid` released locks at its current clock.
    /// Every waiter is promoted to Ready *atomically here* — with its
    /// clock jumped to the release time — so scheduling order never
    /// depends on OS wake-up order. Promote-all is what keeps the
    /// wedge detection sound: a policy only *ranks* the batch (who
    /// retries first among equal clocks), it never leaves anyone
    /// parked.
    ///
    pub fn on_release(&self, tid: usize) {
        self.on_release_with(tid, |_| {});
    }

    /// [`Sim::on_release`], reporting the policy's wake decisions —
    /// one per blocked-on node, empty on the legacy (`None`-policy)
    /// path. The callback runs *inside* the release critical section,
    /// before any promoted waiter can resume: a tracing caller stamps
    /// the `["wk", …]` events with epochs strictly ahead of whatever
    /// the woken threads record next, keeping the merged order
    /// deterministic.
    pub fn on_release_with(&self, tid: usize, mut decision: impl FnMut(WakeGrant)) {
        let mut g = self.inner.lock();
        let now = g.clocks[tid];
        g.last_release_clock = g.last_release_clock.max(now);
        let epoch = g.release_epoch;
        g.release_epoch += 1;
        let grants = match &self.policy {
            None => Vec::new(),
            Some(policy) => {
                // Queue order is thread-id order — deterministic under
                // the virtual-time scheduler, and exactly the order the
                // historical tie-break would retry the batch in. Each
                // waiter's age is the number of release grants its wait
                // streak has already sat through — schedule state, so
                // aging policies rank identically on replay.
                let queue: Vec<Waiter> = g
                    .waiters
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| g.state[j] == St::Waiting)
                    .filter_map(|(j, w)| {
                        w.map(|mut w| {
                            w.age = epoch - g.wait_epoch[j].unwrap_or(epoch);
                            w
                        })
                    })
                    .collect();
                if queue.is_empty() {
                    Vec::new()
                } else {
                    let (ranks, grants) = rank_batch(policy.as_ref(), &queue);
                    for (w, r) in queue.iter().zip(&ranks) {
                        g.ranks[w.tid as usize] = *r;
                    }
                    grants
                }
            }
        };
        for gr in grants {
            decision(gr);
        }
        for j in 0..g.state.len() {
            if g.state[j] == St::Waiting {
                g.clocks[j] = g.clocks[j].max(now);
                g.state[j] = St::Ready;
                g.waiters[j] = None;
            }
        }
        self.cv.notify_all();
    }

    /// Marks `tid` finished. If that leaves only waiters, the schedule
    /// is wedged (a finished thread releases its locks first, so any
    /// still-waiting thread waits on something no one holds — a bug
    /// surfaced as an error, not a hang).
    pub fn finish(&self, tid: usize) {
        let mut g = self.inner.lock();
        g.state[tid] = St::Done;
        Self::check_wedged(&mut g);
        self.cv.notify_all();
    }

    /// The virtual makespan so far (max clock).
    pub fn makespan(&self) -> u64 {
        let g = self.inner.lock();
        g.clocks.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn threads_interleave_by_clock() {
        let sim = Arc::new(Sim::new(2, 10));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for tid in 0..2usize {
            let sim = Arc::clone(&sim);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                sim.advance(tid, 0);
                for step in 0..3 {
                    order.lock().push((tid, step));
                    sim.advance(tid, 10);
                }
                sim.finish(tid);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = order.lock().clone();
        // Deterministic round-robin: t0 s0, t1 s0, t0 s1, t1 s1, …
        assert_eq!(got, vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]);
        assert_eq!(sim.makespan(), 30);
    }

    #[test]
    fn waiters_inherit_the_releasers_clock() {
        let sim = Arc::new(Sim::new(2, 10));
        let sim2 = Arc::clone(&sim);
        // Thread 1 "waits on a lock" released by thread 0 at clock 500.
        let h = std::thread::spawn(move || {
            sim2.advance(1, 5); // clock 5 — but tid 0 is min, so gate…
            sim2.begin_wait(1);
            assert!(sim2.await_release(1));
            let span = {
                let g = sim2.inner.lock();
                g.clocks[1]
            };
            sim2.finish(1);
            span
        });
        sim.advance(0, 0);
        sim.advance(0, 500);
        sim.on_release(0);
        sim.finish(0);
        let waiter_clock = h.join().unwrap();
        assert_eq!(waiter_clock, 500, "waiter resumed at the release time");
    }

    #[test]
    fn wedge_is_detected_not_hung() {
        // Thread 1 waits; thread 0 finishes without releasing anything.
        // The waiter must get `false` instead of blocking forever.
        let sim = Arc::new(Sim::new(2, 10));
        let sim2 = Arc::clone(&sim);
        let h = std::thread::spawn(move || {
            sim2.advance(1, 5);
            sim2.begin_wait(1);
            let resumed = sim2.await_release(1);
            sim2.finish(1);
            resumed
        });
        sim.advance(0, 0);
        sim.advance(0, 100); // let thread 1 park itself
        sim.finish(0);
        assert!(!h.join().unwrap(), "waiter must observe the wedge");
    }

    #[test]
    fn late_wait_after_all_finished_is_wedged() {
        let sim = Sim::new(1, 10);
        sim.begin_wait(0);
        assert!(!sim.await_release(0), "sole waiter wedges immediately");
    }

    #[test]
    fn policy_ranks_break_clock_ties_among_promoted_waiters() {
        use mglock::{Mode, NodeKey};
        use sched::{PolicyKind, SchedConfig};
        // Section 1 is expected to hold for 100 ticks, section 2 for
        // 5: shortest-expected-hold must wake tid 2 (section 2) ahead
        // of tid 1 despite the lower thread id waiting too.
        let cfg = SchedConfig {
            policy: PolicyKind::ShortestExpectedHold,
            expected_hold: vec![(1, 100), (2, 5)],
            aging: 0,
        };
        let sim = Arc::new(Sim::with_policy(3, 10, Some(cfg.build())));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (tid, section) in [(1usize, 1u32), (2, 2)] {
            let sim = Arc::clone(&sim);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                sim.advance(tid, 0);
                sim.begin_wait_with(
                    tid,
                    Some(Waiter {
                        tid: tid as u32,
                        since: 0,
                        section,
                        node: NodeKey::Root,
                        mode: Mode::X,
                        age: 0,
                    }),
                );
                assert!(sim.await_release(tid));
                order.lock().push(tid);
                sim.advance(tid, 1);
                sim.finish(tid);
            }));
        }
        // Thread 0 "holds the lock": it can only pass its second
        // advance once both waiters are parked, then releases at 500.
        sim.advance(0, 0);
        sim.advance(0, 500);
        let mut grants = Vec::new();
        sim.on_release_with(0, |g| grants.push(g));
        assert_eq!(
            grants,
            vec![WakeGrant {
                node: NodeKey::Root,
                mode: Mode::X,
                depth: 2,
                woken: 1,
            }]
        );
        sim.finish(0);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            order.lock().clone(),
            vec![2, 1],
            "the short-hold section's waiter goes first"
        );
        // Both waiters resumed at the release clock: ranks reorder
        // ties, they never touch clocks.
        assert_eq!(sim.makespan(), 501);
    }

    #[test]
    fn waiter_age_accumulates_across_reparks_and_resets_on_end_wait() {
        use mglock::{Mode, NodeKey};

        /// Records the age of every waiter it is asked to rank.
        struct AgeSpy(Mutex<Vec<u64>>);
        impl sched::WakePolicy for &'static AgeSpy {
            fn name(&self) -> &'static str {
                "age-spy"
            }
            fn rank(&self, waiter: &Waiter, _queue: &[Waiter]) -> u64 {
                self.0.lock().push(waiter.age);
                0
            }
        }

        static SPY: AgeSpy = AgeSpy(Mutex::new(Vec::new()));
        let sim = Sim::with_policy(2, 10, Some(Box::new(&SPY)));
        let w = Waiter {
            tid: 1,
            since: 0,
            section: 1,
            node: NodeKey::Root,
            mode: Mode::X,
            age: 0,
        };
        // Park, sit through two releases (re-parking after the first
        // promotion fails to acquire), then succeed and park afresh.
        sim.begin_wait_with(1, Some(w));
        sim.on_release_with(0, |_| {});
        sim.begin_wait_with(1, Some(w));
        sim.on_release_with(0, |_| {});
        sim.end_wait(1);
        sim.begin_wait_with(1, Some(w));
        sim.on_release_with(0, |_| {});
        assert_eq!(
            SPY.0.lock().clone(),
            vec![0, 1, 0],
            "age counts releases survived per wait streak"
        );
    }
}
