//! Deterministic fault injection for the three locking runtimes.
//!
//! A [`FaultPlan`] is a seeded description of *which* faults to inject
//! and *how often*; each worker derives its own splitmix stream from
//! `(plan.seed, tid)`, so a given (plan, program, thread count) always
//! injects the same faults at the same points — chaos runs are exactly
//! reproducible and can be re-checked under Validate mode.
//!
//! Four fault classes, matching the degradation ladder:
//!
//! * **mid-section panics** — the worker unwinds from inside an atomic
//!   section; lock sessions release on drop (poisoning accounted in
//!   [`mglock::Stats`]) and the harness reports
//!   [`crate::InterpError::InjectedPanic`];
//! * **spurious STM aborts** — transactional reads/writes fail as if
//!   conflicted, exercising the retry and abort-budget escalation
//!   paths (suppressed while irrevocable, which must not abort);
//! * **lock-acquisition stalls** — extra virtual ticks charged before
//!   an `acquire_all`, shifting lock-contention interleavings;
//! * **delayed wakeups** — extra virtual ticks charged after a waiter
//!   is released, perturbing the scheduler's wake order.

use std::sync::atomic::AtomicU64;

/// A seeded, copyable fault-injection plan. Rates are per-mille
/// (0–1000) per opportunity; a zeroed plan (the default) injects
/// nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-thread injection streams.
    pub seed: u64,
    /// Chance (‰ per in-section instruction) of an injected panic.
    pub panic_per_mille: u16,
    /// Cap on injected panics per thread (0 = unlimited once the rate
    /// is nonzero — usually you want 1 or 2 so most threads survive).
    pub max_panics: u32,
    /// Chance (‰ per transactional access) of a spurious abort.
    pub stm_abort_per_mille: u16,
    /// Chance (‰ per lock-wait wakeup) of a delayed wakeup.
    pub wakeup_delay_per_mille: u16,
    /// Virtual ticks added by one delayed wakeup.
    pub wakeup_delay_ticks: u64,
    /// Chance (‰ per acquisition batch) of a pre-acquisition stall.
    pub stall_per_mille: u16,
    /// Virtual ticks added by one stall.
    pub stall_ticks: u64,
}

impl FaultPlan {
    /// An empty plan with the given seed; combine with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Injects thread panics at `per_mille`‰ per in-section
    /// instruction, at most `max` per thread.
    pub fn with_panics(mut self, per_mille: u16, max: u32) -> FaultPlan {
        self.panic_per_mille = per_mille;
        self.max_panics = max;
        self
    }

    /// Injects spurious transactional aborts at `per_mille`‰ per
    /// transactional access.
    pub fn with_stm_aborts(mut self, per_mille: u16) -> FaultPlan {
        self.stm_abort_per_mille = per_mille;
        self
    }

    /// Delays `per_mille`‰ of lock-wait wakeups by `ticks` virtual
    /// ticks.
    pub fn with_wakeup_delays(mut self, per_mille: u16, ticks: u64) -> FaultPlan {
        self.wakeup_delay_per_mille = per_mille;
        self.wakeup_delay_ticks = ticks;
        self
    }

    /// Stalls `per_mille`‰ of acquisition batches by `ticks` virtual
    /// ticks before they start acquiring.
    pub fn with_stalls(mut self, per_mille: u16, ticks: u64) -> FaultPlan {
        self.stall_per_mille = per_mille;
        self.stall_ticks = ticks;
        self
    }

    /// True when the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.panic_per_mille > 0
            || self.stm_abort_per_mille > 0
            || self.wakeup_delay_per_mille > 0
            || self.stall_per_mille > 0
    }
}

/// Fault-injected *weakened inference*: drops the `drop_index`-th lock
/// spec from `section`'s `acquireAll` at plan time, simulating a
/// compiler that under-inferred that section's footprint. Both the
/// planning pass and the post-acquisition revalidation pass skip the
/// spec (they must agree, or revalidation would retry forever), so the
/// weakened plan is stable — and the executed section has a genuine
/// soundness gap for the online sentinel to catch, without corrupting
/// the analysis itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeakenPlan {
    /// The section whose plan is weakened.
    pub section: u32,
    /// Index into the section's `acquireAll` spec list to drop.
    pub drop_index: usize,
}

/// Machine-wide injection counters (what actually fired, as opposed to
/// the plan's rates).
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Panics injected (each unwound one worker).
    pub injected_panics: AtomicU64,
    /// Spurious transactional aborts injected.
    pub injected_aborts: AtomicU64,
    /// Wakeups delayed.
    pub injected_delays: AtomicU64,
    /// Acquisition batches stalled.
    pub injected_stalls: AtomicU64,
    /// Not an injection: lock batches released and re-acquired because
    /// a fine descriptor drifted during the wait. Lives here because
    /// this is the machine's bucket of cross-thread runtime counters.
    pub lock_revalidations: AtomicU64,
}

/// Panic payload used by injected panics; the harness recognizes it and
/// reports [`crate::InterpError::InjectedPanic`] instead of a generic
/// worker panic. Delivered via `resume_unwind`, so it unwinds (running
/// all drop glue) without triggering the global panic hook's backtrace.
#[derive(Debug)]
pub(crate) struct FaultPanic {
    pub tid: u32,
}

/// Per-worker injection state: the plan plus this thread's stream.
pub(crate) struct Injector {
    plan: FaultPlan,
    rng: u64,
    panics_left: u32,
}

impl Injector {
    pub fn new(plan: FaultPlan, tid: u32) -> Injector {
        Injector {
            plan,
            rng: splitmix(plan.seed ^ splitmix(0xFA17 ^ (tid as u64) << 17)),
            panics_left: if plan.max_panics == 0 {
                u32::MAX
            } else {
                plan.max_panics
            },
        }
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        if per_mille == 0 {
            return false;
        }
        self.rng = splitmix(self.rng);
        ((self.rng >> 17) % 1000) < per_mille as u64
    }

    /// Should an in-section instruction panic here?
    pub fn take_panic(&mut self) -> bool {
        if self.panics_left == 0 || !self.roll(self.plan.panic_per_mille) {
            return false;
        }
        self.panics_left -= 1;
        true
    }

    /// Should this transactional access spuriously abort?
    pub fn take_stm_abort(&mut self) -> bool {
        self.roll(self.plan.stm_abort_per_mille)
    }

    /// Extra ticks for this wakeup, if it is one of the delayed ones.
    pub fn take_wakeup_delay(&mut self) -> Option<u64> {
        self.roll(self.plan.wakeup_delay_per_mille)
            .then_some(self.plan.wakeup_delay_ticks)
    }

    /// Extra ticks before this acquisition batch, if it stalls.
    pub fn take_stall(&mut self) -> Option<u64> {
        self.roll(self.plan.stall_per_mille)
            .then_some(self.plan.stall_ticks)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_thread() {
        let plan = FaultPlan::new(42).with_stm_aborts(100);
        let run = |tid| {
            let mut inj = Injector::new(plan, tid);
            (0..64).map(|_| inj.take_stm_abort()).collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0), "same thread, same stream");
        assert_ne!(run(0), run(1), "threads get independent streams");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(7).with_stm_aborts(250);
        let mut inj = Injector::new(plan, 3);
        let hits = (0..4000).filter(|_| inj.take_stm_abort()).count();
        assert!((600..1400).contains(&hits), "≈25% of 4000, got {hits}");
    }

    #[test]
    fn panic_cap_is_enforced() {
        let plan = FaultPlan::new(9).with_panics(1000, 2);
        let mut inj = Injector::new(plan, 0);
        let fired = (0..100).filter(|_| inj.take_panic()).count();
        assert_eq!(fired, 2);
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = Injector::new(FaultPlan::new(1), 0);
        assert!(!FaultPlan::new(1).is_active());
        assert!((0..1000).all(|_| {
            !inj.take_panic()
                && !inj.take_stm_abort()
                && inj.take_wakeup_delay().is_none()
                && inj.take_stall().is_none()
        }));
    }
}
