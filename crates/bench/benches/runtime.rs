//! Criterion micro-benchmarks of the runtime half: multi-grain lock
//! acquisition batches, TL2 transactions, and interpreted section
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use interp::{ExecMode, Options};
use mglock::{Access, Descriptor, FineAddr, Runtime, Session};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_mglock(c: &mut Criterion) {
    let mut g = c.benchmark_group("mglock");
    g.sample_size(30).measurement_time(Duration::from_secs(5));
    let rt = Arc::new(Runtime::new());
    g.bench_function("fine_batch_of_3", |b| {
        let mut s = Session::new(Arc::clone(&rt));
        b.iter(|| {
            s.to_acquire(Descriptor::Fine {
                pts: 1,
                addr: FineAddr::Cell(10),
                access: Access::Write,
            });
            s.to_acquire(Descriptor::Fine {
                pts: 1,
                addr: FineAddr::Cell(11),
                access: Access::Read,
            });
            s.to_acquire(Descriptor::Coarse {
                pts: 2,
                access: Access::Read,
            });
            s.acquire_all();
            s.release_all();
        })
    });
    g.bench_function("global_batch", |b| {
        let mut s = Session::new(Arc::clone(&rt));
        b.iter(|| {
            s.to_acquire(Descriptor::Global {
                access: Access::Write,
            });
            s.acquire_all();
            s.release_all();
        })
    });
    g.bench_function("nested_reentry", |b| {
        let mut s = Session::new(Arc::clone(&rt));
        s.to_acquire(Descriptor::Coarse {
            pts: 7,
            access: Access::Write,
        });
        s.acquire_all();
        b.iter(|| {
            s.acquire_all(); // nested: nlevel bump only
            s.release_all();
        });
        s.release_all();
    });
    g.finish();
}

fn bench_tl2(c: &mut Criterion) {
    let mut g = c.benchmark_group("tl2");
    g.sample_size(30).measurement_time(Duration::from_secs(5));
    let space = tl2::Space::new(1024);
    g.bench_function("rmw_txn_4_cells", |b| {
        b.iter(|| {
            space.atomically(|t| {
                for i in 0..4 {
                    let v = t.read(i * 7)?;
                    t.write(i * 7, v + 1);
                }
                Ok(())
            })
        })
    });
    g.bench_function("read_only_txn_16_cells", |b| {
        b.iter(|| {
            space.atomically(|t| {
                let mut s = 0;
                for i in 0..16 {
                    s += t.read(i)?;
                }
                Ok(black_box(s))
            })
        })
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let src = r#"
        global g;
        fn work(iters) {
            let i = 0;
            while (i < iters) {
                atomic { g = g + 1; }
                i = i + 1;
            }
            return g;
        }
    "#;
    for (name, mode) in [
        ("sections_multigrain", ExecMode::MultiGrain),
        ("sections_global", ExecMode::Global),
        ("sections_stm", ExecMode::Stm),
    ] {
        let m = interp::machine_for(src, 3, mode, Options::default()).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(m.run_named("work", &[100]).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mglock, bench_tl2, bench_interp);
criterion_main!(benches);
