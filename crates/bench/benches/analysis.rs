//! Criterion micro-benchmarks of the compiler half: parsing/lowering,
//! Steensgaard, and the lock inference at several k — the per-component
//! view behind Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lockscheme::SchemeConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_frontend(c: &mut Criterion) {
    let spec = workloads::spec_like::generate("bench", 2.0, 99);
    let mut g = c.benchmark_group("frontend");
    g.sample_size(20).measurement_time(Duration::from_secs(5));
    g.bench_function("compile_2kloc", |b| {
        b.iter(|| lir::compile(black_box(&spec.source)).unwrap())
    });
    let program = lir::compile(&spec.source).unwrap();
    g.bench_function("steensgaard_2kloc", |b| {
        b.iter(|| pointsto::PointsTo::analyze(black_box(&program)))
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    // The concurrent benchmarks (small sections, the common case).
    let micro: Vec<_> = workloads::micro::all(workloads::Contention::Low, 10, 0)
        .into_iter()
        .map(|s| {
            let p = lir::compile(&s.source).unwrap();
            let pt = pointsto::PointsTo::analyze(&p);
            (p, pt)
        })
        .collect();
    for k in [0usize, 3, 9] {
        g.bench_with_input(BenchmarkId::new("micro_suite", k), &k, |b, &k| {
            b.iter(|| {
                for (p, pt) in &micro {
                    let cfg = SchemeConfig::full(k, p.elem_field_opt());
                    black_box(lockinfer::analyze_program(p, pt, cfg));
                }
            })
        });
    }
    // One whole-program section (the SPEC-like stress case, scaled
    // down so `cargo bench` stays quick).
    let spec = workloads::spec_like::generate("bench", 1.0, 7);
    let p = lir::compile(&spec.source).unwrap();
    let pt = pointsto::PointsTo::analyze(&p);
    for k in [0usize, 3] {
        g.bench_with_input(BenchmarkId::new("spec_1kloc", k), &k, |b, &k| {
            b.iter(|| {
                let cfg = SchemeConfig::full(k, p.elem_field_opt());
                black_box(lockinfer::analyze_program(&p, &pt, cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_frontend, bench_inference);
criterion_main!(benches);
