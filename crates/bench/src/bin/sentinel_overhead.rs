//! `sentinel-overhead` — CI gate for the online sentinel's cost
//! (DESIGN.md §5.5).
//!
//! ```text
//! cargo run -p bench --release --bin sentinel-overhead [-- --check]
//! ```
//!
//! Runs the `workloads::scale` smoke program under MultiGrain locks at
//! k = 9 three times per repetition — sentinel disabled, armed with
//! `sample_every = 1` (sampling off: every in-section access checked
//! inline), and armed with the `sampled-production` preset
//! ([`SentinelConfig::sampled_production`], 1-in-8 sampling) — and
//! compares the best wall-clock time of each arm. The armed runs use
//! sound inferred locks, so the sentinel must stay silent; the bin
//! fails outright if it reports a violation.
//!
//! With `--check`, exits nonzero when either armed arm's ratio to the
//! disabled arm reaches 2.0 — the overhead budget the sentinel
//! promises when fully on, which the sampled-production preset (tuned
//! from this very gate) must a fortiori stay inside. The
//! sampled-vs-full comparison is printed for the record but not gated:
//! on this virtual-time interpreter the check itself is cheap, so the
//! two arms sit within scheduler noise of each other.

use interp::{ExecMode, Machine, Options, SentinelConfig};
use lockscheme::SchemeConfig;
use pointsto::PointsTo;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use workloads::scale::{self, ScaleParams};

const THREADS: usize = 4;
/// Interleaved repetitions per arm; each arm scores its minimum, which
/// discards scheduler noise on a loaded CI host.
const REPS: usize = 5;

fn main() -> ExitCode {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("sentinel-overhead: unknown flag `{other}` (only --check)");
                return ExitCode::from(2);
            }
        }
    }

    // The medium analysis-bench tier shape, as the runnable smoke
    // twin: enough in-section accesses (layered calls under 16
    // sections) for millisecond-scale runs whose minimum-of-5 is
    // stable, small enough for a smoke job.
    let spec = scale::smoke(
        "sentinel-smoke",
        ScaleParams {
            depth: 5,
            width: 8,
            sections: 16,
            stmts_per_fn: 14,
            seed: 12,
        },
        4,
    );
    let program = lir::compile(&spec.source).expect("scale smoke compiles");
    let pt = Arc::new(PointsTo::analyze(&program));
    let cfg = SchemeConfig::full(9, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = Arc::new(lockinfer::transform(&program, &analysis));

    let timed = |sentinel: Option<SentinelConfig>| -> f64 {
        let m = Machine::new(
            transformed.clone(),
            pt.clone(),
            ExecMode::MultiGrain,
            Options {
                heap_cells: spec.heap_cells,
                seed: 0xB0DE,
                sentinel,
                ..Options::default()
            },
        );
        let (worker, args) = &spec.worker;
        m.run_named(spec.init.0, &spec.init.1).expect("smoke setup");
        let t0 = Instant::now();
        m.run_threads_virtual(worker, THREADS, |_| args.clone())
            .expect("scale smoke completes");
        let seconds = t0.elapsed().as_secs_f64();
        let report = m.degradation_report();
        assert_eq!(
            report.sentinel_violations, 0,
            "sound inferred locks must not trip the sentinel: {report}"
        );
        seconds
    };

    let armed_cfg = SentinelConfig {
        sample_every: 1,
        ..SentinelConfig::default()
    };
    let sampled_cfg = SentinelConfig::sampled_production();
    let (mut off, mut on, mut sampled) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        off = off.min(timed(None));
        on = on.min(timed(Some(armed_cfg)));
        sampled = sampled.min(timed(Some(sampled_cfg)));
    }
    let ratio = on / off;
    let sampled_ratio = sampled / off;
    println!("sentinel off: {off:.6}s (best of {REPS})");
    println!("sentinel on (sample_every=1): {on:.6}s (best of {REPS})");
    println!(
        "sentinel on (sampled-production, sample_every={}): {sampled:.6}s (best of {REPS})",
        sampled_cfg.sample_every
    );
    println!("overhead ratio: {ratio:.3}x (budget < 2.000x)");
    println!("sampled-production ratio: {sampled_ratio:.3}x (budget < 2.000x)");
    if check && (ratio >= 2.0 || sampled_ratio >= 2.0) {
        println!("sentinel-overhead check: FAIL");
        return ExitCode::FAILURE;
    }
    if check {
        println!("sentinel-overhead check: OK");
    }
    ExitCode::SUCCESS
}
