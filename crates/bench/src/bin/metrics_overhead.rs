//! `metrics-overhead` — CI gate for the live observability layer's
//! cost (DESIGN.md §5.9).
//!
//! ```text
//! cargo run -p bench --release --bin metrics-overhead [-- --check]
//! ```
//!
//! Runs the `workloads::scale` smoke program under MultiGrain locks at
//! k = 9 twice per repetition — metrics off ([`Options::metrics`] =
//! `None`, the hot path compiles to a skipped `if`) and armed with a
//! live [`obs::Registry`] (every section entry, lock acquisition,
//! revalidation, and wait/hold tick observed through relaxed-atomic
//! handles) — and compares the best wall-clock time of each arm. The
//! armed run must also populate the registry (a silent no-op
//! instrumentation layer would pass any timing gate) and must not
//! perturb the deterministic schedule: both arms assert the same
//! virtual makespan.
//!
//! With `--check`, exits nonzero when the armed arm's ratio to the
//! disabled arm reaches 2.0 — the same budget shape as the
//! `sentinel-overhead` gate, deliberately loose because CI hosts are
//! noisy; the layer's design target is low single-digit percent.

use interp::{ExecMode, Machine, Options};
use lockscheme::SchemeConfig;
use pointsto::PointsTo;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use workloads::scale::{self, ScaleParams};

const THREADS: usize = 4;
/// Interleaved repetitions per arm; each arm scores its minimum, which
/// discards scheduler noise on a loaded CI host.
const REPS: usize = 5;

fn main() -> ExitCode {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("metrics-overhead: unknown flag `{other}` (only --check)");
                return ExitCode::from(2);
            }
        }
    }

    // The same runnable smoke twin the sentinel gate times: enough
    // in-section accesses for millisecond-scale runs whose
    // minimum-of-5 is stable, small enough for a smoke job.
    let spec = scale::smoke(
        "metrics-smoke",
        ScaleParams {
            depth: 5,
            width: 8,
            sections: 16,
            stmts_per_fn: 14,
            seed: 12,
        },
        4,
    );
    let program = lir::compile(&spec.source).expect("scale smoke compiles");
    let pt = Arc::new(PointsTo::analyze(&program));
    let cfg = SchemeConfig::full(9, program.elem_field_opt());
    let analysis = lockinfer::analyze_program(&program, &pt, cfg);
    let transformed = Arc::new(lockinfer::transform(&program, &analysis));

    let timed = |metrics: Option<Arc<obs::Registry>>| -> (f64, u64) {
        let m = Machine::new(
            transformed.clone(),
            pt.clone(),
            ExecMode::MultiGrain,
            Options {
                heap_cells: spec.heap_cells,
                seed: 0xB0DE,
                metrics,
                ..Options::default()
            },
        );
        let (worker, args) = &spec.worker;
        m.run_named(spec.init.0, &spec.init.1).expect("smoke setup");
        let t0 = Instant::now();
        let (_, makespan) = m
            .run_threads_virtual(worker, THREADS, |_| args.clone())
            .expect("scale smoke completes");
        m.publish_metrics();
        (t0.elapsed().as_secs_f64(), makespan)
    };

    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    let mut makespans = (0u64, 0u64);
    let registry = Arc::new(obs::Registry::new());
    for _ in 0..REPS {
        let (t, span_off) = timed(None);
        off = off.min(t);
        let (t, span_on) = timed(Some(Arc::clone(&registry)));
        on = on.min(t);
        makespans = (span_off, span_on);
        assert_eq!(
            span_off, span_on,
            "metrics must not perturb the deterministic schedule"
        );
    }
    let snap = registry.snapshot();
    let entries = snap
        .counters
        .iter()
        .find(|(k, _)| k.name == "ali_run_section_entries_total")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(
        entries > 0,
        "the armed arm must actually count section entries"
    );
    let ratio = on / off;
    println!("metrics off: {off:.6}s (best of {REPS})");
    println!("metrics on:  {on:.6}s (best of {REPS})");
    println!(
        "armed registry: {} counters, {} hists, {} section entries, makespan {} ticks",
        snap.counters.len(),
        snap.hists.len(),
        entries,
        makespans.1
    );
    println!("overhead ratio: {ratio:.3}x (budget < 2.000x)");
    if check && ratio >= 2.0 {
        println!("metrics-overhead check: FAIL");
        return ExitCode::FAILURE;
    }
    if check {
        println!("metrics-overhead check: OK");
    }
    ExitCode::SUCCESS
}
