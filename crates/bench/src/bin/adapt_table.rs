//! `results_adapt.txt`: baseline vs profile-adapted per-section lock
//! configurations (DESIGN.md §5.4).
//!
//! For each workload the harness records a baseline run under the
//! uniform `Σ_k × Σ≡ × Σ_ε` configuration, derives candidate
//! per-section overrides from the corrected wait/hold/revalidation
//! profiles, replays the identical deterministic schedule under each
//! candidate's inferred locks, and keeps the override with the lowest
//! total virtual-time wait (only if strictly below the baseline).
//!
//! ```text
//! cargo run -p bench --release --bin adapt-table
//! ```

use atomic_lock_inference::adapt::adapt;
use atomic_lock_inference::replay::RunConfig;
use bench::cli::delta_pct;
use bench::harness::ops;
use interp::ExecMode;
use lockinfer::adapt::AdaptPolicy;
use std::process::ExitCode;
use workloads::{micro, stamp, Contention, RunSpec};

fn specs() -> Vec<(usize, RunSpec)> {
    // (k, spec): fine expression locks where the workload has them, so
    // the adaptation loop has room to coarsen; `th`'s rehash drift and
    // the high-contention micros are the interesting rows.
    vec![
        (9, micro::list(Contention::High, ops(300), 20)),
        (9, micro::hashtable(Contention::High, ops(300), 20)),
        (9, micro::hashtable2(Contention::High, ops(300), 20)),
        (9, micro::rbtree(Contention::Low, ops(300), 20)),
        (9, micro::th(Contention::High, ops(300), 20)),
        (3, stamp::kmeans(ops(200), 20)),
    ]
}

fn main() -> ExitCode {
    let threads = 8;
    let policy = AdaptPolicy::default();
    println!("Per-section adaptive granularity: baseline vs adapted (8 threads, MultiGrain)");
    println!("wait/hold/reval are totals in virtual ticks across all outermost sections;");
    println!("`decision` names the selected override (- = uniform configuration stands).");
    println!();
    println!(
        "{:<18} {:>2} {:>10} {:>10} {:>7} {:>9} {:>9} {:>6}  decision",
        "Program", "k", "base-wait", "ad-wait", "Δwait%", "base-span", "ad-span", "reval"
    );
    let mut failed = false;
    let mut improved = 0usize;
    for (k, spec) in specs() {
        let cfg = RunConfig::from_spec(&spec, k, ExecMode::MultiGrain, threads);
        let run = match adapt(&cfg, &policy, 0) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<18} ERROR: {e}", spec.name);
                failed = true;
                continue;
            }
        };
        let b = run.report.baseline;
        let (ad, decision) = match run.report.winner() {
            Some(w) => (
                w.cost,
                format!(
                    "s{} {} ({})",
                    w.candidate.section,
                    w.candidate.adjustment.tag(),
                    w.candidate.trigger.tag()
                ),
            ),
            None => (b, "-".to_string()),
        };
        if ad.total_wait > b.total_wait {
            failed = true;
        }
        if ad.total_wait < b.total_wait {
            improved += 1;
        }
        let delta = delta_pct(b.total_wait, ad.total_wait);
        println!(
            "{:<18} {:>2} {:>10} {:>10} {:>+7.1} {:>9} {:>9} {:>6}  {}",
            spec.name,
            k,
            b.total_wait,
            ad.total_wait,
            delta,
            b.makespan,
            ad.makespan,
            b.total_revalidations,
            decision
        );
    }
    println!();
    println!("{improved} workload(s) improved; candidates evaluated by exact replay on the");
    println!("recorded schedule, selection by strict total-wait reduction.");
    if failed || improved == 0 {
        println!("ADAPT TABLE: FAIL (no improvement or invariant breach)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
