//! `results_sched.txt`: FIFO wake order vs contention-aware wake
//! policies (DESIGN.md §5.6).
//!
//! For each workload the harness records a baseline run under the
//! historical `(clock, tid)` FIFO order, flags convoy-prone sections
//! from the wait/hold profiles, freezes each alternative policy's
//! configuration from those profiles, re-runs the identical
//! deterministic schedule under every policy, and keeps the one with
//! the lowest total virtual-time wait (only if strictly below FIFO).
//!
//! ```text
//! cargo run -p bench --release --bin sched-table
//! ```
//!
//! `--smoke` swaps the table for the CI gate: one runnable
//! `workloads::scale` twin, evaluated at two analysis thread counts,
//! failing on any divergence or on a steered run that waits longer
//! than its FIFO baseline.

use atomic_lock_inference::replay::RunConfig;
use atomic_lock_inference::sched::evaluate;
use bench::cli::delta_pct;
use bench::harness::ops;
use interp::ExecMode;
use sched::ConvoyPolicy;
use std::process::ExitCode;
use workloads::scale::{self, ScaleParams};
use workloads::{micro, stamp, Contention, RunSpec};

fn specs() -> Vec<(usize, RunSpec)> {
    // (k, spec): high-contention micros are the convoy factories —
    // every thread queues on the same structure, and the op mix
    // (insert/remove/get) gives the hold histograms real spread for
    // ShortestExpectedHold to exploit. The read-heavy low-contention
    // rows are ReaderBatch's turf: shared-mode waiters batch behind
    // occasional writers.
    vec![
        (9, micro::list(Contention::High, ops(300), 20)),
        (9, micro::list(Contention::Low, ops(300), 20)),
        (9, micro::hashtable(Contention::High, ops(300), 20)),
        (9, micro::hashtable2(Contention::High, ops(300), 20)),
        (9, micro::rbtree(Contention::Low, ops(300), 20)),
        (9, micro::th(Contention::High, ops(300), 20)),
        (3, stamp::kmeans(ops(200), 20)),
    ]
}

/// The CI smoke gate: evaluate the full policy loop on a generated
/// `workloads::scale` program (the same family analysis-bench and the
/// sentinel overhead gate run), at two analysis thread counts. The
/// reports and baseline traces must be byte-identical, and no steered
/// run may wait longer than its FIFO baseline.
fn smoke() -> ExitCode {
    // A mid-tier shape: 12 sections over layered calls is enough lock
    // traffic for real waiter queues, small enough for a smoke job.
    let spec = scale::smoke(
        "sched-smoke",
        ScaleParams {
            depth: 4,
            width: 6,
            sections: 12,
            stmts_per_fn: 10,
            seed: 7,
        },
        3,
    );
    let cfg = RunConfig::from_spec(&spec, 9, ExecMode::MultiGrain, 8);
    let convoy = ConvoyPolicy::default();
    let mut runs = Vec::new();
    for analysis_threads in [1usize, 7] {
        match evaluate(&cfg, &convoy, analysis_threads) {
            Ok(r) => runs.push(r),
            Err(e) => {
                println!("SCHED SMOKE: FAIL ({analysis_threads} analysis threads: {e})");
                return ExitCode::FAILURE;
            }
        }
    }
    let (a, b) = (&runs[0], &runs[1]);
    if a.report.to_json() != b.report.to_json() {
        println!("SCHED SMOKE: FAIL (selection reports diverged across analysis thread counts)");
        return ExitCode::FAILURE;
    }
    if a.baseline.trace.to_json() != b.baseline.trace.to_json() {
        println!("SCHED SMOKE: FAIL (baseline traces diverged across analysis thread counts)");
        return ExitCode::FAILURE;
    }
    let base = a.report.baseline;
    for p in &a.report.evaluated {
        if p.cost.total_wait > base.total_wait {
            println!(
                "SCHED SMOKE: FAIL ({} waits {} > FIFO {})",
                p.policy.tag(),
                p.cost.total_wait,
                base.total_wait
            );
            return ExitCode::FAILURE;
        }
    }
    let policy = match a.report.winner() {
        Some(w) => w.policy.tag(),
        None => "- (FIFO stands)",
    };
    println!(
        "SCHED SMOKE: OK ({} policies evaluated, {} convoy(s), fifo-wait {}, winner {policy})",
        a.report.evaluated.len(),
        a.report.convoys.len(),
        base.total_wait
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if let Some(arg) = std::env::args().nth(1) {
        match arg.as_str() {
            "--smoke" => return smoke(),
            other => {
                eprintln!("sched-table: unknown flag `{other}` (only --smoke)");
                return ExitCode::from(2);
            }
        }
    }
    let threads = 8;
    let convoy = ConvoyPolicy::default();
    println!(
        "Contention-aware wake policies: FIFO baseline vs steered replay (8 threads, MultiGrain)"
    );
    println!("wait/hold are totals in virtual ticks across all outermost sections; `convoys`");
    println!("counts flagged sections (est. queue depth x hold >= threshold); `policy` names");
    println!("the selected wake policy (- = FIFO stands).");
    println!();
    println!(
        "{:<18} {:>2} {:>10} {:>10} {:>7} {:>9} {:>9} {:>7}  policy",
        "Program", "k", "fifo-wait", "best-wait", "Δwait%", "fifo-span", "best-span", "convoys"
    );
    let mut failed = false;
    let mut improved = 0usize;
    for (k, spec) in specs() {
        let cfg = RunConfig::from_spec(&spec, k, ExecMode::MultiGrain, threads);
        let run = match evaluate(&cfg, &convoy, 0) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<18} ERROR: {e}", spec.name);
                failed = true;
                continue;
            }
        };
        let b = run.report.baseline;
        let (best, policy) = match run.report.winner() {
            Some(w) => (w.cost, w.policy.tag().to_string()),
            None => (b, "-".to_string()),
        };
        if best.total_wait > b.total_wait {
            failed = true;
        }
        if best.total_wait < b.total_wait {
            improved += 1;
        }
        let delta = delta_pct(b.total_wait, best.total_wait);
        println!(
            "{:<18} {:>2} {:>10} {:>10} {:>+7.1} {:>9} {:>9} {:>7}  {}",
            spec.name,
            k,
            b.total_wait,
            best.total_wait,
            delta,
            b.makespan,
            best.makespan,
            run.report.convoys.len(),
            policy
        );
    }
    println!();
    println!("{improved} workload(s) improved; every policy re-run on the exact recorded");
    println!("schedule (same seed, same virtual scheduler), selection by strict");
    println!("total-wait reduction. Steered recordings replay bit-for-bit from their");
    println!("run.sched_* metadata.");
    if failed || improved == 0 {
        println!("SCHED TABLE: FAIL (no improvement or invariant breach)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
