//! Figure 7: combined number of fine-grain and coarse-grain locks from
//! all programs, for k = 0..9.
//!
//! Reported in two blocks: the concurrent benchmarks (STAMP-like +
//! micro, the programs whose locks actually run), and the synthetic
//! SPEC-like programs (the analysis stress case; their whole-program
//! atomic sections exercise the widening fallback, see the note below).
//!
//! ```text
//! cargo run -p bench --release --bin figure7
//! ```

use lockinfer::LockCounts;
use lockscheme::SchemeConfig;
use workloads::{micro, spec_like, stamp, Contention, RunSpec};

fn sweep(title: &str, programs: &[RunSpec]) {
    println!("{title}");
    println!(
        "{:>3} {:>9} {:>9} {:>10} {:>10} {:>7}",
        "k", "fine-ro", "fine-rw", "coarse-ro", "coarse-rw", "total"
    );
    let compiled: Vec<(lir::Program, pointsto::PointsTo)> = programs
        .iter()
        .map(|s| {
            let p = lir::compile(&s.source).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            let pt = pointsto::PointsTo::analyze(&p);
            (p, pt)
        })
        .collect();
    for k in 0..=9 {
        let mut total = LockCounts::default();
        for (p, pt) in &compiled {
            let cfg = SchemeConfig::full(k, p.elem_field_opt());
            let analysis = lockinfer::analyze_program(p, pt, cfg);
            total += analysis.lock_counts();
        }
        println!(
            "{:>3} {:>9} {:>9} {:>10} {:>10} {:>7}",
            k,
            total.fine_ro,
            total.fine_rw,
            total.coarse_ro,
            total.coarse_rw,
            total.total()
        );
    }
    println!();
}

fn main() {
    println!("Figure 7: combined lock counts by category, k = 0..9");
    println!();
    let mut concurrent = stamp::all(10, 0);
    concurrent.extend(micro::all(Contention::Low, 10, 0));
    sweep("Concurrent benchmarks (STAMP-like + micro):", &concurrent);

    let spec: Vec<RunSpec> = spec_like::table1_programs()
        .into_iter()
        .enumerate()
        // Scaled-down: Figure 7 aggregates per-section lock counts, not
        // analysis time; run `table1` for full-size timings.
        .map(|(i, (name, kloc))| spec_like::generate(name, kloc.min(2.5), 1000 + i as u64))
        .collect();
    sweep(
        "Synthetic SPEC-like programs (whole program in one section):",
        &spec,
    );

    println!("Expected shape (paper §6.2): k=0 all coarse; raising k first");
    println!("trades coarse locks for several fine ones, then sheds the");
    println!("section-local allocations (the dip), then stays flat — our");
    println!("concurrent benchmarks plateau at k=2 because their lock");
    println!("expressions are shorter than full STAMP's. The synthetic");
    println!("programs' giant sections additionally trip the width-widening");
    println!("fallback at large k, re-adding coarse locks; the paper's");
    println!("bounded-lattice implementation would instead spend the");
    println!("vortex-like analysis times of Table 1 there.");
}
